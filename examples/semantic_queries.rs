//! Querying the published Semantic Web directly (§2's "machine-readable
//! content… agents can understand and reason about"): basic graph pattern
//! queries over the merged homepage documents of a community.
//!
//! ```sh
//! cargo run --release --example semantic_queries
//! ```

use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::rdf::query::{select, var, TriplePattern};
use semrec::rdf::{turtle, vocab, Graph, Literal};
use semrec::web::publish::homepage_turtle;

fn main() {
    // Build a community and merge every published homepage into one graph —
    // what a Semantic Web agent sees after crawling.
    let generated = generate_community(&CommunityGenConfig::small(555));
    let community = generated.community;
    let mut graph = Graph::new();
    for agent in community.agents() {
        let doc = homepage_turtle(&community, agent);
        graph.merge(&turtle::parse(&doc).expect("published documents parse"));
    }
    println!("Merged knowledge graph: {} triples from {} homepages\n",
        graph.len(), community.agent_count());

    // Query 1: all trust statements — ?stmt trust:truster ?a ; trust:trustee ?b ; trust:value ?v
    let solutions = select(
        &graph,
        &[
            TriplePattern::new(var("stmt"), vocab::trust::truster().into(), var("a")),
            TriplePattern::new(var("stmt"), vocab::trust::trustee().into(), var("b")),
            TriplePattern::new(var("stmt"), vocab::trust::value().into(), var("v")),
        ],
    );
    println!("Q1: reified trust statements in the graph: {}", solutions.len());
    assert_eq!(solutions.len(), community.trust.edge_count());

    // Query 2: mutual trust — pairs that issued statements about each other.
    let solutions = select(
        &graph,
        &[
            TriplePattern::new(var("s1"), vocab::trust::truster().into(), var("a")),
            TriplePattern::new(var("s1"), vocab::trust::trustee().into(), var("b")),
            TriplePattern::new(var("s2"), vocab::trust::truster().into(), var("b")),
            TriplePattern::new(var("s2"), vocab::trust::trustee().into(), var("a")),
        ],
    );
    println!("Q2: mutual-trust pairs (ordered): {}", solutions.len());

    // Query 3: who rated a specific product? Pick the most-rated product.
    let most_rated = community
        .catalog
        .iter()
        .max_by_key(|&p| {
            community.agents().filter(|&a| community.rating(a, p).is_some()).count()
        })
        .unwrap();
    let identifier = &community.catalog.product(most_rated).identifier;
    let product_iri = semrec::rdf::Iri::new(identifier.clone()).unwrap();
    let solutions = select(
        &graph,
        &[
            TriplePattern::new(var("r"), vocab::rec::product().into(), product_iri.into()),
            TriplePattern::new(var("r"), vocab::rec::rater().into(), var("who")),
            TriplePattern::new(var("r"), vocab::rec::score().into(), var("score")),
        ],
    );
    println!("Q3: raters of {identifier}: {}", solutions.len());
    for s in solutions.iter().take(5) {
        println!(
            "    {} → {}",
            s.get("who").unwrap().as_iri().unwrap(),
            s.get("score").unwrap().as_literal().unwrap().lexical()
        );
    }

    // Query 4: social + content join — readers of that product that some
    // `foaf:Person` in the graph *knows* (recommendation provenance!).
    let product_iri = semrec::rdf::Iri::new(identifier.clone()).unwrap();
    let solutions = select(
        &graph,
        &[
            TriplePattern::new(
                var("friend"),
                vocab::rdf::type_().into(),
                vocab::foaf::person().into(),
            ),
            TriplePattern::new(var("friend"), vocab::foaf::knows().into(), var("reader")),
            TriplePattern::new(var("rating"), vocab::rec::rater().into(), var("reader")),
            TriplePattern::new(var("rating"), vocab::rec::product().into(), product_iri.into()),
        ],
    );
    println!("Q4: (person, known reader) pairs for that product: {}", solutions.len());

    // Query 5: nickname lookup via a literal constraint.
    let solutions = select(
        &graph,
        &[TriplePattern::new(
            var("who"),
            vocab::foaf::nick().into(),
            Literal::simple("agent-0").into(),
        )],
    );
    assert_eq!(solutions.len(), 1);
    println!(
        "Q5: foaf:nick \"agent-0\" belongs to {}",
        solutions[0].get("who").unwrap().as_iri().unwrap()
    );
}
