//! A full All-Consuming-style book recommender (§4.1 scenario): a synthetic
//! community at meaningful scale, evaluated offline against baselines, with
//! topic-diversified output for one user.
//!
//! ```sh
//! cargo run --release --example book_recommender
//! ```

use semrec::core::diversify::{diversify, intra_list_similarity};
use semrec::core::{ProfileStore, Recommender, RecommenderConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::baselines::{knn_product_cf, knn_taxonomy_cf};
use semrec::eval::{evaluate, leave_n_out, SplitConfig, Table};
use semrec::profiles::generation::ProfileParams;

fn main() {
    // A mid-size slice of the §4.1 world (full scale lives in the bench
    // harness; this example favors fast turnaround).
    let generated = generate_community(&CommunityGenConfig::medium(42));
    let community = generated.community;
    println!(
        "Community: {} readers, {} books, {} topics, {} ratings, {} trust statements\n",
        community.agent_count(),
        community.catalog.len(),
        community.taxonomy.len(),
        community.rating_count(),
        community.trust.edge_count()
    );

    // --- offline evaluation: hybrid vs baselines ---------------------------
    let split = leave_n_out(
        &community,
        &SplitConfig { hold_out: 3, min_remaining: 3, max_users: 150, seed: 1 },
    );
    println!("Evaluating {} users, 3 held-out books each, top-10 lists…\n", split.held_out.len());

    let engine = Recommender::new(split.train.clone(), RecommenderConfig::default());
    let hybrid = evaluate(&split, |_, agent| {
        engine
            .recommend(agent, 10)
            .map(|recs| recs.into_iter().map(|r| r.product).collect())
            .unwrap_or_default()
    });

    let profiles = ProfileStore::build(&split.train, &ProfileParams::default());
    let taxonomy_cf = evaluate(&split, |train, agent| {
        knn_taxonomy_cf(train, &profiles, agent, 20, 10)
    });
    let plain_cf = evaluate(&split, |train, agent| knn_product_cf(train, agent, 20, 10));

    let mut table = Table::new(["method", "precision@10", "recall@10", "F1", "coverage"]);
    for (name, m) in [
        ("hybrid (trust + taxonomy)", hybrid),
        ("taxonomy CF (no trust)", taxonomy_cf),
        ("plain product CF", plain_cf),
    ] {
        table.row([
            name.to_string(),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
            format!("{:.3}", m.f1),
            format!("{:.3}", m.coverage),
        ]);
    }
    println!("{}", table.render());

    // --- one user's diversified list ---------------------------------------
    let engine = Recommender::new(community, RecommenderConfig::default());
    let target = engine
        .community()
        .agents()
        .find(|&a| !engine.recommend(a, 20).unwrap_or_default().is_empty())
        .expect("some agent gets recommendations");
    let candidates = engine.recommend(target, 20).unwrap();

    let taxonomy = &engine.community().taxonomy;
    let catalog = &engine.community().catalog;
    let plain: Vec<_> = candidates.iter().take(10).map(|r| r.product).collect();
    let diversified = diversify(taxonomy, catalog, &candidates, 10, 0.6);
    let diversified_products: Vec<_> = diversified.iter().map(|r| r.product).collect();

    println!("Topic diversification for {target} (Θ = 0.6):");
    println!("  plain top-10 intra-list similarity      : {:.3}",
        intra_list_similarity(taxonomy, catalog, &plain));
    println!("  diversified top-10 intra-list similarity: {:.3}",
        intra_list_similarity(taxonomy, catalog, &diversified_products));
    println!("\nDiversified list:");
    for (i, rec) in diversified.iter().enumerate() {
        let product = catalog.product(rec.product);
        let topics: Vec<_> = catalog
            .descriptors(rec.product)
            .iter()
            .map(|&d| taxonomy.label(d))
            .collect();
        println!("  {:2}. {} [{}]", i + 1, product.title, topics.join(", "));
    }
}
