//! Quickstart: build a tiny community by hand and get recommendations.
//!
//! Reconstructs the paper's running scenario — the Figure 1 book taxonomy,
//! the four books of Example 1, a handful of agents with trust statements —
//! and runs the full pipeline for one of them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use semrec::core::{Community, Recommender, RecommenderConfig};
use semrec::taxonomy::fixtures::example1;

fn main() {
    // 1. The globally published taxonomy and catalog (§3.1): the Figure 1
    //    fragment of the Amazon book taxonomy plus Example 1's four books.
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    println!("Taxonomy: {} topics, catalog: {} books\n", e.fig.taxonomy.len(), e.catalog.len());

    // 2. Agents with distributed trust statements and ratings.
    let mut community = Community::new(e.fig.taxonomy, e.catalog);
    let alice = community.add_agent("http://example.org/alice#me").unwrap();
    let bob = community.add_agent("http://example.org/bob#me").unwrap();
    let carol = community.add_agent("http://example.org/carol#me").unwrap();
    let mallory = community.add_agent("http://example.org/mallory#me").unwrap();

    // Alice trusts Bob a lot, Carol somewhat; nobody trusts Mallory.
    community.trust.set_trust(alice, bob, 0.9).unwrap();
    community.trust.set_trust(alice, carol, 0.5).unwrap();
    community.trust.set_trust(bob, carol, 0.7).unwrap();

    // Reading histories (implicit, mostly positive ratings).
    community.set_rating(alice, products[1], 1.0).unwrap(); // Fermat's Enigma
    community.set_rating(bob, products[0], 1.0).unwrap(); // Matrix Analysis
    community.set_rating(bob, products[2], 0.6).unwrap(); // Snow Crash
    community.set_rating(carol, products[2], 1.0).unwrap();
    community.set_rating(carol, products[3], 0.9).unwrap(); // Neuromancer
    community.set_rating(mallory, products[3], 1.0).unwrap(); // ignored: untrusted

    // 3. Run the pipeline: trust neighborhood → taxonomy-profile similarity
    //    → rank synthesization → weighted voting.
    let engine = Recommender::new(community, RecommenderConfig::default());
    let (recs, trace) = engine.recommend_traced(alice, 3).unwrap();

    println!("Alice's trust neighborhood: {} peers (Appleseed: {} iterations, {} nodes)",
        trace.neighborhood_size, trace.trust_iterations, trace.nodes_explored);
    println!("Peers with positive synthesized weight: {}\n", trace.effective_peers);

    println!("Top recommendations for Alice:");
    for (rank, rec) in recs.iter().enumerate() {
        let product = engine.community().catalog.product(rec.product);
        println!(
            "  {}. {} (score {:.3}, {} voter{})",
            rank + 1,
            product.title,
            rec.score,
            rec.voters,
            if rec.voters == 1 { "" } else { "s" },
        );
    }

    // Snow Crash leads: "products positively mentioned within several rating
    // histories of high weighted peers thus have greater chance of being
    // recommended" (§3.4) — both Bob and Carol vouch for it.
    assert_eq!(recs[0].product, products[2]);
    assert_eq!(recs[0].voters, 2);

    // Why? The engine can reconstruct the full provenance of any slot.
    let explanation = engine.explain(alice, recs[0].product).unwrap().unwrap();
    println!("\nWhy Snow Crash?");
    for voter in &explanation.voters {
        let who = &engine.community().agent(voter.agent).unwrap().uri;
        println!(
            "  {who} voted (trust {:.2}, similarity {}, their rating {:.1})",
            voter.trust,
            voter
                .similarity
                .map_or("⊥".to_string(), |s| format!("{s:.3}")),
            voter.rating,
        );
    }
    println!("\nSnow Crash wins through two trusted voters (§3.4's voting scheme). Note how");
    println!("Mallory's push of Neuromancer had no effect beyond Carol's own vote: Mallory is");
    println!("outside Alice's trust neighborhood, so her vote never enters the computation.");
}
