//! The §2 security story: profile-copy sybils against plain CF vs the
//! trust-filtered hybrid.
//!
//! "Malicious agents a_j can accomplish high similarity with a_i by simply
//! copying its profile" — here 25 sybils clone a victim's reading history
//! and push one product. Plain collaborative filtering embraces them as the
//! victim's nearest neighbors; the trust-aware pipeline never lets them
//! vote.
//!
//! ```sh
//! cargo run --release --example attack_simulation
//! ```

use semrec::core::{Recommender, RecommenderConfig};
use semrec::datagen::attack::{inject_profile_copy_attack, AttackConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::baselines::knn_product_cf;
use semrec::ProductId;

fn main() {
    let generated = generate_community(&CommunityGenConfig::small(77));
    let mut community = generated.community;
    let victim = community.agents().next().unwrap();

    // The product the attacker wants pushed: an obscure one nobody rated —
    // the realistic shilling target, invisible to any honest recommender.
    let pushed: ProductId = community
        .catalog
        .iter()
        .find(|&p| {
            community.rating(victim, p).is_none()
                && community.agents().all(|a| community.rating(a, p).is_none())
        })
        .expect("an unrated product exists");
    println!(
        "Victim: {} | pushed product: {}",
        community.agent(victim).unwrap().uri,
        community.catalog.product(pushed).identifier
    );

    // Baseline behaviour before the attack.
    let clean_plain = knn_product_cf(&community, victim, 20, 10);
    let clean_engine = Recommender::new(community.clone(), RecommenderConfig::default());
    let clean_hybrid = clean_engine.recommend(victim, 10).unwrap();
    println!(
        "\nBefore attack: pushed in plain-CF top-10: {} | in hybrid top-10: {}",
        clean_plain.contains(&pushed),
        clean_hybrid.iter().any(|r| r.product == pushed)
    );

    // Inject 25 profile-copying sybils.
    let sybils = inject_profile_copy_attack(
        &mut community,
        &AttackConfig { sybils: 25, pushed_product: pushed, victim, build_clique: true, seed: 9 },
    );
    println!("Injected {} sybils cloning the victim's profile and pushing the product.", sybils.len());

    // Plain CF: sybils are (by construction) the victim's most similar peers.
    let attacked_plain = knn_product_cf(&community, victim, 20, 10);
    let plain_hit = attacked_plain.first() == Some(&pushed);

    // Trust-filtered hybrid: sybils are outside every honest trust
    // neighborhood, so their votes never enter the computation.
    let engine = Recommender::new(community, RecommenderConfig::default());
    let attacked_hybrid = engine.recommend(victim, 10).unwrap();
    let hybrid_hit = attacked_hybrid.iter().any(|r| r.product == pushed);

    println!("\nAfter attack:");
    println!("  plain CF   : pushed product is rank-1 recommendation: {plain_hit}");
    println!("  trust-aware: pushed product appears in top-10 at all : {hybrid_hit}");

    assert!(plain_hit, "plain CF should fall for the profile-copy attack");
    assert!(!hybrid_hit, "trust filtering should suppress the pushed product");
    println!("\nTrust neighborhood formation made the recommendation computation secure (§3.2).");
}
