//! Decentralized deployment end-to-end (§4): agents publish machine-readable
//! homepages and weblogs onto a simulated document web; a crawler discovers
//! the network, mines implicit votes from weblog hyperlinks, reassembles the
//! information model and serves a recommendation — no central rating
//! database anywhere.
//!
//! ```sh
//! cargo run --example weblog_crawl
//! ```

use semrec::core::{Community, Recommender, RecommenderConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::web::crawler::{assemble_community, crawl, CrawlConfig};
use semrec::web::publish::publish_community;
use semrec::web::store::DocumentWeb;
use semrec::web::weblog::{mine_weblog, render_weblog, WeblogEntry};
use semrec::web::Isbn10;

fn main() {
    // 1. A synthetic community stands in for the All Consuming + Advogato
    //    crawl of §4.1 (see DESIGN.md for the substitution argument).
    let generated = generate_community(&CommunityGenConfig::small(2004));
    let original = generated.community;
    println!(
        "Synthetic community: {} agents, {} trust statements, {} ratings",
        original.agent_count(),
        original.trust.edge_count(),
        original.rating_count()
    );

    // 2. Everyone publishes their FOAF homepage (Turtle) onto the web.
    let web = DocumentWeb::new();
    let published = publish_community(&original, &web);
    println!("Published {published} machine-readable homepages");

    // 2b. One agent also keeps a weblog with Amazon-style product links —
    //     the implicit-vote channel the paper describes.
    let entries = vec![WeblogEntry {
        title: "Two books I loved".into(),
        body: "Both kept me up at night.".into(),
        linked_products: vec![
            Isbn10::parse("0471958697").unwrap(),
            Isbn10::parse("155860832X").unwrap(),
        ],
    }];
    let html = render_weblog("agent-0", &entries);
    web.publish("http://community.example.org/weblogs/0", &html, "text/html");
    let votes = mine_weblog(&html);
    println!("Weblog mining found {} implicit votes: {:?}", votes.len(),
        votes.iter().map(Isbn10::as_str).collect::<Vec<_>>());

    // 3. Crawl from a seed homepage, bounded range — locality is what makes
    //    the decentralized setting scale (§2).
    let seed = original.agent(original.agents().next().unwrap()).unwrap().uri.clone();
    let result = crawl(&web, &[seed], &CrawlConfig { max_range: 8, ..Default::default() });
    println!(
        "Crawl: {} documents fetched, {} agents discovered, {} parse errors",
        result.documents_fetched,
        result.agents.len(),
        result.parse_errors
    );

    // 4. Reassemble the §3.1 information model from the crawled documents
    //    over the globally published taxonomy + catalog.
    let (rebuilt, stats) =
        assemble_community(&result.agents, original.taxonomy.clone(), original.catalog.clone());
    println!(
        "Assembled community: {} agents, {} trust edges, {} ratings ({} unknown products)",
        stats.agents, stats.trust_edges, stats.ratings, stats.unknown_products
    );

    // 5. Recommend for the seed agent from the *crawled* view.
    let target = rebuilt.agents().next().unwrap();
    let engine = Recommender::new(rebuilt, RecommenderConfig::default());
    let recs = engine.recommend(target, 5).unwrap();
    println!("\nTop-5 recommendations for the seed agent (from crawled data only):");
    for (i, rec) in recs.iter().enumerate() {
        let product = engine.community().catalog.product(rec.product);
        println!("  {}. {} — {} (score {:.3})", i + 1, product.identifier, product.title, rec.score);
    }
    assert!(!recs.is_empty(), "the crawled view must support recommendations");

    demo_fidelity(&original, engine.community());
}

/// Sanity: the crawled view preserves every rating/trust statement of the
/// agents it reached.
fn demo_fidelity(original: &Community, rebuilt: &Community) {
    let mut checked = 0;
    for agent in rebuilt.agents() {
        let uri = &rebuilt.agent(agent).unwrap().uri;
        if let Some(orig) = original.agent_by_uri(uri) {
            assert_eq!(
                original.ratings_of(orig).len(),
                rebuilt.ratings_of(agent).len(),
                "rating count mismatch for {uri}"
            );
            checked += 1;
        }
    }
    println!("\nFidelity check: {checked} crawled agents carry their exact original data.");
}
