//! Exploring the trust metrics (§3.2): Appleseed versus Advogato versus
//! scalar path trust on an Advogato-like synthetic network.
//!
//! ```sh
//! cargo run --release --example trust_explorer
//! ```

use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::Table;
use semrec::trust::advogato::{advogato, AdvogatoParams};
use semrec::trust::appleseed::{appleseed, AppleseedParams};
use semrec::trust::scalar::{global_reputation, path_trust};

fn main() {
    let generated = generate_community(&CommunityGenConfig::small(1234));
    let community = generated.community;
    let graph = &community.trust;
    let source = community.agents().next().unwrap();
    println!(
        "Trust network: {} agents, {} statements (mean out-degree {:.2})\n",
        graph.agent_count(),
        graph.edge_count(),
        graph.mean_out_degree()
    );

    // Appleseed: continuous trust ranks via spreading activation.
    let params = AppleseedParams { injection: 200.0, spreading_factor: 0.85, ..Default::default() };
    let result = appleseed(graph, source, &params).unwrap();
    println!(
        "Appleseed from {source}: {} nodes discovered, {} iterations, converged: {}",
        result.nodes_discovered, result.iterations, result.converged
    );

    // Advogato: boolean certification of a target group.
    let adv = advogato(graph, source, &AdvogatoParams { target_group_size: 30, ..Default::default() })
        .unwrap();
    println!("Advogato (group size 30): {} agents certified\n", adv.accepted.len());

    // Side-by-side for the top Appleseed peers.
    let mut table = Table::new(["peer", "appleseed rank", "advogato", "path trust", "global rep"]);
    for &(peer, rank) in result.top(10) {
        table.row([
            peer.to_string(),
            format!("{rank:.3}"),
            if adv.is_accepted(peer) { "certified".into() } else { "-".to_string() },
            format!("{:.3}", path_trust(graph, source, peer, None).unwrap()),
            format!("{:.3}", global_reputation(graph, peer).unwrap()),
        ]);
    }
    println!("{}", table.render());

    println!("Note the difference in expressiveness (§3.2): Advogato only answers");
    println!("certified-or-not, while Appleseed's continuous ranks order peers — which is");
    println!("what rank synthesization (§3.4) needs. Scalar path trust answers pairwise");
    println!("queries only, one Dijkstra per peer.");

    // Spreading factor sweep: how d shifts rank toward distant peers.
    println!("\nSpreading factor sweep (rank share of the #1 peer):");
    for d in [0.5, 0.65, 0.8, 0.9] {
        let r = appleseed(
            graph,
            source,
            &AppleseedParams { spreading_factor: d, ..params },
        )
        .unwrap();
        let total = r.total_rank();
        let head = r.top(1).first().map_or(0.0, |&(_, x)| x);
        println!("  d = {d:.2}: head share {:.1}%  (total rank {total:.1}, {} iterations)",
            100.0 * head / total.max(f64::EPSILON), r.iterations);
    }
}
