//! Property tests over random trust networks: Appleseed energy conservation,
//! determinism and locality; max-flow sanity against a brute-force cut bound.

use proptest::prelude::*;
use semrec_trust::appleseed::{appleseed, AppleseedParams};
use semrec_trust::maxflow::FlowNetwork;
use semrec_trust::{AgentId, TrustGraph};

/// Builds a graph with `n` agents and the given edge list (endpoints taken
/// modulo `n`, self-edges skipped, duplicates overwrite).
fn build(n: usize, edges: &[(usize, usize, f64)]) -> TrustGraph {
    let mut g = TrustGraph::with_agents(n);
    let ids: Vec<_> = g.agents().collect();
    for &(a, b, w) in edges {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.set_trust(ids[a], ids[b], w).unwrap();
        }
    }
    g
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..(n * 3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn appleseed_total_rank_never_exceeds_injection(
        edges in arb_edges(12),
    ) {
        let g = build(12, &edges);
        let src = AgentId::from_index(0);
        let params = AppleseedParams { convergence: 1e-4, ..Default::default() };
        let res = appleseed(&g, src, &params).unwrap();
        prop_assert!(res.total_rank() <= params.injection + 1e-6,
            "total rank {} exceeds injection", res.total_rank());
    }

    #[test]
    fn appleseed_ranks_are_nonnegative_without_distrust(
        edges in arb_edges(12),
    ) {
        let g = build(12, &edges);
        let res = appleseed(&g, AgentId::from_index(0), &AppleseedParams::default()).unwrap();
        for (a, r) in &res.ranks {
            prop_assert!(*r >= 0.0, "agent {a} has negative rank {r}");
        }
    }

    #[test]
    fn appleseed_is_deterministic(edges in arb_edges(10)) {
        let g = build(10, &edges);
        let src = AgentId::from_index(0);
        let a = appleseed(&g, src, &AppleseedParams::default()).unwrap();
        let b = appleseed(&g, src, &AppleseedParams::default()).unwrap();
        prop_assert_eq!(a.ranks, b.ranks);
    }

    #[test]
    fn appleseed_only_ranks_reachable_agents(edges in arb_edges(14)) {
        let g = build(14, &edges);
        let src = AgentId::from_index(0);
        let res = appleseed(&g, src, &AppleseedParams::default()).unwrap();
        // BFS over positive edges = the reachable set.
        let mut reach = vec![false; g.agent_count()];
        reach[src.index()] = true;
        let mut stack = vec![src];
        while let Some(v) = stack.pop() {
            for (s, _) in g.positive_out_edges(v) {
                if !reach[s.index()] {
                    reach[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        for (a, r) in &res.ranks {
            if *r > 0.0 {
                prop_assert!(reach[a.index()], "unreachable agent {a} ranked {r}");
            }
        }
    }

    #[test]
    fn appleseed_range_zero_discovers_only_source(edges in arb_edges(10)) {
        let g = build(10, &edges);
        let res = appleseed(
            &g,
            AgentId::from_index(0),
            &AppleseedParams { max_range: Some(0), ..Default::default() },
        ).unwrap();
        prop_assert_eq!(res.nodes_discovered, 1);
        prop_assert!(res.ranks.is_empty());
    }

    #[test]
    fn maxflow_bounded_by_source_and_sink_degree_capacity(
        caps in prop::collection::vec(0i64..20, 9),
    ) {
        // 3x3 grid-ish network: s → {a,b,c} → t with crossing edges.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let mid: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let t = net.add_node();
        let mut out_cap = 0;
        let mut in_cap = 0;
        for i in 0..3 {
            net.add_edge(s, mid[i], caps[i]);
            out_cap += caps[i];
            net.add_edge(mid[i], t, caps[3 + i]);
            in_cap += caps[3 + i];
        }
        net.add_edge(mid[0], mid[1], caps[6]);
        net.add_edge(mid[1], mid[2], caps[7]);
        net.add_edge(mid[2], mid[0], caps[8]);
        let flow = net.max_flow(s, t);
        prop_assert!(flow <= out_cap.min(in_cap));
        prop_assert!(flow >= 0);
        // Per-edge flow never exceeds capacity (checked via residuals ≥ 0).
        for e in (0..9).map(|i| (i * 2) as u32) {
            prop_assert!(net.residual(e) >= 0);
        }
    }
}
