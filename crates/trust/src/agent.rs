//! Agent identifiers.

use std::fmt;

/// Dense identifier of an agent `a_i ∈ A`.
///
/// The paper assigns globally unique identifiers through URIs; the URI ↔
/// dense-id mapping lives in the framework layer (`semrec-core` /
/// `semrec-web`). Trust metrics operate on dense ids only, so the spreading
/// activation loop indexes straight into vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub(crate) u32);

impl AgentId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an `AgentId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        AgentId(u32::try_from(index).expect("agent index exceeds u32"))
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_indexes() {
        assert_eq!(AgentId::from_index(42).index(), 42);
        assert_eq!(AgentId::from_index(0).to_string(), "a0");
    }
}
