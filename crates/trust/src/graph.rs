//! The trust network: the set `T = {t_1, …, t_n}` of partial trust functions
//! `t_i: A → [-1, +1]⊥` (§3.1 of the paper).
//!
//! High values denote high trust, negative values explicit *distrust*, and
//! absence (`⊥`) simply "no statement" — the paper stresses that values
//! around zero indicate absence of trust, *not to be confused with explicit
//! distrust* (Marsh, ref \[8\]). Functions are sparse: each agent typically
//! rates only a handful of peers, so edges are adjacency lists.

use crate::agent::AgentId;
use crate::error::{Result, TrustError};

/// A directed, weighted trust network with edge weights in `[-1, +1]`.
#[derive(Clone, Debug, Default)]
pub struct TrustGraph {
    /// Outgoing edges per agent, kept sorted by target for binary search.
    out: Vec<Vec<(AgentId, f64)>>,
    /// Incoming edges per agent (sources only, for reverse traversal).
    inc: Vec<Vec<AgentId>>,
    edge_count: usize,
}

impl TrustGraph {
    /// Creates an empty trust network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a network with `n` isolated agents.
    pub fn with_agents(n: usize) -> Self {
        TrustGraph { out: vec![Vec::new(); n], inc: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Adds a new agent, returning its id.
    pub fn add_agent(&mut self) -> AgentId {
        let id = AgentId::from_index(self.out.len());
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Number of agents `n = |A|`.
    pub fn agent_count(&self) -> usize {
        self.out.len()
    }

    /// Number of trust statements (directed edges).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates all agent ids.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        (0..self.out.len()).map(AgentId::from_index)
    }

    fn check(&self, agent: AgentId) -> Result<()> {
        if agent.index() >= self.out.len() {
            return Err(TrustError::UnknownAgent(agent.index()));
        }
        Ok(())
    }

    /// Sets `t_i(a_j) = weight`, replacing any previous statement.
    ///
    /// Weights must lie in `[-1, +1]` and self-trust is rejected.
    pub fn set_trust(&mut self, truster: AgentId, trustee: AgentId, weight: f64) -> Result<()> {
        self.check(truster)?;
        self.check(trustee)?;
        if truster == trustee {
            return Err(TrustError::SelfTrust(truster.index()));
        }
        if !(-1.0..=1.0).contains(&weight) || weight.is_nan() {
            return Err(TrustError::InvalidWeight(weight));
        }
        let edges = &mut self.out[truster.index()];
        match edges.binary_search_by_key(&trustee, |&(t, _)| t) {
            Ok(pos) => edges[pos].1 = weight,
            Err(pos) => {
                edges.insert(pos, (trustee, weight));
                self.inc[trustee.index()].push(truster);
                self.edge_count += 1;
            }
        }
        Ok(())
    }

    /// Removes a trust statement; returns `true` if one existed.
    pub fn remove_trust(&mut self, truster: AgentId, trustee: AgentId) -> bool {
        let Some(edges) = self.out.get_mut(truster.index()) else { return false };
        match edges.binary_search_by_key(&trustee, |&(t, _)| t) {
            Ok(pos) => {
                edges.remove(pos);
                self.inc[trustee.index()].retain(|&s| s != truster);
                self.edge_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// `t_i(a_j)`: the trust value, or `None` for `⊥` (no statement).
    pub fn trust(&self, truster: AgentId, trustee: AgentId) -> Option<f64> {
        let edges = self.out.get(truster.index())?;
        edges
            .binary_search_by_key(&trustee, |&(t, _)| t)
            .ok()
            .map(|pos| edges[pos].1)
    }

    /// All outgoing statements of an agent, sorted by trustee id.
    pub fn out_edges(&self, agent: AgentId) -> &[(AgentId, f64)] {
        &self.out[agent.index()]
    }

    /// Agents that issued a statement about `agent`.
    pub fn trusters_of(&self, agent: AgentId) -> &[AgentId] {
        &self.inc[agent.index()]
    }

    /// Outgoing statements with strictly positive weight (trust proper).
    pub fn positive_out_edges(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.out[agent.index()].iter().copied().filter(|&(_, w)| w > 0.0)
    }

    /// Outgoing statements with strictly negative weight (explicit distrust).
    pub fn negative_out_edges(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.out[agent.index()].iter().copied().filter(|&(_, w)| w < 0.0)
    }

    /// Reassembles a graph from raw adjacency lists (the
    /// [`CsrGraph`](crate::csr::CsrGraph) expansion path). The caller —
    /// crate-internal only — guarantees consistency: `out` sorted by
    /// trustee, `inc` mirroring it, ids in range.
    pub(crate) fn from_adjacency(
        out: Vec<Vec<(AgentId, f64)>>,
        inc: Vec<Vec<AgentId>>,
    ) -> TrustGraph {
        debug_assert_eq!(out.len(), inc.len());
        let edge_count = out.iter().map(Vec::len).sum();
        TrustGraph { out, inc, edge_count }
    }

    /// Mean out-degree (trust statements per agent).
    pub fn mean_out_degree(&self) -> f64 {
        if self.out.is_empty() {
            return 0.0;
        }
        self.edge_count as f64 / self.out.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(g: &TrustGraph) -> Vec<AgentId> {
        g.agents().collect()
    }

    #[test]
    fn set_and_get_trust() {
        let mut g = TrustGraph::with_agents(3);
        let a = ids(&g);
        g.set_trust(a[0], a[1], 0.8).unwrap();
        g.set_trust(a[0], a[2], -0.5).unwrap();
        assert_eq!(g.trust(a[0], a[1]), Some(0.8));
        assert_eq!(g.trust(a[0], a[2]), Some(-0.5));
        assert_eq!(g.trust(a[1], a[0]), None); // ⊥ — no statement
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn set_trust_replaces() {
        let mut g = TrustGraph::with_agents(2);
        let a = ids(&g);
        g.set_trust(a[0], a[1], 0.3).unwrap();
        g.set_trust(a[0], a[1], 0.9).unwrap();
        assert_eq!(g.trust(a[0], a[1]), Some(0.9));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn invalid_weights_rejected() {
        let mut g = TrustGraph::with_agents(2);
        let a = ids(&g);
        assert!(matches!(g.set_trust(a[0], a[1], 1.5), Err(TrustError::InvalidWeight(_))));
        assert!(matches!(g.set_trust(a[0], a[1], -1.01), Err(TrustError::InvalidWeight(_))));
        assert!(matches!(g.set_trust(a[0], a[1], f64::NAN), Err(TrustError::InvalidWeight(_))));
        // Boundary values are legal.
        assert!(g.set_trust(a[0], a[1], 1.0).is_ok());
        assert!(g.set_trust(a[0], a[1], -1.0).is_ok());
    }

    #[test]
    fn self_trust_rejected() {
        let mut g = TrustGraph::with_agents(1);
        let a = ids(&g);
        assert!(matches!(g.set_trust(a[0], a[0], 0.5), Err(TrustError::SelfTrust(0))));
    }

    #[test]
    fn unknown_agents_rejected() {
        let mut g = TrustGraph::with_agents(1);
        let ghost = AgentId::from_index(7);
        assert!(matches!(
            g.set_trust(AgentId::from_index(0), ghost, 0.5),
            Err(TrustError::UnknownAgent(7))
        ));
    }

    #[test]
    fn remove_trust() {
        let mut g = TrustGraph::with_agents(2);
        let a = ids(&g);
        g.set_trust(a[0], a[1], 0.4).unwrap();
        assert!(g.remove_trust(a[0], a[1]));
        assert!(!g.remove_trust(a[0], a[1]));
        assert_eq!(g.trust(a[0], a[1]), None);
        assert_eq!(g.edge_count(), 0);
        assert!(g.trusters_of(a[1]).is_empty());
    }

    #[test]
    fn edge_sign_partitions() {
        let mut g = TrustGraph::with_agents(4);
        let a = ids(&g);
        g.set_trust(a[0], a[1], 0.8).unwrap();
        g.set_trust(a[0], a[2], -0.6).unwrap();
        g.set_trust(a[0], a[3], 0.0).unwrap(); // zero: neither trust nor distrust
        assert_eq!(g.positive_out_edges(a[0]).count(), 1);
        assert_eq!(g.negative_out_edges(a[0]).count(), 1);
        assert_eq!(g.out_edges(a[0]).len(), 3);
    }

    #[test]
    fn incoming_edges_track_sources() {
        let mut g = TrustGraph::with_agents(3);
        let a = ids(&g);
        g.set_trust(a[0], a[2], 0.5).unwrap();
        g.set_trust(a[1], a[2], 0.7).unwrap();
        assert_eq!(g.trusters_of(a[2]), &[a[0], a[1]]);
    }

    #[test]
    fn add_agent_grows_the_network() {
        let mut g = TrustGraph::new();
        let a = g.add_agent();
        let b = g.add_agent();
        g.set_trust(a, b, 0.5).unwrap();
        assert_eq!(g.agent_count(), 2);
        assert!((g.mean_out_degree() - 0.5).abs() < 1e-12);
    }
}
