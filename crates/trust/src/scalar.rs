//! Scalar trust metrics (refs \[10\], \[11\] discussion in §3.2).
//!
//! The paper contrasts *scalar* metrics — which evaluate trust between two
//! given individuals — with the *local group* metrics it actually needs.
//! These baselines exist so experiments can show why group metrics were the
//! right choice: scalar metrics answer pairwise queries, and turning them
//! into neighborhood formation requires evaluating them against every
//! candidate peer.

use std::collections::BinaryHeap;

use crate::agent::AgentId;
use crate::error::{Result, TrustError};
use crate::graph::TrustGraph;

/// Multiplicative path trust: the maximum over all directed paths of the
/// product of positive edge weights, optionally depth-bounded.
///
/// This is the classic Beth/Borcherding/Klein-style concatenation rule
/// (ref \[10\]): trust dilutes multiplicatively along recommendation chains.
/// Computed exactly with a Dijkstra variant on `−log w` costs.
pub fn path_trust(
    graph: &TrustGraph,
    source: AgentId,
    target: AgentId,
    max_depth: Option<u32>,
) -> Result<f64> {
    Ok(strongest_path(graph, source, target, max_depth)?
        .map_or(0.0, |(product, _)| product))
}

/// Like [`path_trust`], also returning the strongest path itself
/// (`source, …, target`): the provenance chain behind a transitive trust
/// judgement. `None` when the target is unreachable; self-queries return
/// product 1.0 with the single-node path.
pub fn strongest_path(
    graph: &TrustGraph,
    source: AgentId,
    target: AgentId,
    max_depth: Option<u32>,
) -> Result<Option<(f64, Vec<AgentId>)>> {
    for id in [source, target] {
        if id.index() >= graph.agent_count() {
            return Err(TrustError::UnknownAgent(id.index()));
        }
    }
    if source == target {
        return Ok(Some((1.0, vec![source])));
    }

    // Max-product Dijkstra: state = (best product so far, node, depth).
    #[derive(PartialEq)]
    struct State(f64, AgentId, u32);
    impl Eq for State {}
    impl Ord for State {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).unwrap().then(self.1.cmp(&other.1).reverse())
        }
    }
    impl PartialOrd for State {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut best = vec![0.0f64; graph.agent_count()];
    let mut predecessor: Vec<Option<AgentId>> = vec![None; graph.agent_count()];
    best[source.index()] = 1.0;
    let mut heap = BinaryHeap::from([State(1.0, source, 0)]);
    while let Some(State(product, node, depth)) = heap.pop() {
        if node == target {
            let mut path = vec![target];
            let mut cursor = target;
            while let Some(prev) = predecessor[cursor.index()] {
                path.push(prev);
                cursor = prev;
            }
            path.reverse();
            return Ok(Some((product, path)));
        }
        if product < best[node.index()] {
            continue;
        }
        if max_depth.is_some_and(|d| depth >= d) {
            continue;
        }
        for (succ, w) in graph.positive_out_edges(node) {
            let candidate = product * w;
            if candidate > best[succ.index()] {
                best[succ.index()] = candidate;
                predecessor[succ.index()] = Some(node);
                heap.push(State(candidate, succ, depth + 1));
            }
        }
    }
    Ok(None)
}

/// Global ("eBay"-style) reputation: the mean of all statements an agent
/// received, regardless of who issued them.
///
/// Deliberately *not* subjective — the baseline the paper's §2 security
/// issue argues against, since anyone can inflate it with fake accounts.
pub fn global_reputation(graph: &TrustGraph, agent: AgentId) -> Result<f64> {
    if agent.index() >= graph.agent_count() {
        return Err(TrustError::UnknownAgent(agent.index()));
    }
    let trusters = graph.trusters_of(agent);
    if trusters.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = trusters
        .iter()
        .map(|&t| graph.trust(t, agent).unwrap_or(0.0))
        .sum();
    Ok(sum / trusters.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TrustGraph, Vec<AgentId>) {
        let mut g = TrustGraph::with_agents(4);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 0.9).unwrap();
        g.set_trust(ids[0], ids[2], 0.5).unwrap();
        g.set_trust(ids[1], ids[3], 0.5).unwrap();
        g.set_trust(ids[2], ids[3], 0.9).unwrap();
        (g, ids)
    }

    #[test]
    fn picks_the_best_path() {
        let (g, ids) = diamond();
        // 0.9 * 0.5 = 0.45 on both paths.
        let t = path_trust(&g, ids[0], ids[3], None).unwrap();
        assert!((t - 0.45).abs() < 1e-12);
    }

    #[test]
    fn direct_edge_beats_long_path() {
        let (mut g, ids) = diamond();
        g.set_trust(ids[0], ids[3], 0.6).unwrap();
        let t = path_trust(&g, ids[0], ids[3], None).unwrap();
        assert!((t - 0.6).abs() < 1e-12);
    }

    #[test]
    fn self_trust_is_one_and_unreachable_zero() {
        let (g, ids) = diamond();
        assert_eq!(path_trust(&g, ids[0], ids[0], None).unwrap(), 1.0);
        assert_eq!(path_trust(&g, ids[3], ids[0], None).unwrap(), 0.0);
    }

    #[test]
    fn depth_bound_cuts_long_paths() {
        let (g, ids) = diamond();
        assert_eq!(path_trust(&g, ids[0], ids[3], Some(1)).unwrap(), 0.0);
        assert!((path_trust(&g, ids[0], ids[3], Some(2)).unwrap() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn strongest_path_returns_the_chain() {
        let (g, ids) = diamond();
        let (product, path) = strongest_path(&g, ids[0], ids[3], None).unwrap().unwrap();
        assert!((product - 0.45).abs() < 1e-12);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], ids[0]);
        assert_eq!(*path.last().unwrap(), ids[3]);
        // Either diamond arm is a valid 0.45 path.
        assert!(path[1] == ids[1] || path[1] == ids[2]);
        // Consecutive hops are real positive edges.
        for w in path.windows(2) {
            assert!(g.trust(w[0], w[1]).unwrap() > 0.0);
        }
        assert_eq!(strongest_path(&g, ids[3], ids[0], None).unwrap(), None);
        let (self_product, self_path) =
            strongest_path(&g, ids[0], ids[0], None).unwrap().unwrap();
        assert_eq!(self_product, 1.0);
        assert_eq!(self_path, vec![ids[0]]);
    }

    #[test]
    fn negative_edges_are_not_recommendation_channels() {
        let mut g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], -0.9).unwrap();
        g.set_trust(ids[1], ids[2], 0.9).unwrap();
        assert_eq!(path_trust(&g, ids[0], ids[2], None).unwrap(), 0.0);
    }

    #[test]
    fn global_reputation_averages_incoming() {
        let (mut g, ids) = diamond();
        g.set_trust(ids[1], ids[2], -0.5).unwrap();
        // ids[2] receives 0.5 (from 0) and -0.5 (from 1).
        assert_eq!(global_reputation(&g, ids[2]).unwrap(), 0.0);
        assert_eq!(global_reputation(&g, ids[0]).unwrap(), 0.0); // nobody rates 0
        assert!((global_reputation(&g, ids[3]).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn unknown_agents_rejected() {
        let (g, ids) = diamond();
        assert!(path_trust(&g, ids[0], AgentId::from_index(99), None).is_err());
        assert!(global_reputation(&g, AgentId::from_index(99)).is_err());
    }
}
