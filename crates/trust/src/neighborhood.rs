//! Trust neighborhood formation (§3.2): "the first pillar of our approach".
//!
//! A neighborhood is the *subjective* set of peers an agent relies upon for
//! recommendations: the top-ranked agents from a local group trust metric,
//! optionally thresholded. Collaborative filtering (§3.3) then runs only
//! over this set — the "intelligent prefiltering mechanism" the scalability
//! research issue of §2 calls for.

use crate::agent::AgentId;
use crate::appleseed::{appleseed_on, AppleseedParams, TrustTopology};
use crate::csr::CsrGraph;
use crate::error::Result;
use crate::graph::TrustGraph;

/// How a trust neighborhood is selected from the metric's ranking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborhoodParams {
    /// Appleseed parameters for the underlying ranking.
    pub appleseed: AppleseedParams,
    /// Keep at most this many peers.
    pub max_peers: usize,
    /// Drop peers whose rank falls below this absolute threshold.
    pub min_rank: f64,
}

impl Default for NeighborhoodParams {
    fn default() -> Self {
        NeighborhoodParams {
            // Bounded exploration is what keeps the computation local
            // (§3.2: "exploring the social network within predefined ranges
            // only and allowing the neighborhood detection process to retain
            // scalability") — without these caps Appleseed would walk the
            // whole reachable component and per-query cost would grow with
            // community size (see experiment E6).
            appleseed: AppleseedParams {
                max_nodes: Some(400),
                max_range: Some(6),
                ..AppleseedParams::default()
            },
            max_peers: 50,
            min_rank: 0.0,
        }
    }
}

/// A computed trust neighborhood: peers with their trust ranks, sorted by
/// descending rank.
#[derive(Clone, Debug)]
pub struct TrustNeighborhood {
    /// The agent whose neighborhood this is.
    pub source: AgentId,
    /// `(peer, trust rank)` sorted by descending rank.
    pub peers: Vec<(AgentId, f64)>,
    /// Iterations the trust metric needed.
    pub iterations: usize,
    /// Nodes the trust metric explored.
    pub nodes_explored: usize,
}

impl TrustNeighborhood {
    /// The trust rank of a peer (0 if outside the neighborhood).
    pub fn rank_of(&self, peer: AgentId) -> f64 {
        self.peers
            .iter()
            .find(|&&(p, _)| p == peer)
            .map_or(0.0, |&(_, r)| r)
    }

    /// True if the peer made it into the neighborhood.
    pub fn contains(&self, peer: AgentId) -> bool {
        self.peers.iter().any(|&(p, _)| p == peer)
    }

    /// Trust ranks normalized to `[0, 1]` by the maximum rank.
    ///
    /// Used by rank synthesization (§3.4) to make trust comparable with
    /// similarity scores.
    pub fn normalized(&self) -> Vec<(AgentId, f64)> {
        let max = self.peers.first().map_or(0.0, |&(_, r)| r);
        if max <= 0.0 {
            return self.peers.clone();
        }
        self.peers.iter().map(|&(p, r)| (p, (r / max).max(0.0))).collect()
    }
}

/// Forms the trust neighborhood of `source` with Appleseed.
pub fn form_neighborhood(
    graph: &TrustGraph,
    source: AgentId,
    params: &NeighborhoodParams,
) -> Result<TrustNeighborhood> {
    form_neighborhood_on(graph, source, params)
}

/// Forms the trust neighborhood of `source` over a flat [`CsrGraph`] —
/// the engine's hot path. Bit-identical to [`form_neighborhood`] on the
/// equivalent adjacency-list graph.
pub fn form_neighborhood_csr(
    graph: &CsrGraph,
    source: AgentId,
    params: &NeighborhoodParams,
) -> Result<TrustNeighborhood> {
    form_neighborhood_on(graph, source, params)
}

fn form_neighborhood_on<G: TrustTopology>(
    graph: &G,
    source: AgentId,
    params: &NeighborhoodParams,
) -> Result<TrustNeighborhood> {
    let result = appleseed_on(graph, source, &params.appleseed)?;
    let peers = result
        .ranks
        .iter()
        .copied()
        .filter(|&(_, r)| r > params.min_rank)
        .take(params.max_peers)
        .collect();
    Ok(TrustNeighborhood {
        source,
        peers,
        iterations: result.iterations,
        nodes_explored: result.nodes_discovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn community() -> (TrustGraph, Vec<AgentId>) {
        let mut g = TrustGraph::with_agents(6);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[0], ids[2], 0.8).unwrap();
        g.set_trust(ids[1], ids[3], 0.9).unwrap();
        g.set_trust(ids[2], ids[4], 0.7).unwrap();
        g.set_trust(ids[3], ids[5], 0.5).unwrap();
        (g, ids)
    }

    #[test]
    fn neighborhood_is_sorted_and_capped() {
        let (g, ids) = community();
        let nb = form_neighborhood(
            &g,
            ids[0],
            &NeighborhoodParams { max_peers: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(nb.peers.len(), 3);
        assert!(nb.peers.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(!nb.contains(ids[0]));
    }

    #[test]
    fn min_rank_threshold_prunes_weak_peers() {
        let (g, ids) = community();
        let all = form_neighborhood(&g, ids[0], &NeighborhoodParams::default()).unwrap();
        let strong = form_neighborhood(
            &g,
            ids[0],
            &NeighborhoodParams { min_rank: all.peers[1].1, ..Default::default() },
        )
        .unwrap();
        assert!(strong.peers.len() < all.peers.len());
        assert!(strong.peers.iter().all(|&(_, r)| r > all.peers[1].1));
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let (g, ids) = community();
        let nb = form_neighborhood(&g, ids[0], &NeighborhoodParams::default()).unwrap();
        let norm = nb.normalized();
        assert!((norm[0].1 - 1.0).abs() < 1e-12);
        assert!(norm.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
        // Order is preserved.
        let order: Vec<_> = nb.peers.iter().map(|&(p, _)| p).collect();
        let norm_order: Vec<_> = norm.iter().map(|&(p, _)| p).collect();
        assert_eq!(order, norm_order);
    }

    #[test]
    fn rank_accessors() {
        let (g, ids) = community();
        let nb = form_neighborhood(&g, ids[0], &NeighborhoodParams::default()).unwrap();
        assert!(nb.rank_of(ids[1]) > 0.0);
        assert_eq!(nb.rank_of(ids[0]), 0.0);
        assert!(nb.contains(ids[5]));
    }

    #[test]
    fn empty_neighborhood_for_isolated_agent() {
        let g = TrustGraph::with_agents(2);
        let ids: Vec<_> = g.agents().collect();
        let nb = form_neighborhood(&g, ids[0], &NeighborhoodParams::default()).unwrap();
        assert!(nb.peers.is_empty());
        assert!(nb.normalized().is_empty());
    }
}
