//! Compressed-sparse-row (CSR) view of a [`TrustGraph`].
//!
//! The adjacency-list [`TrustGraph`] is the right structure for mutation
//! (binary-search insert per statement), but its `Vec<Vec<(AgentId, f64)>>`
//! layout scatters every agent's edge list across the heap — each hop of a
//! spreading-activation walk is a pointer chase. [`CsrGraph`] packs the
//! same network into five flat arenas:
//!
//! ```text
//! out_offsets : [u32; n+1]   agent i's out-edges live at out_offsets[i]..out_offsets[i+1]
//! out_targets : [u32; m]     trustee ids, sorted within each agent's range
//! out_weights : [f64; m]     parallel trust values
//! in_offsets  : [u32; n+1]   agent i's trusters live at in_offsets[i]..in_offsets[i+1]
//! in_sources  : [u32; m]     truster ids, in the graph's insertion order
//! ```
//!
//! Edge order is preserved *exactly* — out-edges stay sorted by trustee
//! (as `TrustGraph` keeps them) and truster lists keep their insertion
//! order — so every float summation that walks a CSR slice accumulates in
//! the same order as the adjacency-list walk it replaces, and results stay
//! bit-identical. This is also the layout snapshot format v2 persists
//! verbatim, so a recovery can reassemble the graph with bulk copies
//! instead of a per-edge parse.

use crate::agent::AgentId;
use crate::error::{Result, TrustError};
use crate::graph::TrustGraph;

/// A read-only trust network in compressed-sparse-row form.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_weights: Vec<f64>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl CsrGraph {
    /// Packs a [`TrustGraph`] into CSR arenas, preserving edge order.
    pub fn from_graph(graph: &TrustGraph) -> CsrGraph {
        let n = graph.agent_count();
        let m = graph.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(m);
        out_offsets.push(0);
        in_offsets.push(0);
        for agent in graph.agents() {
            for &(target, weight) in graph.out_edges(agent) {
                out_targets.push(target.index() as u32);
                out_weights.push(weight);
            }
            out_offsets.push(out_targets.len() as u32);
            for &source in graph.trusters_of(agent) {
                in_sources.push(source.index() as u32);
            }
            in_offsets.push(in_sources.len() as u32);
        }
        CsrGraph { out_offsets, out_targets, out_weights, in_offsets, in_sources }
    }

    /// Reassembles CSR arenas (e.g. read back from a snapshot), validating
    /// shape and content so corrupted input yields a typed error rather
    /// than a panic or an inconsistent graph:
    /// offsets must be monotone and span their edge arrays exactly, every
    /// target/source id must be `< n`, weights must be in `[-1, 1]` and
    /// non-NaN, targets must be strictly sorted within each agent's range
    /// (no self-edges), and forward/reverse edge counts must agree.
    pub fn from_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<u32>,
        out_weights: Vec<f64>,
        in_offsets: Vec<u32>,
        in_sources: Vec<u32>,
    ) -> Result<CsrGraph> {
        let n = check_offsets(&out_offsets, out_targets.len())?;
        if check_offsets(&in_offsets, in_sources.len())? != n {
            return Err(TrustError::InvalidCsr("forward/reverse agent counts differ"));
        }
        if out_targets.len() != out_weights.len() {
            return Err(TrustError::InvalidCsr("target/weight arrays differ in length"));
        }
        if out_targets.len() != in_sources.len() {
            return Err(TrustError::InvalidCsr("forward/reverse edge counts differ"));
        }
        for i in 0..n {
            let range = out_offsets[i] as usize..out_offsets[i + 1] as usize;
            let targets = &out_targets[range];
            for pair in targets.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(TrustError::InvalidCsr("out-targets not strictly sorted"));
                }
            }
            for &t in targets {
                if t as usize >= n || t as usize == i {
                    return Err(TrustError::InvalidCsr("out-target id out of range"));
                }
            }
        }
        for &s in &in_sources {
            if s as usize >= n {
                return Err(TrustError::InvalidCsr("in-source id out of range"));
            }
        }
        for &w in &out_weights {
            if !(-1.0..=1.0).contains(&w) || w.is_nan() {
                return Err(TrustError::InvalidWeight(w));
            }
        }
        Ok(CsrGraph { out_offsets, out_targets, out_weights, in_offsets, in_sources })
    }

    /// Expands back into an adjacency-list [`TrustGraph`], bit-identical
    /// to the graph [`CsrGraph::from_graph`] was built from (including
    /// truster insertion order) — the snapshot-v2 load path.
    pub fn to_graph(&self) -> TrustGraph {
        let n = self.agent_count();
        let mut out = Vec::with_capacity(n);
        let mut inc = Vec::with_capacity(n);
        for i in 0..n {
            out.push(
                self.out_targets(AgentId::from_index(i))
                    .iter()
                    .zip(self.out_weights(AgentId::from_index(i)))
                    .map(|(&t, &w)| (AgentId::from_index(t as usize), w))
                    .collect(),
            );
            inc.push(
                self.trusters_of(AgentId::from_index(i))
                    .iter()
                    .map(|&s| AgentId::from_index(s as usize))
                    .collect(),
            );
        }
        TrustGraph::from_adjacency(out, inc)
    }

    /// Number of agents `n`.
    pub fn agent_count(&self) -> usize {
        self.out_offsets.len().saturating_sub(1)
    }

    /// Number of trust statements (directed edges).
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    fn out_range(&self, agent: AgentId) -> std::ops::Range<usize> {
        self.out_offsets[agent.index()] as usize..self.out_offsets[agent.index() + 1] as usize
    }

    /// Trustee ids of `agent`'s statements, sorted ascending.
    pub fn out_targets(&self, agent: AgentId) -> &[u32] {
        &self.out_targets[self.out_range(agent)]
    }

    /// Trust values parallel to [`CsrGraph::out_targets`].
    pub fn out_weights(&self, agent: AgentId) -> &[f64] {
        &self.out_weights[self.out_range(agent)]
    }

    /// Ids of agents that issued a statement about `agent`.
    pub fn trusters_of(&self, agent: AgentId) -> &[u32] {
        &self.in_sources
            [self.in_offsets[agent.index()] as usize..self.in_offsets[agent.index() + 1] as usize]
    }

    /// `t_i(a_j)`: the trust value, or `None` for `⊥` (no statement).
    pub fn trust(&self, truster: AgentId, trustee: AgentId) -> Option<f64> {
        let range = self.out_range(truster);
        let targets = &self.out_targets[range.clone()];
        targets
            .binary_search(&(trustee.index() as u32))
            .ok()
            .map(|pos| self.out_weights[range.start + pos])
    }

    /// All outgoing statements of `agent` as `(trustee, weight)` pairs.
    pub fn out_edges(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        let range = self.out_range(agent);
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_weights[range])
            .map(|(&t, &w)| (AgentId::from_index(t as usize), w))
    }

    /// Outgoing statements with strictly positive weight (trust proper).
    pub fn positive_out_edges(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.out_edges(agent).filter(|&(_, w)| w > 0.0)
    }

    /// Outgoing statements with strictly negative weight (explicit distrust).
    pub fn negative_out_edges(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.out_edges(agent).filter(|&(_, w)| w < 0.0)
    }

    /// The raw arenas `(out_offsets, out_targets, out_weights, in_offsets,
    /// in_sources)` — what snapshot format v2 persists verbatim.
    #[allow(clippy::type_complexity)]
    pub fn arenas(&self) -> (&[u32], &[u32], &[f64], &[u32], &[u32]) {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.out_weights,
            &self.in_offsets,
            &self.in_sources,
        )
    }

    /// Resident bytes of the five arenas (the `model.bytes` contribution).
    pub fn resident_bytes(&self) -> usize {
        (self.out_offsets.len() + self.out_targets.len() + self.in_offsets.len()
            + self.in_sources.len())
            * std::mem::size_of::<u32>()
            + self.out_weights.len() * std::mem::size_of::<f64>()
    }
}

fn check_offsets(offsets: &[u32], edges: usize) -> Result<usize> {
    let Some(&last) = offsets.last() else {
        return Err(TrustError::InvalidCsr("empty offset array"));
    };
    if offsets[0] != 0 {
        return Err(TrustError::InvalidCsr("offsets must start at 0"));
    }
    for pair in offsets.windows(2) {
        if pair[0] > pair[1] {
            return Err(TrustError::InvalidCsr("offsets not monotone"));
        }
    }
    if last as usize != edges {
        return Err(TrustError::InvalidCsr("offsets do not span the edge array"));
    }
    Ok(offsets.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TrustGraph {
        let mut g = TrustGraph::with_agents(4);
        let a: Vec<_> = g.agents().collect();
        g.set_trust(a[0], a[1], 0.9).unwrap();
        g.set_trust(a[0], a[2], 0.4).unwrap();
        g.set_trust(a[1], a[3], -0.6).unwrap();
        g.set_trust(a[2], a[3], 0.7).unwrap();
        g.set_trust(a[3], a[0], 0.1).unwrap();
        g
    }

    #[test]
    fn csr_matches_adjacency_lists_exactly() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.agent_count(), g.agent_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for agent in g.agents() {
            let adj: Vec<_> = g.out_edges(agent).to_vec();
            let flat: Vec<_> = csr.out_edges(agent).collect();
            assert_eq!(adj, flat);
            let trusters: Vec<u32> =
                g.trusters_of(agent).iter().map(|s| s.index() as u32).collect();
            assert_eq!(csr.trusters_of(agent), trusters.as_slice());
            for other in g.agents() {
                assert_eq!(g.trust(agent, other), csr.trust(agent, other));
            }
        }
    }

    #[test]
    fn sign_partitions_match() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        for agent in g.agents() {
            let pos_g: Vec<_> = g.positive_out_edges(agent).collect();
            let pos_c: Vec<_> = csr.positive_out_edges(agent).collect();
            assert_eq!(pos_g, pos_c);
            let neg_g: Vec<_> = g.negative_out_edges(agent).collect();
            let neg_c: Vec<_> = csr.negative_out_edges(agent).collect();
            assert_eq!(neg_g, neg_c);
        }
    }

    #[test]
    fn round_trip_through_parts_and_back_to_graph() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        let (oo, ot, ow, io, is) = csr.arenas();
        let rebuilt = CsrGraph::from_parts(
            oo.to_vec(),
            ot.to_vec(),
            ow.to_vec(),
            io.to_vec(),
            is.to_vec(),
        )
        .unwrap();
        let g2 = rebuilt.to_graph();
        assert_eq!(g2.agent_count(), g.agent_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for agent in g.agents() {
            assert_eq!(g.out_edges(agent), g2.out_edges(agent));
            assert_eq!(g.trusters_of(agent), g2.trusters_of(agent));
        }
    }

    #[test]
    fn corrupted_parts_are_typed_errors() {
        let g = diamond();
        let (oo, ot, ow, io, is) = {
            let csr = CsrGraph::from_graph(&g);
            let (a, b, c, d, e) = csr.arenas();
            (a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec(), e.to_vec())
        };
        // Non-monotone offsets.
        let mut bad = oo.clone();
        bad[1] = bad[2] + 1;
        assert!(CsrGraph::from_parts(bad, ot.clone(), ow.clone(), io.clone(), is.clone()).is_err());
        // Target out of range.
        let mut bad = ot.clone();
        bad[0] = 99;
        assert!(CsrGraph::from_parts(oo.clone(), bad, ow.clone(), io.clone(), is.clone()).is_err());
        // NaN weight.
        let mut bad = ow.clone();
        bad[0] = f64::NAN;
        assert!(CsrGraph::from_parts(oo.clone(), ot.clone(), bad, io.clone(), is.clone()).is_err());
        // Mismatched reverse count.
        let mut bad = is.clone();
        bad.pop();
        assert!(CsrGraph::from_parts(oo, ot, ow, io, bad).is_err());
    }

    #[test]
    fn empty_and_isolated_graphs_work() {
        let empty = CsrGraph::from_graph(&TrustGraph::new());
        assert_eq!(empty.agent_count(), 0);
        assert_eq!(empty.edge_count(), 0);
        let isolated = CsrGraph::from_graph(&TrustGraph::with_agents(3));
        assert_eq!(isolated.agent_count(), 3);
        assert_eq!(isolated.out_targets(AgentId::from_index(1)), &[] as &[u32]);
    }

    #[test]
    fn resident_bytes_counts_all_arenas() {
        let csr = CsrGraph::from_graph(&diamond());
        // 2×(n+1) u32 offsets + 2×m u32 ids + m f64 weights.
        assert_eq!(csr.resident_bytes(), 2 * 5 * 4 + 2 * 5 * 4 + 5 * 8);
    }
}
