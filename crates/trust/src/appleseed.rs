//! The **Appleseed** local group trust metric (§3.2, ref \[12\]).
//!
//! Appleseed derives from spreading activation models (Quillian, ref \[13\]):
//! the source agent injects trust *energy* `in_0` into the network. Each node
//! `x` holding energy `in(x)` keeps `(1 − d) · in(x)` as accumulated trust
//! rank and forwards `d · in(x)` along its positive outgoing trust edges,
//! proportionally to edge weights. Every discovered node is given a virtual
//! *backward edge* to the source with weight 1, which (a) makes energy
//! conservation exact — no node is a sink — and (b) biases ranks towards
//! agents close to the source. The fixpoint is reached when no rank changes
//! by more than the convergence threshold `T_c`.
//!
//! The metric is *local* (it explores only the subgraph energy actually
//! reaches, within an optional hop range — "exploring the social network
//! within predefined ranges only … retaining scalability") and *group*
//! (it returns a ranking of peers rather than a value for one target pair).
//!
//! **Distrust.** Negative trust statements don't propagate transitively
//! ("the enemy of my enemy" is *not* a friend): a negative edge diverts the
//! proportional share of energy into a terminal rank *penalty* at the
//! distrusted node and forwards nothing. This is the one-step distrust
//! handling Ziegler & Lausen argue for; enable it via
//! [`AppleseedParams::distrust`].

use std::collections::HashMap;

use crate::agent::AgentId;
use crate::csr::CsrGraph;
use crate::error::{Result, TrustError};
use crate::graph::TrustGraph;

/// The read-only view of a trust network the spreading-activation loop
/// needs: a node count plus sign-partitioned out-edge walks. Implemented
/// by both the adjacency-list [`TrustGraph`] and the flat [`CsrGraph`], so
/// one metric implementation serves both layouts — and because both
/// iterate edges in the identical (trustee-sorted) order, the two produce
/// bit-identical ranks.
pub trait TrustTopology {
    /// Number of agents `n = |A|`.
    fn agent_count(&self) -> usize;
    /// Outgoing statements of `agent` with strictly positive weight.
    fn positive_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_;
    /// Outgoing statements of `agent` with strictly negative weight.
    fn negative_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_;
}

impl TrustTopology for TrustGraph {
    fn agent_count(&self) -> usize {
        TrustGraph::agent_count(self)
    }
    fn positive_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.positive_out_edges(agent)
    }
    fn negative_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.negative_out_edges(agent)
    }
}

impl TrustTopology for CsrGraph {
    fn agent_count(&self) -> usize {
        CsrGraph::agent_count(self)
    }
    fn positive_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.positive_out_edges(agent)
    }
    fn negative_out(&self, agent: AgentId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.negative_out_edges(agent)
    }
}

/// Parameters of the Appleseed metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppleseedParams {
    /// Injected trust energy `in_0` (paper example: 200).
    pub injection: f64,
    /// Spreading factor `d ∈ (0, 1)`: share of incoming energy passed on
    /// rather than kept as rank. Default 0.85.
    pub spreading_factor: f64,
    /// Convergence threshold `T_c`: stop when no rank moves more than this.
    pub convergence: f64,
    /// Weight of the virtual backward edge to the source.
    pub backward_weight: f64,
    /// Hard cap on iterations (safety net; convergence normally triggers first).
    pub max_iterations: usize,
    /// Optional hop-range bound: nodes farther than this from the source are
    /// still ranked but never expanded (their energy returns to the source).
    pub max_range: Option<u32>,
    /// Optional cap on the number of discovered nodes; energy reaching
    /// undiscovered nodes past the cap returns to the source instead.
    pub max_nodes: Option<usize>,
    /// Honor negative edges as terminal rank penalties.
    pub distrust: bool,
    /// Nonlinear spreading exponent: outgoing energy shares are proportional
    /// to `w^spreading_power`. Ref \[12\] proposes super-linear normalization
    /// (e.g. 2.0) so highly trusted successors attract disproportionally
    /// more energy than weakly trusted ones; 1.0 is the linear default.
    pub spreading_power: f64,
}

impl Default for AppleseedParams {
    fn default() -> Self {
        AppleseedParams {
            injection: 200.0,
            spreading_factor: 0.85,
            convergence: 0.01,
            backward_weight: 1.0,
            max_iterations: 10_000,
            max_range: None,
            max_nodes: None,
            distrust: false,
            spreading_power: 1.0,
        }
    }
}

impl AppleseedParams {
    /// Validates the parameter set; shared with the sharded cross-shard
    /// variant in `semrec-shard`, which must reject exactly what the
    /// global metric rejects.
    pub fn validate(&self) -> Result<()> {
        if self.injection <= 0.0 || !self.injection.is_finite() {
            return Err(TrustError::InvalidParameter {
                name: "injection",
                value: self.injection,
                expected: "a positive finite energy",
            });
        }
        if !(self.spreading_factor > 0.0 && self.spreading_factor < 1.0) {
            return Err(TrustError::InvalidParameter {
                name: "spreading_factor",
                value: self.spreading_factor,
                expected: "a value in (0, 1)",
            });
        }
        if self.convergence <= 0.0 || !self.convergence.is_finite() {
            return Err(TrustError::InvalidParameter {
                name: "convergence",
                value: self.convergence,
                expected: "a positive finite threshold",
            });
        }
        if self.backward_weight <= 0.0 || !self.backward_weight.is_finite() {
            return Err(TrustError::InvalidParameter {
                name: "backward_weight",
                value: self.backward_weight,
                expected: "a positive finite weight",
            });
        }
        if self.spreading_power <= 0.0 || !self.spreading_power.is_finite() {
            return Err(TrustError::InvalidParameter {
                name: "spreading_power",
                value: self.spreading_power,
                expected: "a positive finite exponent",
            });
        }
        Ok(())
    }
}

/// Outcome of an Appleseed computation.
#[derive(Clone, Debug)]
pub struct AppleseedResult {
    /// `(agent, rank)` pairs sorted by descending rank, source excluded.
    /// Ranks are non-negative unless distrust handling produced penalties.
    pub ranks: Vec<(AgentId, f64)>,
    /// Iterations until convergence (or the iteration cap).
    pub iterations: usize,
    /// Nodes the energy wave discovered (including the source).
    pub nodes_discovered: usize,
    /// True if the fixpoint was reached before `max_iterations`.
    pub converged: bool,
}

impl AppleseedResult {
    /// The rank of a specific agent (0 if never discovered).
    pub fn rank_of(&self, agent: AgentId) -> f64 {
        self.ranks
            .iter()
            .find(|&&(a, _)| a == agent)
            .map_or(0.0, |&(_, r)| r)
    }

    /// The `top_m` highest-ranked agents.
    pub fn top(&self, top_m: usize) -> &[(AgentId, f64)] {
        &self.ranks[..self.ranks.len().min(top_m)]
    }

    /// Total rank mass accorded to non-source agents.
    pub fn total_rank(&self) -> f64 {
        self.ranks.iter().map(|&(_, r)| r).sum()
    }
}

/// Per-node state inside the computation.
struct NodeState {
    agent: AgentId,
    /// Hop distance from the source at discovery time.
    distance: u32,
    rank: f64,
    energy_in: f64,
    energy_next: f64,
}

/// Runs Appleseed for `source` over an adjacency-list graph.
pub fn appleseed(
    graph: &TrustGraph,
    source: AgentId,
    params: &AppleseedParams,
) -> Result<AppleseedResult> {
    appleseed_on(graph, source, params)
}

/// Runs Appleseed for `source` over a flat CSR graph — the cache-friendly
/// hot path. Bit-identical to [`appleseed`] on the equivalent graph.
pub fn appleseed_csr(
    graph: &CsrGraph,
    source: AgentId,
    params: &AppleseedParams,
) -> Result<AppleseedResult> {
    appleseed_on(graph, source, params)
}

/// The spreading-activation loop, generic over the graph layout.
pub fn appleseed_on<G: TrustTopology>(
    graph: &G,
    source: AgentId,
    params: &AppleseedParams,
) -> Result<AppleseedResult> {
    params.validate()?;
    if source.index() >= graph.agent_count() {
        return Err(TrustError::UnknownAgent(source.index()));
    }

    // Observability: runs/iterations/nodes counters plus the per-iteration
    // energy residual (`max_delta`) as a histogram. Handles are fetched
    // once per run; the loop itself only touches atomics.
    let _span = semrec_obs::span("appleseed.run");
    semrec_obs::counter("appleseed.runs").inc();
    let iterations_counter = semrec_obs::counter("appleseed.iterations");
    let residual_histogram = semrec_obs::histogram("appleseed.residual");

    let d = params.spreading_factor;
    let mut nodes: Vec<NodeState> = vec![NodeState {
        agent: source,
        distance: 0,
        rank: 0.0,
        energy_in: params.injection,
        energy_next: 0.0,
    }];
    let mut local: HashMap<AgentId, usize> = HashMap::from([(source, 0)]);

    let mut iterations = 0;
    let mut converged = false;
    while iterations < params.max_iterations {
        iterations += 1;
        iterations_counter.inc();
        let mut max_delta: f64 = 0.0;

        for i in 0..nodes.len() {
            let energy = nodes[i].energy_in;
            if energy <= 0.0 {
                continue;
            }
            nodes[i].energy_in = 0.0;

            // Keep (1 - d), forward d.
            let kept = (1.0 - d) * energy;
            nodes[i].rank += kept;
            max_delta = max_delta.max(kept);
            let forward = d * energy;

            let agent = nodes[i].agent;
            let at_range_limit =
                params.max_range.is_some_and(|r| nodes[i].distance >= r);
            let distance = nodes[i].distance;

            // Collect this node's effective out-edges. Nodes at the range
            // limit keep only the backward edge.
            let power = params.spreading_power;
            let mut pos_sum = 0.0;
            let mut neg_sum = 0.0;
            if !at_range_limit {
                for (_, w) in graph.positive_out(agent) {
                    pos_sum += w.powf(power);
                }
                if params.distrust {
                    for (_, w) in graph.negative_out(agent) {
                        neg_sum += (-w).powf(power);
                    }
                }
            }
            let backward = if agent == source { 0.0 } else { params.backward_weight };
            let total_weight = pos_sum + neg_sum + backward;
            if total_weight <= 0.0 {
                // Source without positive statements: energy evaporates;
                // nothing to rank.
                continue;
            }

            if backward > 0.0 {
                nodes[0].energy_next += forward * backward / total_weight;
            }
            if !at_range_limit {
                for (succ, w) in graph.positive_out(agent) {
                    let share = forward * w.powf(power) / total_weight;
                    let idx = match local.get(&succ) {
                        Some(&idx) => idx,
                        None => {
                            if params.max_nodes.is_some_and(|cap| nodes.len() >= cap) {
                                // Capacity reached: reroute to the source.
                                nodes[0].energy_next += share;
                                continue;
                            }
                            let idx = nodes.len();
                            local.insert(succ, idx);
                            nodes.push(NodeState {
                                agent: succ,
                                distance: distance + 1,
                                rank: 0.0,
                                energy_in: 0.0,
                                energy_next: 0.0,
                            });
                            idx
                        }
                    };
                    nodes[idx].energy_next += share;
                }
                if params.distrust {
                    for (succ, w) in graph.negative_out(agent) {
                        let share = forward * (-w).powf(power) / total_weight;
                        // Terminal penalty: deposited as negative rank on
                        // already-discovered nodes; statements about agents
                        // the wave never reaches positively are recorded too.
                        let idx = match local.get(&succ) {
                            Some(&idx) => idx,
                            None => {
                                if params.max_nodes.is_some_and(|cap| nodes.len() >= cap) {
                                    continue;
                                }
                                let idx = nodes.len();
                                local.insert(succ, idx);
                                nodes.push(NodeState {
                                    agent: succ,
                                    distance: distance + 1,
                                    rank: 0.0,
                                    energy_in: 0.0,
                                    energy_next: 0.0,
                                });
                                idx
                            }
                        };
                        nodes[idx].rank -= share;
                        max_delta = max_delta.max(share);
                    }
                }
            }
        }

        for node in &mut nodes {
            node.energy_in += node.energy_next;
            node.energy_next = 0.0;
        }

        residual_histogram.observe(max_delta);
        if max_delta < params.convergence {
            converged = true;
            break;
        }
    }
    semrec_obs::counter("appleseed.nodes_explored").add(nodes.len() as u64);

    let mut ranks: Vec<(AgentId, f64)> = nodes
        .iter()
        .filter(|n| n.agent != source)
        .map(|n| (n.agent, n.rank))
        .collect();
    ranks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    Ok(AppleseedResult { ranks, iterations, nodes_discovered: nodes.len(), converged })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s → a (1.0), s → b (0.5), a → c (1.0).
    fn chain_graph() -> (TrustGraph, Vec<AgentId>) {
        let mut g = TrustGraph::with_agents(4);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[0], ids[2], 0.5).unwrap();
        g.set_trust(ids[1], ids[3], 1.0).unwrap();
        (g, ids)
    }

    #[test]
    fn ranks_favor_strongly_and_directly_trusted_peers() {
        let (g, ids) = chain_graph();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert!(res.converged);
        assert_eq!(res.nodes_discovered, 4);
        let ra = res.rank_of(ids[1]);
        let rb = res.rank_of(ids[2]);
        let rc = res.rank_of(ids[3]);
        assert!(ra > rb, "stronger direct trust must outrank weaker: {ra} vs {rb}");
        assert!(ra > rc, "direct trust must outrank indirect: {ra} vs {rc}");
        assert!(rc > 0.0, "transitive trust must reach c");
    }

    #[test]
    fn total_rank_is_bounded_by_injection() {
        let (g, ids) = chain_graph();
        let params = AppleseedParams { convergence: 1e-9, ..Default::default() };
        let res = appleseed(&g, ids[0], &params).unwrap();
        // All injected energy ends up as rank somewhere (incl. the source),
        // so non-source rank is strictly below the injection.
        assert!(res.total_rank() < params.injection);
        assert!(res.total_rank() > 0.5 * params.injection);
    }

    #[test]
    fn source_is_not_ranked() {
        let (g, ids) = chain_graph();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert!(res.ranks.iter().all(|&(a, _)| a != ids[0]));
    }

    #[test]
    fn isolated_source_yields_empty_ranking() {
        let g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert!(res.ranks.is_empty());
        assert!(res.converged);
    }

    #[test]
    fn unreachable_nodes_get_zero() {
        let (g, ids) = chain_graph();
        // Agent 4 exists but nobody trusts it.
        let mut g = g;
        let lonely = g.add_agent();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert_eq!(res.rank_of(lonely), 0.0);
        assert_eq!(res.nodes_discovered, 4);
    }

    #[test]
    fn tighter_convergence_needs_more_iterations() {
        let (g, ids) = chain_graph();
        let loose = appleseed(
            &g,
            ids[0],
            &AppleseedParams { convergence: 1.0, ..Default::default() },
        )
        .unwrap();
        let tight = appleseed(
            &g,
            ids[0],
            &AppleseedParams { convergence: 1e-6, ..Default::default() },
        )
        .unwrap();
        assert!(tight.iterations > loose.iterations);
        assert!(loose.converged && tight.converged);
    }

    #[test]
    fn range_limit_stops_expansion_but_keeps_ranks() {
        let mut g = TrustGraph::with_agents(5);
        let ids: Vec<_> = g.agents().collect();
        // Chain s → 1 → 2 → 3 → 4.
        for w in ids.windows(2) {
            g.set_trust(w[0], w[1], 1.0).unwrap();
        }
        let unlimited = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert_eq!(unlimited.nodes_discovered, 5);
        let limited = appleseed(
            &g,
            ids[0],
            &AppleseedParams { max_range: Some(2), ..Default::default() },
        )
        .unwrap();
        // Nodes at distance ≤ 2 are discovered; the node *at* the limit is
        // ranked but not expanded, so distance-3 nodes never appear.
        assert_eq!(limited.nodes_discovered, 3);
        assert!(limited.rank_of(ids[2]) > 0.0);
        assert_eq!(limited.rank_of(ids[3]), 0.0);
    }

    #[test]
    fn node_cap_reroutes_energy_to_source() {
        let mut g = TrustGraph::with_agents(6);
        let ids: Vec<_> = g.agents().collect();
        for &t in &ids[1..] {
            g.set_trust(ids[0], t, 1.0).unwrap();
        }
        let res = appleseed(
            &g,
            ids[0],
            &AppleseedParams { max_nodes: Some(3), ..Default::default() },
        )
        .unwrap();
        assert_eq!(res.nodes_discovered, 3);
        assert_eq!(res.ranks.iter().filter(|&&(_, r)| r > 0.0).count(), 2);
    }

    #[test]
    fn higher_spreading_factor_pushes_rank_deeper() {
        let mut g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[1], ids[2], 1.0).unwrap();
        let lo = appleseed(
            &g,
            ids[0],
            &AppleseedParams { spreading_factor: 0.5, convergence: 1e-9, ..Default::default() },
        )
        .unwrap();
        let hi = appleseed(
            &g,
            ids[0],
            &AppleseedParams { spreading_factor: 0.9, convergence: 1e-9, ..Default::default() },
        )
        .unwrap();
        let ratio_lo = lo.rank_of(ids[2]) / lo.rank_of(ids[1]);
        let ratio_hi = hi.rank_of(ids[2]) / hi.rank_of(ids[1]);
        assert!(
            ratio_hi > ratio_lo,
            "d=0.9 must give the distant node relatively more rank ({ratio_hi} vs {ratio_lo})"
        );
    }

    #[test]
    fn distrust_penalizes_but_does_not_propagate() {
        let mut g = TrustGraph::with_agents(4);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[1], ids[2], -1.0).unwrap(); // b distrusts c
        g.set_trust(ids[2], ids[3], 1.0).unwrap(); // c trusts dd
        let res = appleseed(
            &g,
            ids[0],
            &AppleseedParams { distrust: true, ..Default::default() },
        )
        .unwrap();
        assert!(res.rank_of(ids[2]) < 0.0, "distrusted node must carry a penalty");
        // dd is only endorsed by the distrusted node; distrust is terminal,
        // so no (positive or negative) energy ever flows to dd.
        assert_eq!(res.rank_of(ids[3]), 0.0);
    }

    #[test]
    fn distrust_ignored_when_disabled() {
        let mut g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[1], ids[2], -1.0).unwrap();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert_eq!(res.rank_of(ids[2]), 0.0);
    }

    #[test]
    fn super_linear_spreading_favors_strong_edges() {
        // s trusts a (1.0) and b (0.5): with power 2 the share ratio becomes
        // 4:1 instead of 2:1, so a's advantage over b must grow.
        let mut g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 1.0).unwrap();
        g.set_trust(ids[0], ids[2], 0.5).unwrap();
        let linear = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        let squared = appleseed(
            &g,
            ids[0],
            &AppleseedParams { spreading_power: 2.0, ..Default::default() },
        )
        .unwrap();
        let ratio = |r: &AppleseedResult| r.rank_of(ids[1]) / r.rank_of(ids[2]);
        assert!((ratio(&linear) - 2.0).abs() < 1e-6, "linear ratio {}", ratio(&linear));
        assert!((ratio(&squared) - 4.0).abs() < 1e-6, "squared ratio {}", ratio(&squared));
    }

    #[test]
    fn parameter_validation() {
        let g = TrustGraph::with_agents(1);
        let s = AgentId::from_index(0);
        for params in [
            AppleseedParams { injection: 0.0, ..Default::default() },
            AppleseedParams { spreading_factor: 0.0, ..Default::default() },
            AppleseedParams { spreading_factor: 1.0, ..Default::default() },
            AppleseedParams { convergence: 0.0, ..Default::default() },
            AppleseedParams { backward_weight: -1.0, ..Default::default() },
            AppleseedParams { spreading_power: 0.0, ..Default::default() },
            AppleseedParams { spreading_power: f64::NAN, ..Default::default() },
        ] {
            assert!(appleseed(&g, s, &params).is_err());
        }
        assert!(matches!(
            appleseed(&g, AgentId::from_index(5), &AppleseedParams::default()),
            Err(TrustError::UnknownAgent(5))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, ids) = chain_graph();
        let a = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        let b = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert_eq!(a.ranks, b.ranks);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn top_m_selection() {
        let (g, ids) = chain_graph();
        let res = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
        assert_eq!(res.top(2).len(), 2);
        assert_eq!(res.top(100).len(), res.ranks.len());
        assert!(res.top(2)[0].1 >= res.top(2)[1].1);
    }
}
