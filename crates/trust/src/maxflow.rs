//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! The Advogato trust metric (ref \[11\]) reduces group trust to a max-flow
//! computation over a node-split capacity network; this module provides the
//! flow solver. Capacities are `i64`; the solver is exact.

/// A directed flow network under construction.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// to, capacity — edges stored flat; `graph[v]` holds edge indexes.
    to: Vec<u32>,
    cap: Vec<i64>,
    adj: Vec<Vec<u32>>,
}

/// Identifier of a flow-network node.
pub type FlowNode = u32;

/// Identifier of an edge (index into the internal edge arrays).
pub type FlowEdge = u32;

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> FlowNode {
        self.adj.push(Vec::new());
        u32::try_from(self.adj.len() - 1).expect("flow network exceeds u32 nodes")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge with the given capacity, returning its id.
    ///
    /// A residual reverse edge (capacity 0) is added automatically; edge ids
    /// are always even for forward edges, `id ^ 1` is the residual.
    pub fn add_edge(&mut self, from: FlowNode, to: FlowNode, capacity: i64) -> FlowEdge {
        assert!(capacity >= 0, "negative capacity");
        let id = u32::try_from(self.to.len()).expect("flow network exceeds u32 edges");
        self.to.push(to);
        self.cap.push(capacity);
        self.adj[from as usize].push(id);
        self.to.push(from);
        self.cap.push(0);
        self.adj[to as usize].push(id + 1);
        id
    }

    /// Residual capacity currently left on an edge.
    pub fn residual(&self, edge: FlowEdge) -> i64 {
        self.cap[edge as usize]
    }

    /// Flow currently pushed through a forward edge (its residual's capacity).
    pub fn flow(&self, edge: FlowEdge) -> i64 {
        self.cap[(edge ^ 1) as usize]
    }

    /// Computes the maximum flow from `source` to `sink` (Dinic).
    ///
    /// The per-node `Vec<Vec<u32>>` adjacency is flattened into a CSR
    /// arena (one offset array plus one flat edge-id array, preserving
    /// insertion order) before the search, so the BFS/DFS inner loops walk
    /// contiguous slices instead of chasing one heap allocation per node.
    ///
    /// Mutates residual capacities; call [`FlowNetwork::flow`] afterwards to
    /// read per-edge flows.
    pub fn max_flow(&mut self, source: FlowNode, sink: FlowNode) -> i64 {
        assert_ne!(source, sink, "source and sink must differ");
        let _span = semrec_obs::span("maxflow.run");
        let augmenting_paths = semrec_obs::counter("maxflow.augmenting_paths");
        let n = self.adj.len();

        // Flatten the adjacency into CSR form; edge-id order within each
        // node is preserved, so the augmenting paths found (and therefore
        // the exact residual state) match the nested-Vec walk.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(self.to.len());
        offsets.push(0u32);
        for list in &self.adj {
            edges.extend_from_slice(list);
            offsets.push(edges.len() as u32);
        }

        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0u32; n];
        loop {
            // BFS level graph over CSR slices.
            level.fill(-1);
            level[source as usize] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                let range = offsets[v as usize] as usize..offsets[v as usize + 1] as usize;
                for &e in &edges[range] {
                    let to = self.to[e as usize];
                    if self.cap[e as usize] > 0 && level[to as usize] < 0 {
                        level[to as usize] = level[v as usize] + 1;
                        queue.push_back(to);
                    }
                }
            }
            if level[sink as usize] < 0 {
                return total;
            }
            iter.fill(0);
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &offsets, &edges, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                augmenting_paths.inc();
                total += pushed;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        v: FlowNode,
        sink: FlowNode,
        limit: i64,
        offsets: &[u32],
        edges: &[u32],
        level: &[i32],
        iter: &mut [u32],
    ) -> i64 {
        if v == sink {
            return limit;
        }
        let end = offsets[v as usize + 1] - offsets[v as usize];
        while iter[v as usize] < end {
            let e = edges[(offsets[v as usize] + iter[v as usize]) as usize];
            let to = self.to[e as usize];
            if self.cap[e as usize] > 0 && level[to as usize] == level[v as usize] + 1 {
                let pushed = self.dfs(
                    to,
                    sink,
                    limit.min(self.cap[e as usize]),
                    offsets,
                    edges,
                    level,
                    iter,
                );
                if pushed > 0 {
                    self.cap[e as usize] -= pushed;
                    self.cap[(e ^ 1) as usize] += pushed;
                    return pushed;
                }
            }
            iter[v as usize] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let e = net.add_edge(s, t, 7);
        assert_eq!(net.max_flow(s, t), 7);
        assert_eq!(net.flow(e), 7);
        assert_eq!(net.residual(e), 0);
    }

    #[test]
    fn counts_augmenting_paths() {
        let paths = semrec_obs::counter("maxflow.augmenting_paths");
        let before = paths.get();
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_edge(s, t, 1);
        net.max_flow(s, t);
        assert!(paths.get() - before >= 1, "one unit path must be counted");
    }

    #[test]
    fn classic_diamond() {
        // s → a (3), s → b (2), a → t (2), b → t (3), a → b (5): max flow 5.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 3);
        net.add_edge(s, b, 2);
        net.add_edge(a, t, 2);
        net.add_edge(b, t, 3);
        net.add_edge(a, b, 5);
        assert_eq!(net.max_flow(s, t), 5);
    }

    #[test]
    fn disconnected_sink_yields_zero() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 10);
        assert_eq!(net.max_flow(s, t), 0);
    }

    #[test]
    fn bottleneck_chain() {
        let mut net = FlowNetwork::new();
        let nodes: Vec<_> = (0..5).map(|_| net.add_node()).collect();
        for (i, w) in [9, 4, 7, 6].iter().enumerate() {
            net.add_edge(nodes[i], nodes[i + 1], *w);
        }
        assert_eq!(net.max_flow(nodes[0], nodes[4]), 4);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        net.add_edge(s, t, 3);
        net.add_edge(s, t, 4);
        assert_eq!(net.max_flow(s, t), 7);
    }

    #[test]
    fn flow_conservation_on_bipartite_matching() {
        // Perfect matching of size 3 expressed as unit-capacity flow.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let left: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let right: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let t = net.add_node();
        for &l in &left {
            net.add_edge(s, l, 1);
        }
        for &r in &right {
            net.add_edge(r, t, 1);
        }
        // l0-{r0,r1}, l1-{r1}, l2-{r1,r2}: perfect matching exists.
        net.add_edge(left[0], right[0], 1);
        net.add_edge(left[0], right[1], 1);
        net.add_edge(left[1], right[1], 1);
        net.add_edge(left[2], right[1], 1);
        net.add_edge(left[2], right[2], 1);
        assert_eq!(net.max_flow(s, t), 3);
    }
}
