//! # semrec-trust — trust networks and local group trust metrics
//!
//! Implements the first pillar of the paper (§3.2): the set `T` of partial
//! trust functions `t_i: A → [-1, +1]⊥` ([`graph::TrustGraph`]) and the
//! metrics that turn it into subjective *trust neighborhoods*:
//!
//! * [`appleseed`] — the paper's own spreading-activation local group trust
//!   metric (ref \[12\]), assigning continuous trust ranks;
//! * [`advogato`] — Levien's max-flow certification metric (ref \[11\]), the
//!   boolean baseline, on top of a Dinic solver ([`maxflow`]);
//! * [`scalar`] — pairwise baselines (multiplicative path trust, global
//!   mean reputation) the paper argues are insufficient;
//! * [`neighborhood`] — neighborhood formation: threshold/cap the ranking.
//!
//! ```
//! use semrec_trust::{TrustGraph, appleseed::{appleseed, AppleseedParams}};
//!
//! let mut g = TrustGraph::with_agents(3);
//! let ids: Vec<_> = g.agents().collect();
//! g.set_trust(ids[0], ids[1], 0.9).unwrap();
//! g.set_trust(ids[1], ids[2], 0.8).unwrap();
//! let result = appleseed(&g, ids[0], &AppleseedParams::default()).unwrap();
//! assert!(result.rank_of(ids[1]) > result.rank_of(ids[2]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advogato;
pub mod agent;
pub mod appleseed;
pub mod csr;
pub mod error;
pub mod graph;
pub mod maxflow;
pub mod neighborhood;
pub mod scalar;

pub use agent::AgentId;
pub use csr::CsrGraph;
pub use error::{Result, TrustError};
pub use graph::TrustGraph;
pub use neighborhood::{
    form_neighborhood, form_neighborhood_csr, NeighborhoodParams, TrustNeighborhood,
};
