//! The **Advogato** maximum-flow group trust metric (Levien, ref \[11\]).
//!
//! The paper cites Advogato as "the most important and most well-known local
//! group trust metric", but notes it "can only make boolean decisions with
//! respect to trustworthiness" — which is why Appleseed was designed. We
//! implement Advogato as the baseline for experiment E11.
//!
//! The metric certifies a set of accounts from a seed: nodes are assigned
//! capacities that shrink with BFS distance from the seed, every node is
//! split into an *in*/*out* pair joined by an edge of capacity `cap − 1`
//! plus a unit edge to a supersink, certification edges become infinite
//! edges between *out* and *in* halves, and the accepted set is exactly the
//! accounts whose unit edge is saturated by a maximum integer flow. The
//! construction is attack-resistant: a cabal of fake accounts certified via
//! a single cut edge can capture at most that edge's capacity.

use std::collections::VecDeque;

use crate::agent::AgentId;
use crate::error::{Result, TrustError};
use crate::graph::TrustGraph;
use crate::maxflow::FlowNetwork;

/// Parameters of the Advogato metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdvogatoParams {
    /// Target group size: the seed's capacity (how many accounts the seed is
    /// willing to certify, including itself).
    pub target_group_size: usize,
    /// Minimum edge weight for a trust statement to count as a certification
    /// (Advogato edges are boolean; we threshold the continuous weights).
    pub certification_threshold: f64,
}

impl Default for AdvogatoParams {
    fn default() -> Self {
        AdvogatoParams { target_group_size: 50, certification_threshold: 0.0 }
    }
}

/// Outcome of an Advogato computation.
#[derive(Clone, Debug)]
pub struct AdvogatoResult {
    /// Accepted (certified) agents, including the seed, sorted by id.
    pub accepted: Vec<AgentId>,
    /// Total flow that reached the supersink (= number of accepted agents).
    pub flow: i64,
    /// Per-level node capacities used in the reduction.
    pub capacities: Vec<i64>,
}

impl AdvogatoResult {
    /// True if the agent was certified.
    pub fn is_accepted(&self, agent: AgentId) -> bool {
        self.accepted.binary_search(&agent).is_ok()
    }
}

/// Runs the Advogato group trust metric for `seed` over `graph`.
pub fn advogato(
    graph: &TrustGraph,
    seed: AgentId,
    params: &AdvogatoParams,
) -> Result<AdvogatoResult> {
    if seed.index() >= graph.agent_count() {
        return Err(TrustError::UnknownAgent(seed.index()));
    }
    if params.target_group_size == 0 {
        return Err(TrustError::InvalidParameter {
            name: "target_group_size",
            value: 0.0,
            expected: "a positive group size",
        });
    }

    let n = graph.agent_count();
    let cert = |w: f64| w > params.certification_threshold;

    // BFS levels over certification edges.
    let mut level = vec![u32::MAX; n];
    level[seed.index()] = 0;
    let mut order = vec![seed];
    let mut queue = VecDeque::from([seed]);
    let mut out_degree_sum = vec![0usize; 1];
    let mut level_sizes = vec![1usize];
    while let Some(v) = queue.pop_front() {
        let lv = level[v.index()];
        let mut deg = 0usize;
        for &(succ, w) in graph.out_edges(v) {
            if !cert(w) {
                continue;
            }
            deg += 1;
            if level[succ.index()] == u32::MAX {
                level[succ.index()] = lv + 1;
                order.push(succ);
                queue.push_back(succ);
                if level_sizes.len() <= (lv + 1) as usize {
                    level_sizes.push(0);
                    out_degree_sum.push(0);
                }
                level_sizes[(lv + 1) as usize] += 1;
            }
        }
        out_degree_sum[lv as usize] += deg;
    }

    // Per-level capacities: the seed gets the full target group size; each
    // deeper level divides by the mean certification out-degree of the level
    // above (at least 2), bottoming out at capacity 1 (self only). This is
    // Levien's geometric capacity schedule.
    let mut capacities: Vec<i64> = Vec::with_capacity(level_sizes.len());
    let mut cap = params.target_group_size as f64;
    for lv in 0..level_sizes.len() {
        capacities.push(cap.max(1.0).round() as i64);
        let mean_deg = if level_sizes[lv] > 0 {
            (out_degree_sum[lv] as f64 / level_sizes[lv] as f64).max(2.0)
        } else {
            2.0
        };
        cap /= mean_deg;
    }

    // Node-split flow network.
    let mut net = FlowNetwork::new();
    let supersource = net.add_node();
    let supersink = net.add_node();
    // node_in = 2 + 2k, node_out = 3 + 2k for the k-th discovered node.
    let mut flow_in = vec![u32::MAX; n];
    let mut flow_out = vec![u32::MAX; n];
    let mut sink_edges = Vec::with_capacity(order.len());
    for &agent in &order {
        let i = net.add_node();
        let o = net.add_node();
        flow_in[agent.index()] = i;
        flow_out[agent.index()] = o;
        let c = capacities[level[agent.index()] as usize];
        net.add_edge(i, o, (c - 1).max(0));
        sink_edges.push((agent, net.add_edge(i, supersink, 1)));
    }
    let infinite = params.target_group_size as i64 + 1;
    for &agent in &order {
        for &(succ, w) in graph.out_edges(agent) {
            if cert(w) && flow_in[succ.index()] != u32::MAX {
                net.add_edge(flow_out[agent.index()], flow_in[succ.index()], infinite);
            }
        }
    }
    net.add_edge(supersource, flow_in[seed.index()], params.target_group_size as i64);

    let flow = net.max_flow(supersource, supersink);
    let mut accepted: Vec<AgentId> = sink_edges
        .iter()
        .filter(|&&(_, e)| net.flow(e) == 1)
        .map(|&(a, _)| a)
        .collect();
    accepted.sort_unstable();

    Ok(AdvogatoResult { accepted, flow, capacities })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with(edges: &[(usize, usize)], n: usize) -> (TrustGraph, Vec<AgentId>) {
        let mut g = TrustGraph::with_agents(n);
        let ids: Vec<_> = g.agents().collect();
        for &(a, b) in edges {
            g.set_trust(ids[a], ids[b], 1.0).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn seed_is_always_accepted_when_connected() {
        let (g, ids) = graph_with(&[(0, 1), (1, 2)], 3);
        let res = advogato(&g, ids[0], &AdvogatoParams::default()).unwrap();
        assert!(res.is_accepted(ids[0]));
        assert!(res.flow >= 1);
    }

    #[test]
    fn reachable_nodes_are_certified_with_ample_capacity() {
        let (g, ids) = graph_with(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let res =
            advogato(&g, ids[0], &AdvogatoParams { target_group_size: 50, ..Default::default() })
                .unwrap();
        for &id in &ids {
            assert!(res.is_accepted(id), "{id} should be certified");
        }
        assert_eq!(res.flow, 4);
    }

    #[test]
    fn unreachable_nodes_are_rejected() {
        let (g, ids) = graph_with(&[(0, 1)], 3);
        let res = advogato(&g, ids[0], &AdvogatoParams::default()).unwrap();
        assert!(res.is_accepted(ids[0]));
        assert!(res.is_accepted(ids[1]));
        assert!(!res.is_accepted(ids[2]));
    }

    #[test]
    fn capacity_bounds_the_accepted_set() {
        // Star: seed certifies 10 peers, but group size 3 accepts at most 3.
        let edges: Vec<_> = (1..=10).map(|i| (0, i)).collect();
        let (g, ids) = graph_with(&edges, 11);
        let res = advogato(
            &g,
            ids[0],
            &AdvogatoParams { target_group_size: 3, ..Default::default() },
        )
        .unwrap();
        assert!(res.accepted.len() <= 3);
        assert!(res.is_accepted(ids[0]));
    }

    #[test]
    fn single_cut_edge_bounds_a_sybil_cabal() {
        // Honest core 0-1-2 fully connected; node 2 certifies sybil 3, which
        // certifies a large cabal 4..20 that certify each other.
        let mut edges = vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1), (2, 3)];
        for i in 4..20 {
            edges.push((3, i));
            edges.push((i, 3));
        }
        let (g, ids) = graph_with(&edges, 20);
        let res = advogato(
            &g,
            ids[0],
            &AdvogatoParams { target_group_size: 8, ..Default::default() },
        )
        .unwrap();
        let cabal_accepted = (4..20).filter(|&i| res.is_accepted(ids[i])).count();
        // The cabal hangs off the single 2→3 edge whose downstream capacity
        // shrinks geometrically: almost none of the 16 sybils get certified.
        assert!(
            cabal_accepted <= 2,
            "cut edge must bound the cabal, got {cabal_accepted}"
        );
        assert!(res.is_accepted(ids[0]) && res.is_accepted(ids[1]) && res.is_accepted(ids[2]));
    }

    #[test]
    fn certification_threshold_filters_weak_edges() {
        let mut g = TrustGraph::with_agents(3);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], 0.9).unwrap();
        g.set_trust(ids[0], ids[2], 0.2).unwrap();
        let res = advogato(
            &g,
            ids[0],
            &AdvogatoParams { certification_threshold: 0.5, ..Default::default() },
        )
        .unwrap();
        assert!(res.is_accepted(ids[1]));
        assert!(!res.is_accepted(ids[2]));
    }

    #[test]
    fn negative_edges_never_certify() {
        let mut g = TrustGraph::with_agents(2);
        let ids: Vec<_> = g.agents().collect();
        g.set_trust(ids[0], ids[1], -0.9).unwrap();
        let res = advogato(&g, ids[0], &AdvogatoParams::default()).unwrap();
        assert!(!res.is_accepted(ids[1]));
    }

    #[test]
    fn invalid_parameters() {
        let g = TrustGraph::with_agents(1);
        assert!(advogato(
            &g,
            AgentId::from_index(0),
            &AdvogatoParams { target_group_size: 0, ..Default::default() }
        )
        .is_err());
        assert!(matches!(
            advogato(&g, AgentId::from_index(9), &AdvogatoParams::default()),
            Err(TrustError::UnknownAgent(9))
        ));
    }

    #[test]
    fn flow_equals_accepted_count() {
        let (g, ids) = graph_with(&[(0, 1), (1, 2), (2, 3), (0, 3)], 4);
        let res = advogato(&g, ids[0], &AdvogatoParams::default()).unwrap();
        assert_eq!(res.flow as usize, res.accepted.len());
    }
}
