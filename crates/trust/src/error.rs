//! Error types for trust network operations.

use std::fmt;

/// Result alias for trust operations.
pub type Result<T> = std::result::Result<T, TrustError>;

/// Errors from trust graph construction or metric configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum TrustError {
    /// An agent id did not designate an existing agent.
    UnknownAgent(usize),
    /// A trust weight outside `[-1, +1]` (or NaN).
    InvalidWeight(f64),
    /// An agent attempted to issue trust in itself.
    SelfTrust(usize),
    /// CSR arenas were structurally inconsistent (bad offsets, ids out of
    /// range, mismatched forward/reverse edge counts).
    InvalidCsr(&'static str),
    /// A metric parameter was out of its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Legal range description.
        expected: &'static str,
    },
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::UnknownAgent(idx) => write!(f, "unknown agent index {idx}"),
            TrustError::InvalidWeight(w) => {
                write!(f, "trust weight {w} outside [-1, +1]")
            }
            TrustError::SelfTrust(idx) => write!(f, "agent {idx} cannot trust itself"),
            TrustError::InvalidCsr(what) => write!(f, "inconsistent CSR arenas: {what}"),
            TrustError::InvalidParameter { name, value, expected } => {
                write!(f, "parameter `{name}` = {value} invalid: expected {expected}")
            }
        }
    }
}

impl std::error::Error for TrustError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TrustError::UnknownAgent(9).to_string().contains('9'));
        assert!(TrustError::InvalidWeight(2.0).to_string().contains("[-1, +1]"));
        let p = TrustError::InvalidParameter {
            name: "spreading_factor",
            value: 1.5,
            expected: "(0, 1)",
        };
        assert!(p.to_string().contains("spreading_factor"));
    }
}
