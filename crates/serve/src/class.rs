//! Request priority classes.
//!
//! Production recommendation traffic is not homogeneous: an interactive
//! page render, a prefetch, and a batch re-rank job have very different
//! latency contracts. A [`Priority`] rides on every request and drives
//! three mechanisms downstream:
//!
//! * **weighted-fair dequeue** — the [`WeightedFairQueue`](crate::wfq)
//!   hands each class a share of service proportional to its
//!   [`weight`](Priority::weight), so a flood of `Low` traffic cannot
//!   starve `High`, and vice versa the fair share bounds how far `High`
//!   can crowd out `Low`;
//! * **admission displacement** — at capacity, an arriving higher-class
//!   request may displace the newest queued request of a strictly lower
//!   class instead of being refused;
//! * **pressure shedding** — under SLO pressure the
//!   [`SloController`](crate::slo::SloController) sheds `Low` first,
//!   `Normal` second, and `High` only at its own hard deadline, which is
//!   what makes high-priority goodput degrade *last* under overload.

/// The priority class of one serving request.
///
/// Ordering is by urgency: `High < Normal < Low` in enum discriminant so
/// that `index()` doubles as a strict-priority scan order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Interactive traffic: tight deadline, shed last.
    High,
    /// The default class for callers that don't differentiate.
    #[default]
    Normal,
    /// Background traffic: generous deadline, shed first.
    Low,
}

impl Priority {
    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Every class, in strict-priority order (`High` first).
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

    /// Default weighted-fair service weights, aligned with [`Priority::ALL`].
    pub const DEFAULT_WEIGHTS: [u32; Priority::COUNT] = [4, 2, 1];

    /// Dense index into per-class arrays (`High` = 0, `Normal` = 1, `Low` = 2).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Default weighted-fair service weight (4 / 2 / 1).
    pub fn weight(self) -> u32 {
        Priority::DEFAULT_WEIGHTS[self.index()]
    }

    /// Stable lowercase label, used in `serve.class.*` metric names.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A value per priority class; indexing sugar for configs and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerClass<T> {
    /// The [`Priority::High`] value.
    pub high: T,
    /// The [`Priority::Normal`] value.
    pub normal: T,
    /// The [`Priority::Low`] value.
    pub low: T,
}

impl<T> PerClass<T> {
    /// The same value for every class.
    pub fn uniform(value: T) -> Self
    where
        T: Clone,
    {
        PerClass { high: value.clone(), normal: value.clone(), low: value }
    }

    /// The value for `class`.
    pub fn get(&self, class: Priority) -> &T {
        match class {
            Priority::High => &self.high,
            Priority::Normal => &self.normal,
            Priority::Low => &self.low,
        }
    }

    /// Mutable access to the value for `class`.
    pub fn get_mut(&mut self, class: Priority) -> &mut T {
        match class {
            Priority::High => &mut self.high,
            Priority::Normal => &mut self.normal,
            Priority::Low => &mut self.low,
        }
    }
}

impl<T> std::ops::Index<Priority> for PerClass<T> {
    type Output = T;
    fn index(&self, class: Priority) -> &T {
        self.get(class)
    }
}

impl<T> std::ops::IndexMut<Priority> for PerClass<T> {
    fn index_mut(&mut self, class: Priority) -> &mut T {
        self.get_mut(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, class) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn weights_favor_urgency() {
        assert!(Priority::High.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
        assert!(Priority::Low.weight() >= 1, "every class gets some service");
    }

    #[test]
    fn per_class_indexing_round_trips() {
        let mut p = PerClass { high: 1u64, normal: 2, low: 3 };
        assert_eq!(p[Priority::High], 1);
        p[Priority::Low] = 9;
        assert_eq!(*p.get(Priority::Low), 9);
        assert_eq!(PerClass::uniform(7u32)[Priority::Normal], 7);
        assert_eq!(Priority::Low.to_string(), "low");
    }
}
