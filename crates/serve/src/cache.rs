//! Per-snapshot recommendation cache: a sharded LRU keyed by
//! `(epoch, agent, n)`.
//!
//! The epoch in the key is the correctness anchor: a lookup always carries
//! the epoch of the snapshot the worker pinned, so an entry computed
//! against an older generation can never be served after a swap — the key
//! simply no longer matches. [`RecCache::invalidate_before`] additionally
//! evicts the stale generation wholesale on publish so dead entries stop
//! occupying capacity.
//!
//! Sharding splits the key space across independent mutexes so concurrent
//! workers rarely contend; within a shard, eviction is exact LRU driven by
//! a per-shard access stamp (deterministic — no wall clock involved).

use std::sync::{Arc, Mutex};

use semrec_core::{AgentId, Recommendation};
use semrec_obs::Counter;

/// Cache key: snapshot epoch, target agent, and requested list length.
pub type CacheKey = (u64, AgentId, usize);

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including all lookups while disabled).
    pub misses: u64,
    /// Entries evicted by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped wholesale by epoch invalidation.
    pub invalidated: u64,
    /// Entries carried across a snapshot swap (re-keyed to the new epoch
    /// instead of dropped — see [`RecCache::carry_into`]).
    pub carried: u64,
}

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    value: Arc<Vec<Recommendation>>,
    /// Last-access stamp from the shard's logical counter.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: Vec<Entry>,
    accesses: u64,
}

/// A sharded LRU over recommendation lists.
///
/// `capacity` is the total entry budget, split evenly across shards
/// (rounded up, so the effective total can exceed `capacity` by at most
/// `shards - 1`). A capacity of 0 disables the cache entirely: every
/// lookup misses and inserts are dropped.
#[derive(Debug)]
pub struct RecCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    // Local counters (per-cache stats) doubling as handles that also feed
    // the global `serve.cache.*` registry names.
    hits: [Counter; 2],
    misses: [Counter; 2],
    evictions: [Counter; 2],
    invalidated: [Counter; 2],
    carried: [Counter; 2],
}

impl RecCache {
    /// A cache with `capacity` total entries over `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 { 0 } else { capacity.div_ceil(shards) };
        let global = |name: &str| semrec_obs::counter(name);
        RecCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: [Counter::default(), global("serve.cache.hits")],
            misses: [Counter::default(), global("serve.cache.misses")],
            evictions: [Counter::default(), global("serve.cache.evictions")],
            invalidated: [Counter::default(), global("serve.cache.invalidated")],
            carried: [Counter::default(), global("serve.cache.carried")],
        }
    }

    /// True when the cache was built with capacity 0.
    pub fn is_disabled(&self) -> bool {
        self.per_shard == 0
    }

    /// Entries currently held, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().entries.len()).sum()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Effective total capacity (per-shard budget × shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// This cache's own counters (independent of the global registry, so
    /// per-server stats survive registry resets).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits[0].get(),
            misses: self.misses[0].get(),
            evictions: self.evictions[0].get(),
            invalidated: self.invalidated[0].get(),
            carried: self.carried[0].get(),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // splitmix64 finalizer over (agent, n); epoch deliberately excluded
        // so one agent's entries colocate across generations and epoch
        // invalidation touches the same shards evenly.
        let mut x = (key.1.index() as u64) << 32 | key.2 as u64;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        (x % self.shards.len() as u64) as usize
    }

    fn bump(counters: &[Counter; 2]) {
        counters[0].inc();
        counters[1].inc();
    }

    /// Looks up `key`, refreshing its LRU stamp on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<Recommendation>>> {
        if self.is_disabled() {
            Self::bump(&self.misses);
            return None;
        }
        let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
        shard.accesses += 1;
        let stamp = shard.accesses;
        match shard.entries.iter_mut().find(|e| e.key == *key) {
            Some(entry) => {
                entry.stamp = stamp;
                let value = Arc::clone(&entry.value);
                drop(shard);
                Self::bump(&self.hits);
                Some(value)
            }
            None => {
                drop(shard);
                Self::bump(&self.misses);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the shard's least
    /// recently used entry if the shard is at its budget.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<Recommendation>>) {
        if self.is_disabled() {
            return;
        }
        let mut shard = self.shards[self.shard_of(&key)].lock().unwrap();
        shard.accesses += 1;
        let stamp = shard.accesses;
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.key == key) {
            entry.value = value;
            entry.stamp = stamp;
            return;
        }
        if shard.entries.len() >= self.per_shard {
            let lru = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("non-empty shard at capacity");
            shard.entries.swap_remove(lru);
            Self::bump(&self.evictions);
        }
        shard.entries.push(Entry { key, value, stamp });
    }

    /// Selectively carries the previous generation across a snapshot swap:
    /// entries of epoch `new_epoch - 1` whose agent passes `keep` are
    /// re-keyed to `new_epoch` in place; everything else older than
    /// `new_epoch` is dropped. Returns `(carried, dropped)`.
    ///
    /// Soundness is the *caller's* contract (see `SwapPlan`): `keep` must
    /// only accept agents whose recommendations are byte-identical on the
    /// new snapshot, and the agent-id mapping must be stable between the
    /// two generations — otherwise a re-keyed entry would answer for the
    /// wrong agent. Because the shard function ignores the epoch, the
    /// old and new key of one entry live in the same shard, so re-keying
    /// never migrates entries and a raced insert under the new epoch is
    /// detected and resolved in favour of the fresh entry.
    pub fn carry_into(&self, new_epoch: u64, keep: &dyn Fn(AgentId) -> bool) -> (usize, usize) {
        let old_epoch = new_epoch.saturating_sub(1);
        let mut carried = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let mut fresh: Vec<CacheKey> = shard
                .entries
                .iter()
                .filter(|e| e.key.0 == new_epoch)
                .map(|e| e.key)
                .collect();
            let before = shard.entries.len();
            shard.entries.retain_mut(|e| {
                if e.key.0 >= new_epoch {
                    return true;
                }
                let rekeyed = (new_epoch, e.key.1, e.key.2);
                if e.key.0 == old_epoch && keep(e.key.1) && !fresh.contains(&rekeyed) {
                    e.key = rekeyed;
                    fresh.push(rekeyed);
                    carried += 1;
                    true
                } else {
                    false
                }
            });
            dropped += before - shard.entries.len();
        }
        for _ in 0..carried {
            Self::bump(&self.carried);
        }
        for _ in 0..dropped {
            Self::bump(&self.invalidated);
        }
        (carried, dropped)
    }

    /// Drops every entry whose epoch is older than `epoch`. Called on
    /// snapshot publish so a dead generation stops occupying capacity;
    /// returns how many entries were removed.
    pub fn invalidate_before(&self, epoch: u64) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.entries.len();
            shard.entries.retain(|e| e.key.0 >= epoch);
            removed += before - shard.entries.len();
        }
        for _ in 0..removed {
            Self::bump(&self.invalidated);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, agent: usize, n: usize) -> CacheKey {
        (epoch, AgentId::from_index(agent), n)
    }

    fn value(score: f64) -> Arc<Vec<Recommendation>> {
        Arc::new(vec![Recommendation {
            product: semrec_core::ProductId::from_index(0),
            score,
            voters: 1,
        }])
    }

    #[test]
    fn hit_and_miss_are_counted() {
        let cache = RecCache::new(8, 2);
        assert!(cache.get(&key(1, 0, 10)).is_none());
        cache.insert(key(1, 0, 10), value(0.5));
        assert!(cache.get(&key(1, 0, 10)).is_some());
        assert!(cache.get(&key(1, 0, 5)).is_none(), "n is part of the key");
        assert!(cache.get(&key(2, 0, 10)).is_none(), "epoch is part of the key");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = RecCache::new(2, 1);
        cache.insert(key(1, 0, 10), value(0.1));
        cache.insert(key(1, 1, 10), value(0.2));
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get(&key(1, 0, 10)).is_some());
        cache.insert(key(1, 2, 10), value(0.3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, 0, 10)).is_some(), "recently used must survive");
        assert!(cache.get(&key(1, 1, 10)).is_none(), "LRU must be evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let cache = RecCache::new(2, 1);
        cache.insert(key(1, 0, 10), value(0.1));
        cache.insert(key(1, 0, 10), value(0.9));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, 0, 10)).unwrap()[0].score, 0.9);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = RecCache::new(0, 4);
        assert!(cache.is_disabled());
        cache.insert(key(1, 0, 10), value(0.1));
        assert!(cache.get(&key(1, 0, 10)).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn invalidate_before_drops_old_epochs_only() {
        let cache = RecCache::new(16, 4);
        for agent in 0..4 {
            cache.insert(key(1, agent, 10), value(0.1));
            cache.insert(key(2, agent, 10), value(0.2));
        }
        let removed = cache.invalidate_before(2);
        assert_eq!(removed, 4);
        assert_eq!(cache.len(), 4);
        for agent in 0..4 {
            assert!(cache.get(&key(1, agent, 10)).is_none());
            assert!(cache.get(&key(2, agent, 10)).is_some());
        }
        assert_eq!(cache.stats().invalidated, 4);
    }

    #[test]
    fn carry_into_rekeys_clean_entries_and_drops_the_rest() {
        let cache = RecCache::new(32, 4);
        for agent in 0..4 {
            cache.insert(key(1, agent, 10), value(agent as f64));
        }
        // Pre-old-epoch garbage must also go.
        cache.insert(key(0, 9, 10), value(9.0));
        // Agents 0 and 1 are clean; 2 and 3 are dirty.
        let (carried, dropped) = cache.carry_into(2, &|a| a.index() < 2);
        assert_eq!(carried, 2);
        assert_eq!(dropped, 3);
        assert!(cache.get(&key(2, 0, 10)).is_some(), "clean entry answers on the new epoch");
        assert_eq!(cache.get(&key(2, 1, 10)).unwrap()[0].score, 1.0);
        assert!(cache.get(&key(2, 2, 10)).is_none(), "dirty entry must not cross the swap");
        assert!(cache.get(&key(1, 0, 10)).is_none(), "old key is gone after re-keying");
        assert!(cache.get(&key(0, 9, 10)).is_none() && cache.get(&key(2, 9, 10)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.carried, 2);
        assert_eq!(stats.invalidated, 3);
    }

    #[test]
    fn carry_into_yields_to_raced_fresh_inserts() {
        // A worker may have already computed agent 0 against the new
        // snapshot before the carry runs; the fresh entry must win.
        let cache = RecCache::new(32, 1);
        cache.insert(key(1, 0, 10), value(0.1));
        cache.insert(key(2, 0, 10), value(0.9));
        let (carried, dropped) = cache.carry_into(2, &|_| true);
        assert_eq!(carried, 0, "the fresh entry already covers the key");
        assert_eq!(dropped, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(2, 0, 10)).unwrap()[0].score, 0.9);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let cache = RecCache::new(8, 4);
        assert_eq!(cache.capacity(), 8);
        for agent in 0..64 {
            cache.insert(key(1, agent, 10), value(0.1));
        }
        assert!(cache.len() <= cache.capacity(), "{} entries", cache.len());
    }
}
