//! Typed serving errors.
//!
//! Load shedding is a *first-class answer*, not a failure mode hidden in a
//! timeout: an overloaded server refuses at admission with
//! [`ServeError::Overloaded`], and a request that sat in the queue past its
//! deadline is dropped with [`ServeError::DeadlineExceeded`] instead of
//! being served late. Callers can tell the three regimes apart and react
//! (back off, retry elsewhere, degrade the UI) — the behaviour Jamali's
//! distributed trust-aware serving argues for.

use std::fmt;

use semrec_core::CoreError;

use crate::class::Priority;

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors a serving request can end with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: the queue was at capacity.
    /// Depth, capacity and the refused request's class are attached so a
    /// shed diagnostic can tell "tiny queue" from "huge backlog" and show
    /// *whose* traffic was turned away.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured queue capacity the depth ran into.
        capacity: usize,
        /// Priority class of the refused (or displaced) request.
        class: Priority,
    },
    /// The request sat in the queue past its deadline and was shed at
    /// dequeue rather than served late.
    DeadlineExceeded {
        /// The virtual tick the request had to be started by.
        deadline: u64,
        /// The virtual tick at which the worker picked it up.
        now: u64,
    },
    /// The server is shutting down and no longer accepts (or completes)
    /// requests.
    ShuttingDown,
    /// The recommendation engine itself failed (unknown agent, …).
    Engine(CoreError),
    /// The response channel was dropped before a reply arrived — only
    /// possible if a worker panicked mid-request.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity, class } => {
                write!(
                    f,
                    "{class} request rejected: queue at capacity ({depth} of {capacity} deep)"
                )
            }
            ServeError::DeadlineExceeded { deadline, now } => {
                write!(f, "request shed: deadline tick {deadline} passed (now {now})")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Disconnected => write!(f, "response channel disconnected"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let overloaded =
            ServeError::Overloaded { depth: 8, capacity: 8, class: Priority::Low }.to_string();
        assert!(overloaded.contains("8 of 8"), "{overloaded}");
        assert!(overloaded.contains("low"), "{overloaded}");
        assert!(ServeError::DeadlineExceeded { deadline: 3, now: 5 }
            .to_string()
            .contains("tick 3"));
        let engine = ServeError::from(CoreError::UnknownAgent(7));
        assert!(engine.to_string().contains("unknown agent"));
        assert!(std::error::Error::source(&engine).is_some());
        assert!(std::error::Error::source(&ServeError::ShuttingDown).is_none());
    }
}
