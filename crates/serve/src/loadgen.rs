//! Deterministic closed-loop load generation.
//!
//! `clients` threads each issue a fixed number of requests against a
//! [`Server`], drawing target agents from a seeded Zipf distribution (per
//! Diaz-Aviles/Ziegler, request popularity in P2P recommender communities
//! is heavy-tailed — a few agents account for most traffic, which is also
//! what makes the recommendation cache earn its keep). Each client owns an
//! independent RNG stream seeded from `(seed, client index)`, so the *set*
//! of requests issued is identical across runs and worker counts; only
//! wall-clock interleaving varies.
//!
//! Closed-loop with bursts: a client keeps at most `burst` requests in
//! flight and waits for all of them before issuing the next burst. `burst
//! × clients` therefore bounds offered concurrency — raise it past the
//! queue capacity to push the server into admission-controlled shedding.
//!
//! Latency histograms (p50/p95/p99), throughput, shed rate, and cache hit
//! rate are reported in a [`LoadReport`] and recorded under the global
//! `serve.latency.seconds` histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use semrec_core::AgentId;
use semrec_datagen::zipf::Zipf;
use semrec_obs::{HistogramSummary, MetricsRegistry};

use crate::error::ServeError;
use crate::server::Server;

/// Load-generation configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Requests a client keeps in flight before waiting (≥ 1).
    pub burst: usize,
    /// Recommendation list length requested.
    pub top_n: usize,
    /// Seed for the per-client RNG streams.
    pub seed: u64,
    /// Zipf exponent over the agent panel (0 = uniform).
    pub zipf_exponent: f64,
    /// Deadline, in virtual ticks after submission, for each request.
    pub deadline_ticks: Option<u64>,
    /// Advance the server's virtual clock one tick every this many
    /// submissions (0 = the clock never moves — deadlines never expire).
    pub tick_every: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 100,
            burst: 1,
            top_n: 10,
            seed: 17,
            zipf_exponent: 1.1,
            deadline_ticks: None,
            tick_every: 0,
        }
    }
}

/// Outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Submission attempts (admitted + refused).
    pub attempts: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with a recommendation list.
    pub served: u64,
    /// Requests refused at admission (queue full).
    pub shed_overload: u64,
    /// Requests dropped past their deadline.
    pub shed_deadline: u64,
    /// Requests that ended in an engine error.
    pub failed: u64,
    /// Served requests answered from the cache.
    pub cache_hits: u64,
    /// Wall time of the whole run, in seconds.
    pub wall_seconds: f64,
    /// Client-observed latency (submission → response), in seconds.
    pub latency: HistogramSummary,
}

impl LoadReport {
    /// Total load shed, whatever the mechanism.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline
    }

    /// Fraction of attempts that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.shed() as f64 / self.attempts as f64
        }
    }

    /// Fraction of served requests answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.served as f64
        }
    }

    /// Served requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.served as f64 / self.wall_seconds
        }
    }
}

#[derive(Default)]
struct ClientTally {
    attempts: u64,
    admitted: u64,
    served: u64,
    shed_overload: u64,
    shed_deadline: u64,
    failed: u64,
    cache_hits: u64,
}

/// Drives `server` with seeded Zipf traffic over `agents` and reports the
/// aggregate outcome. Blocks until every request has resolved.
///
/// # Panics
/// Panics if `agents` is empty or the config asks for zero clients.
pub fn run_load(server: &Server, agents: &[AgentId], config: &LoadGenConfig) -> LoadReport {
    assert!(!agents.is_empty(), "load generation needs a non-empty agent panel");
    assert!(config.clients > 0, "load generation needs at least one client");
    let burst = config.burst.max(1);

    // Latency cells local to this run (the global registry accumulates
    // across runs and is reset by the experiment harness at its own cadence).
    let local = MetricsRegistry::new();
    let latency = local.histogram("latency.seconds");
    let global_latency = semrec_obs::histogram("serve.latency.seconds");
    let submissions = AtomicU64::new(0);

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let latency = latency.clone();
                let global_latency = global_latency.clone();
                let submissions = &submissions;
                scope.spawn(move || {
                    // Independent per-client stream: splitmix the client
                    // index into the seed so streams never collide.
                    let mut rng = StdRng::seed_from_u64(
                        config.seed ^ (client as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    let zipf = Zipf::new(agents.len(), config.zipf_exponent);
                    let mut tally = ClientTally::default();
                    let mut remaining = config.requests_per_client;
                    while remaining > 0 {
                        let round = burst.min(remaining);
                        remaining -= round;
                        let mut in_flight = Vec::with_capacity(round);
                        for _ in 0..round {
                            let agent = agents[zipf.sample(&mut rng)];
                            let deadline = config
                                .deadline_ticks
                                .map(|ticks| server.clock().now() + ticks);
                            tally.attempts += 1;
                            let submitted_at = Instant::now();
                            match server.submit_with_deadline(agent, config.top_n, deadline) {
                                Ok(ticket) => {
                                    tally.admitted += 1;
                                    in_flight.push((ticket, submitted_at));
                                }
                                Err(ServeError::Overloaded { .. }) => tally.shed_overload += 1,
                                Err(_) => tally.failed += 1,
                            }
                            if config.tick_every > 0 {
                                let total = submissions.fetch_add(1, Ordering::Relaxed) + 1;
                                if total.is_multiple_of(config.tick_every) {
                                    server.clock().advance(1);
                                }
                            }
                        }
                        for (ticket, submitted_at) in in_flight {
                            let outcome = ticket.wait();
                            let elapsed = submitted_at.elapsed().as_secs_f64();
                            match outcome {
                                Ok(response) => {
                                    tally.served += 1;
                                    if response.cache_hit {
                                        tally.cache_hits += 1;
                                    }
                                    latency.observe(elapsed);
                                    global_latency.observe(elapsed);
                                }
                                Err(ServeError::DeadlineExceeded { .. }) => {
                                    tally.shed_deadline += 1;
                                }
                                Err(_) => tally.failed += 1,
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut report = LoadReport {
        attempts: 0,
        admitted: 0,
        served: 0,
        shed_overload: 0,
        shed_deadline: 0,
        failed: 0,
        cache_hits: 0,
        wall_seconds,
        latency: latency.summary(),
    };
    for tally in tallies {
        report.attempts += tally.attempts;
        report.admitted += tally.admitted;
        report.served += tally.served;
        report.shed_overload += tally.shed_overload;
        report.shed_deadline += tally.shed_deadline;
        report.failed += tally.failed;
        report.cache_hits += tally.cache_hits;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use semrec_core::{Community, Recommender, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> =
            (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        for i in 0..n {
            c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
            c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
        }
        (Recommender::new(c, RecommenderConfig::default()), agents)
    }

    #[test]
    fn closed_loop_resolves_every_request() {
        let (engine, agents) = ring(16);
        let server = Server::start(engine, ServeConfig::default());
        let report = run_load(
            &server,
            &agents,
            &LoadGenConfig { clients: 3, requests_per_client: 40, ..Default::default() },
        );
        assert_eq!(report.attempts, 120);
        assert_eq!(report.admitted, 120, "ample queue: nothing shed");
        assert_eq!(report.served, 120);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latency.count, 120);
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
        assert!(report.throughput() > 0.0);
        // Zipf traffic over 16 agents repeats targets: the cache must help.
        assert!(report.cache_hits > 0);
        assert!(report.cache_hit_rate() > 0.0);
    }

    #[test]
    fn overload_sheds_instead_of_growing_the_queue() {
        let (engine, agents) = ring(16);
        let server = Server::start(
            engine,
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let report = run_load(
            &server,
            &agents,
            &LoadGenConfig {
                clients: 4,
                requests_per_client: 50,
                burst: 8,
                ..Default::default()
            },
        );
        assert_eq!(report.attempts, 200);
        assert!(report.shed_overload > 0, "queue of 2 under burst-8×4 load must shed");
        assert_eq!(report.served + report.shed(), report.attempts);
        assert!(server.queue_depth() <= 2, "the queue must stay bounded");
        assert!(report.shed_rate() > 0.0 && report.shed_rate() < 1.0);
    }

    #[test]
    fn identical_seeds_issue_identical_request_streams() {
        // The request *stream* (sequence of agents per client) is a pure
        // function of the seed — verify by draining one client's stream
        // twice via the same construction the generator uses.
        let (_, agents) = ring(32);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng =
                StdRng::seed_from_u64(seed ^ 1u64.wrapping_mul(0x9e3779b97f4a7c15));
            let zipf = Zipf::new(agents.len(), 1.1);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(draw(17), draw(17));
        assert_ne!(draw(17), draw(18), "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "non-empty agent panel")]
    fn empty_panel_is_rejected() {
        let (engine, _) = ring(4);
        let server = Server::start(engine, ServeConfig::default());
        let _ = run_load(&server, &[], &LoadGenConfig::default());
    }
}
