//! Deterministic load generation: a closed-loop burst driver and an
//! open-loop arrival-process harness.
//!
//! ## Closed loop ([`run_load`])
//!
//! `clients` threads each issue a fixed number of requests against a
//! [`Server`], drawing target agents from a seeded Zipf distribution (per
//! Diaz-Aviles/Ziegler, request popularity in P2P recommender communities
//! is heavy-tailed — a few agents account for most traffic, which is also
//! what makes the recommendation cache earn its keep). Each client owns an
//! independent RNG stream seeded from `(seed, client index)`, so the *set*
//! of requests issued is identical across runs and worker counts; only
//! wall-clock interleaving varies.
//!
//! Closed-loop with bursts: a client keeps at most `burst` requests in
//! flight and waits for all of them before issuing the next burst. `burst
//! × clients` therefore bounds offered concurrency — raise it past the
//! queue capacity to push the server into admission-controlled shedding.
//!
//! ## Open loop ([`run_open_loop`])
//!
//! The closed loop can never overload a server for long: clients wait for
//! answers, so offered load self-throttles exactly when the server slows
//! down — the failure mode SLOs exist for never materializes. The open
//! loop instead submits according to an [`ArrivalProcess`] on the virtual
//! tick axis, whatever the server's state: Poisson at a fixed rate, a
//! diurnal triangle ramp, or a flash crowd that spikes the rate *and*
//! concentrates it on a small hot agent set. Everything — arrival counts,
//! targets, classes — comes from seeded RNG streams, and the server runs
//! in lockstep mode ([`Server::drain_step`]), so the entire run, counters
//! included, is a pure function of `(config, seed)` regardless of how many
//! compute threads the drain uses.
//!
//! The headline metric is **goodput-under-SLO**: requests answered within
//! their class's deadline budget (measured against the [`SloConfig`]
//! whether or not enforcement is on, so a no-SLO baseline is comparable to
//! an enforcing run on the same trace).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::AgentId;
use semrec_datagen::zipf::Zipf;
use semrec_obs::{HistogramSummary, MetricsRegistry};

use crate::class::{PerClass, Priority};
use crate::error::ServeError;
use crate::server::{Server, Ticket};
use crate::slo::{ScalerConfig, SloConfig, SloController, WorkerScaler};

/// Load-generation configuration (closed loop).
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Requests a client keeps in flight before waiting (≥ 1).
    pub burst: usize,
    /// Recommendation list length requested.
    pub top_n: usize,
    /// Seed for the per-client RNG streams.
    pub seed: u64,
    /// Zipf exponent over the agent panel (0 = uniform).
    pub zipf_exponent: f64,
    /// Deadline, in virtual ticks after submission, for each request.
    pub deadline_ticks: Option<u64>,
    /// Advance the server's virtual clock one tick every this many
    /// submissions (0 = the clock never moves — deadlines never expire).
    pub tick_every: u64,
    /// Probability mass per priority class, aligned with [`Priority::ALL`]
    /// (all zero = everything [`Priority::Normal`]).
    pub class_mix: [f64; 3],
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 100,
            burst: 1,
            top_n: 10,
            seed: 17,
            zipf_exponent: 1.1,
            deadline_ticks: None,
            tick_every: 0,
            class_mix: [0.0, 1.0, 0.0],
        }
    }
}

/// Draws a priority class from a (not necessarily normalized) mix.
fn draw_class(rng: &mut StdRng, mix: &[f64; 3]) -> Priority {
    let total: f64 = mix.iter().sum();
    if total <= 0.0 {
        return Priority::Normal;
    }
    let mut u: f64 = rng.random::<f64>() * total;
    for class in Priority::ALL {
        u -= mix[class.index()];
        if u < 0.0 {
            return class;
        }
    }
    Priority::Low
}

/// Splitmix-style stream separation: one base seed, many disjoint streams.
fn stream_seed(seed: u64, stream: u64) -> u64 {
    seed ^ (stream + 1).wrapping_mul(0x9e3779b97f4a7c15)
}

/// Outcome of one closed-loop load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Submission attempts (admitted + refused).
    pub attempts: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with a recommendation list.
    pub served: u64,
    /// Requests refused at admission (queue full) or displaced.
    pub shed_admission: u64,
    /// Requests dropped past their deadline.
    pub shed_deadline: u64,
    /// Requests that ended in an engine error.
    pub failed: u64,
    /// Served requests answered from the cache.
    pub cache_hits: u64,
    /// Wall time of the whole run, in seconds.
    pub wall_seconds: f64,
    /// Client-observed latency (submission → response), in seconds.
    pub latency: HistogramSummary,
    /// Client-observed latency sliced per priority class.
    pub class_latency: PerClass<HistogramSummary>,
}

impl LoadReport {
    /// Total load shed, whatever the mechanism.
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_deadline
    }

    /// Fraction of attempts that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.shed() as f64 / self.attempts as f64
        }
    }

    /// Fraction of served requests answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.served as f64
        }
    }

    /// Served requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.served as f64 / self.wall_seconds
        }
    }
}

#[derive(Default)]
struct ClientTally {
    attempts: u64,
    admitted: u64,
    served: u64,
    shed_admission: u64,
    shed_deadline: u64,
    failed: u64,
    cache_hits: u64,
}

/// Drives `server` with seeded Zipf traffic over `agents` and reports the
/// aggregate outcome. Blocks until every request has resolved.
///
/// # Panics
/// Panics if `agents` is empty or the config asks for zero clients.
pub fn run_load(server: &Server, agents: &[AgentId], config: &LoadGenConfig) -> LoadReport {
    assert!(!agents.is_empty(), "load generation needs a non-empty agent panel");
    assert!(config.clients > 0, "load generation needs at least one client");
    let burst = config.burst.max(1);

    // Latency cells local to this run (the global registry accumulates
    // across runs and is reset by the experiment harness at its own cadence).
    let local = MetricsRegistry::new();
    let latency = local.histogram("latency.seconds");
    let class_latency = PerClass {
        high: local.histogram("latency.seconds.high"),
        normal: local.histogram("latency.seconds.normal"),
        low: local.histogram("latency.seconds.low"),
    };
    let global_latency = semrec_obs::histogram("serve.latency.seconds");
    let submissions = AtomicU64::new(0);

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let latency = latency.clone();
                let class_latency = class_latency.clone();
                let global_latency = global_latency.clone();
                let submissions = &submissions;
                scope.spawn(move || {
                    // Independent per-client stream: splitmix the client
                    // index into the seed so streams never collide.
                    let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, client as u64));
                    let zipf = Zipf::new(agents.len(), config.zipf_exponent);
                    let mut tally = ClientTally::default();
                    let mut remaining = config.requests_per_client;
                    while remaining > 0 {
                        let round = burst.min(remaining);
                        remaining -= round;
                        let mut in_flight = Vec::with_capacity(round);
                        for _ in 0..round {
                            let agent = agents[zipf.sample(&mut rng)];
                            let class = draw_class(&mut rng, &config.class_mix);
                            let deadline = config
                                .deadline_ticks
                                .map(|ticks| server.clock().now() + ticks);
                            tally.attempts += 1;
                            let submitted_at = Instant::now();
                            match server.submit_classed(agent, config.top_n, class, deadline) {
                                Ok(ticket) => {
                                    tally.admitted += 1;
                                    in_flight.push((ticket, class, submitted_at));
                                }
                                Err(ServeError::Overloaded { .. }) => tally.shed_admission += 1,
                                Err(_) => tally.failed += 1,
                            }
                            if config.tick_every > 0 {
                                let total = submissions.fetch_add(1, Ordering::Relaxed) + 1;
                                if total.is_multiple_of(config.tick_every) {
                                    server.clock().advance(1);
                                }
                            }
                        }
                        for (ticket, class, submitted_at) in in_flight {
                            let outcome = ticket.wait();
                            let elapsed = submitted_at.elapsed().as_secs_f64();
                            match outcome {
                                Ok(response) => {
                                    tally.served += 1;
                                    if response.cache_hit {
                                        tally.cache_hits += 1;
                                    }
                                    latency.observe(elapsed);
                                    class_latency.get(class).observe(elapsed);
                                    global_latency.observe(elapsed);
                                }
                                Err(ServeError::DeadlineExceeded { .. }) => {
                                    tally.shed_deadline += 1;
                                }
                                Err(ServeError::Overloaded { .. }) => {
                                    // Displaced after admission by a
                                    // higher-class arrival.
                                    tally.shed_admission += 1;
                                }
                                Err(_) => tally.failed += 1,
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut report = LoadReport {
        attempts: 0,
        admitted: 0,
        served: 0,
        shed_admission: 0,
        shed_deadline: 0,
        failed: 0,
        cache_hits: 0,
        wall_seconds,
        latency: latency.summary(),
        class_latency: PerClass {
            high: class_latency.high.summary(),
            normal: class_latency.normal.summary(),
            low: class_latency.low.summary(),
        },
    };
    for tally in tallies {
        report.attempts += tally.attempts;
        report.admitted += tally.admitted;
        report.served += tally.served;
        report.shed_admission += tally.shed_admission;
        report.shed_deadline += tally.shed_deadline;
        report.failed += tally.failed;
        report.cache_hits += tally.cache_hits;
    }
    report
}

/// Deterministic open-loop arrival process on the virtual tick axis.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at a constant `rate` (requests per tick).
    Poisson {
        /// Mean arrivals per tick.
        rate: f64,
    },
    /// A diurnal triangle ramp: the rate climbs linearly from `base` to
    /// `peak` at the run's midpoint and back down.
    Diurnal {
        /// Rate at the start and end of the run.
        base: f64,
        /// Rate at the midpoint.
        peak: f64,
    },
    /// A flash crowd: `base`-rate Poisson traffic with a window
    /// `[start, start + len)` during which the rate jumps to `spike` *and*
    /// a `hot_fraction` of arrivals concentrate uniformly on the first
    /// `hot_agents` of the panel — the cache-busting, queue-flooding shape
    /// SLO machinery has to survive.
    FlashCrowd {
        /// Rate outside the spike window.
        base: f64,
        /// Rate inside the spike window.
        spike: f64,
        /// First tick of the spike window.
        start: u64,
        /// Length of the spike window, in ticks.
        len: u64,
        /// Size of the hot agent set (clamped to the panel).
        hot_agents: usize,
        /// Fraction of spike-window arrivals aimed at the hot set.
        hot_fraction: f64,
    },
}

impl ArrivalProcess {
    /// The offered rate at `tick` of a `total_ticks` run.
    fn rate_at(&self, tick: u64, total_ticks: u64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal { base, peak } => {
                let t = if total_ticks <= 1 {
                    0.0
                } else {
                    tick as f64 / (total_ticks - 1) as f64
                };
                let triangle = 1.0 - (2.0 * t - 1.0).abs();
                base + (peak - base) * triangle
            }
            ArrivalProcess::FlashCrowd { base, spike, start, len, .. } => {
                if tick >= start && tick < start.saturating_add(len) {
                    spike
                } else {
                    base
                }
            }
        }
    }

    /// Whether `tick` falls inside a flash-crowd spike window.
    fn in_spike(&self, tick: u64) -> bool {
        match *self {
            ArrivalProcess::FlashCrowd { start, len, .. } => {
                tick >= start && tick < start.saturating_add(len)
            }
            _ => false,
        }
    }
}

/// Knuth's Poisson sampler — exact, and fine for the per-tick rates the
/// harness uses (λ ≲ 50).
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let floor = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= floor {
            return k;
        }
        k += 1;
    }
}

/// Open-loop harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Ticks during which arrivals are offered.
    pub ticks: u64,
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Recommendation list length requested.
    pub top_n: usize,
    /// Seed for the arrival / target / class RNG streams.
    pub seed: u64,
    /// Zipf exponent over the agent panel for non-hot traffic.
    pub zipf_exponent: f64,
    /// Probability mass per priority class, aligned with [`Priority::ALL`].
    pub class_mix: [f64; 3],
    /// Requests one logical worker drains per tick.
    pub batch_size: usize,
    /// Compute threads handed to [`Server::drain_step`]. Affects wall time
    /// only — the run's outcome is identical for any value.
    pub threads: usize,
    /// Deadline budgets and p99 target — always the measuring stick for
    /// goodput, and the enforcement policy when `enforce_slo` is on.
    pub slo: SloConfig,
    /// Enforce the SLO (deadline shedding + pressure controller). Off =
    /// the no-SLO baseline: nothing is shed at dequeue, requests are
    /// simply served late.
    pub enforce_slo: bool,
    /// Worker-pool bounds and watermarks.
    pub scaler: ScalerConfig,
    /// Scale the drain width from queue depth. Off = a fixed pool of
    /// `scaler.min_workers`.
    pub autoscale: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            ticks: 200,
            process: ArrivalProcess::Poisson { rate: 4.0 },
            top_n: 10,
            seed: 17,
            zipf_exponent: 1.1,
            class_mix: [0.2, 0.5, 0.3],
            batch_size: 4,
            threads: 1,
            slo: SloConfig::default(),
            enforce_slo: true,
            scaler: ScalerConfig::default(),
            autoscale: true,
        }
    }
}

/// Per-class outcome of an open-loop run. Wait percentiles are exact,
/// computed from the full set of served waits in virtual ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassReport {
    /// Requests offered (admitted + refused).
    pub offered: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with a recommendation list.
    pub served: u64,
    /// Served within the class's deadline budget — the goodput numerator.
    pub goodput: u64,
    /// Refused at admission (never queued).
    pub shed_admission: u64,
    /// Admitted, then displaced from the queue by a higher-class arrival.
    pub displaced: u64,
    /// Shed at dequeue (hard deadline or SLO pressure).
    pub shed_deadline: u64,
    /// Engine errors.
    pub failed: u64,
    /// Exact p50 of served queue waits, in ticks.
    pub wait_p50: u64,
    /// Exact p95 of served queue waits, in ticks.
    pub wait_p95: u64,
    /// Exact p99 of served queue waits, in ticks.
    pub wait_p99: u64,
}

impl ClassReport {
    /// Goodput as a fraction of offered load.
    pub fn goodput_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.goodput as f64 / self.offered as f64
        }
    }

    /// Every admitted request that resolved one way or another.
    pub fn resolved(&self) -> u64 {
        self.served + self.displaced + self.shed_deadline + self.failed
    }
}

/// Outcome of one open-loop run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpenLoopReport {
    /// Ticks actually run (offered ticks + drain tail).
    pub ticks_run: u64,
    /// Per-class outcomes.
    pub class: PerClass<ClassReport>,
    /// Worker-pool scale events fired during the run.
    pub scale_events: u64,
    /// Largest active worker count reached.
    pub peak_workers: usize,
    /// Admitted requests never resolved (must be 0 — checked by tests).
    pub lost: u64,
}

impl OpenLoopReport {
    /// Total requests offered across classes.
    pub fn offered(&self) -> u64 {
        Priority::ALL.iter().map(|&c| self.class.get(c).offered).sum()
    }

    /// Total served across classes.
    pub fn served(&self) -> u64 {
        Priority::ALL.iter().map(|&c| self.class.get(c).served).sum()
    }

    /// Total goodput (served within budget) across classes.
    pub fn goodput(&self) -> u64 {
        Priority::ALL.iter().map(|&c| self.class.get(c).goodput).sum()
    }

    /// Total shed (admission + displacement + deadline) across classes.
    pub fn shed(&self) -> u64 {
        Priority::ALL
            .iter()
            .map(|&c| {
                let slot = self.class.get(c);
                slot.shed_admission + slot.displaced + slot.shed_deadline
            })
            .sum()
    }
}

/// Exact percentile of a sorted slice (empty → 0).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One admitted request the harness is still waiting on.
struct InFlight {
    ticket: Ticket,
    class: Priority,
    submitted_at: u64,
}

/// [`run_open_loop_with`] without a per-tick hook.
pub fn run_open_loop(
    server: &Server,
    agents: &[AgentId],
    config: &OpenLoopConfig,
) -> OpenLoopReport {
    run_open_loop_with(server, agents, config, |_, _| {})
}

/// Drives `server` (which must be in lockstep mode, `workers == 0`) with
/// open-loop traffic. Each tick: `hook(tick, server)` runs first (the seam
/// experiments use to publish a snapshot mid-burst), arrivals are
/// submitted, the scaler observes queue depth, one [`Server::drain_step`]
/// runs at the resulting width, resolved tickets are collected, and the
/// virtual clock advances one tick. After the offered window, the harness
/// keeps ticking until the queue and the in-flight set are empty.
///
/// The whole run — every counter, every response — is a pure function of
/// `(config, agents, server state)`; `config.threads` only changes wall
/// time.
///
/// # Panics
/// Panics if `agents` is empty or the server has free-running workers.
pub fn run_open_loop_with(
    server: &Server,
    agents: &[AgentId],
    config: &OpenLoopConfig,
    mut hook: impl FnMut(u64, &Server),
) -> OpenLoopReport {
    assert!(!agents.is_empty(), "load generation needs a non-empty agent panel");
    let mut arrivals_rng = StdRng::seed_from_u64(stream_seed(config.seed, 0));
    let mut target_rng = StdRng::seed_from_u64(stream_seed(config.seed, 1));
    let mut class_rng = StdRng::seed_from_u64(stream_seed(config.seed, 2));
    let zipf = Zipf::new(agents.len(), config.zipf_exponent);

    let mut slo = config.enforce_slo.then(|| SloController::new(config.slo));
    let mut scaler = WorkerScaler::new(config.scaler);
    let mut peak_workers = config.scaler.min_workers;

    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut report = OpenLoopReport::default();
    let mut waits: PerClass<Vec<u64>> = PerClass::default();

    // Offered window plus a bounded drain tail. The tail cap only guards
    // against a logic bug leaving tickets unresolved; it is far above
    // anything a finite queue needs to drain at width ≥ 1.
    let tail_cap = config.ticks + 10_000 + server.queue_depth() as u64;
    let mut tick = 0u64;
    loop {
        let offering = tick < config.ticks;
        if !offering && in_flight.is_empty() && server.queue_depth() == 0 {
            break;
        }
        if tick >= tail_cap {
            break;
        }
        hook(tick, server);

        if offering {
            let rate = config.process.rate_at(tick, config.ticks);
            let count = poisson(&mut arrivals_rng, rate);
            for _ in 0..count {
                let agent = match config.process {
                    ArrivalProcess::FlashCrowd { hot_agents, hot_fraction, .. }
                        if config.process.in_spike(tick)
                            && target_rng.random::<f64>() < hot_fraction =>
                    {
                        let hot = hot_agents.clamp(1, agents.len());
                        agents[target_rng.random_range(0..hot)]
                    }
                    _ => agents[zipf.sample(&mut target_rng)],
                };
                let class = draw_class(&mut class_rng, &config.class_mix);
                let slot = report.class.get_mut(class);
                slot.offered += 1;
                match server.submit_classed(agent, config.top_n, class, None) {
                    Ok(ticket) => {
                        slot.admitted += 1;
                        in_flight.push(InFlight { ticket, class, submitted_at: tick });
                    }
                    Err(ServeError::Overloaded { .. }) => slot.shed_admission += 1,
                    Err(_) => slot.failed += 1,
                }
            }
        }

        let active = if config.autoscale {
            scaler.observe(server.queue_depth())
        } else {
            scaler.active()
        };
        peak_workers = peak_workers.max(active);
        server.drain_step(active * config.batch_size.max(1), config.threads, slo.as_mut());

        // Collect resolved tickets in submission order.
        let mut still_pending = Vec::with_capacity(in_flight.len());
        for flight in in_flight {
            match flight.ticket.try_wait() {
                None => still_pending.push(flight),
                Some(result) => {
                    let wait = tick.saturating_sub(flight.submitted_at);
                    let slot = report.class.get_mut(flight.class);
                    match result {
                        Ok(_) => {
                            slot.served += 1;
                            if wait <= *config.slo.deadline_ticks.get(flight.class) {
                                slot.goodput += 1;
                            }
                            waits.get_mut(flight.class).push(wait);
                        }
                        Err(ServeError::DeadlineExceeded { .. }) => slot.shed_deadline += 1,
                        Err(ServeError::Overloaded { .. }) => {
                            // Displaced after admission by a higher class.
                            slot.displaced += 1;
                        }
                        Err(_) => slot.failed += 1,
                    }
                }
            }
        }
        in_flight = still_pending;
        server.clock().advance(1);
        tick += 1;
    }

    report.ticks_run = tick;
    report.scale_events = scaler.scale_events();
    report.peak_workers = peak_workers;
    report.lost = in_flight.len() as u64;
    for class in Priority::ALL {
        let sorted = waits.get_mut(class);
        sorted.sort_unstable();
        let slot = report.class.get_mut(class);
        slot.wait_p50 = percentile(sorted, 0.50);
        slot.wait_p95 = percentile(sorted, 0.95);
        slot.wait_p99 = percentile(sorted, 0.99);
        semrec_obs::counter(&format!("serve.slo.goodput.{}", class.label()))
            .add(slot.goodput);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use semrec_core::{Community, Recommender, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> =
            (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        for i in 0..n {
            c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
            c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
        }
        (Recommender::new(c, RecommenderConfig::default()), agents)
    }

    #[test]
    fn closed_loop_resolves_every_request() {
        let (engine, agents) = ring(16);
        let server = Server::start(engine, ServeConfig::default());
        let report = run_load(
            &server,
            &agents,
            &LoadGenConfig { clients: 3, requests_per_client: 40, ..Default::default() },
        );
        assert_eq!(report.attempts, 120);
        assert_eq!(report.admitted, 120, "ample queue: nothing shed");
        assert_eq!(report.served, 120);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latency.count, 120);
        assert_eq!(report.class_latency.normal.count, 120, "default mix is all Normal");
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
        assert!(report.throughput() > 0.0);
        // Zipf traffic over 16 agents repeats targets: the cache must help.
        assert!(report.cache_hits > 0);
        assert!(report.cache_hit_rate() > 0.0);
    }

    #[test]
    fn closed_loop_class_mix_spreads_load_across_classes() {
        let (engine, agents) = ring(16);
        let server = Server::start(engine, ServeConfig::default());
        let report = run_load(
            &server,
            &agents,
            &LoadGenConfig {
                clients: 2,
                requests_per_client: 60,
                class_mix: [1.0, 1.0, 1.0],
                ..Default::default()
            },
        );
        assert_eq!(report.served, 120);
        let counts = [
            report.class_latency.high.count,
            report.class_latency.normal.count,
            report.class_latency.low.count,
        ];
        assert_eq!(counts.iter().sum::<u64>(), 120);
        assert!(counts.iter().all(|&c| c > 0), "uniform mix reaches every class: {counts:?}");
    }

    #[test]
    fn overload_sheds_instead_of_growing_the_queue() {
        let (engine, agents) = ring(16);
        let server = Server::start(
            engine,
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let report = run_load(
            &server,
            &agents,
            &LoadGenConfig {
                clients: 4,
                requests_per_client: 50,
                burst: 8,
                ..Default::default()
            },
        );
        assert_eq!(report.attempts, 200);
        assert!(report.shed_admission > 0, "queue of 2 under burst-8×4 load must shed");
        assert_eq!(report.served + report.shed(), report.attempts);
        assert!(server.queue_depth() <= 2, "the queue must stay bounded");
        assert!(report.shed_rate() > 0.0 && report.shed_rate() < 1.0);
    }

    #[test]
    fn identical_seeds_issue_identical_request_streams() {
        // The request *stream* (sequence of agents per client) is a pure
        // function of the seed — verify by draining one client's stream
        // twice via the same construction the generator uses.
        let (_, agents) = ring(32);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0));
            let zipf = Zipf::new(agents.len(), 1.1);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(draw(17), draw(17));
        assert_ne!(draw(17), draw(18), "different seeds should differ");
    }

    #[test]
    fn open_loop_serves_everything_under_light_load() {
        let (engine, agents) = ring(16);
        let server = Server::start(engine, ServeConfig { workers: 0, ..ServeConfig::default() });
        let config = OpenLoopConfig {
            ticks: 50,
            process: ArrivalProcess::Poisson { rate: 2.0 },
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop(&server, &agents, &config);
        assert!(report.offered() > 0);
        assert_eq!(report.lost, 0, "every admitted request must resolve");
        assert_eq!(report.served(), report.offered(), "light load: nothing shed");
        assert_eq!(report.goodput(), report.served(), "light load: everything within budget");
        server.shutdown();
    }

    #[test]
    fn open_loop_is_a_pure_function_of_the_seed() {
        let (engine, agents) = ring(16);
        let config = OpenLoopConfig {
            ticks: 60,
            process: ArrivalProcess::FlashCrowd {
                base: 2.0,
                spike: 20.0,
                start: 20,
                len: 15,
                hot_agents: 4,
                hot_fraction: 0.8,
            },
            ..OpenLoopConfig::default()
        };
        let run = |threads: usize| {
            let server = Server::start(
                engine.clone(),
                ServeConfig { workers: 0, queue_capacity: 64, ..ServeConfig::default() },
            );
            let report =
                run_open_loop(&server, &agents, &OpenLoopConfig { threads, ..config });
            server.shutdown();
            report
        };
        let a = run(1);
        let b = run(1);
        let c = run(8);
        assert_eq!(a, b, "same seed, same threads");
        assert_eq!(a, c, "thread count must not change the outcome");
        assert_eq!(a.lost, 0);
    }

    #[test]
    fn diurnal_ramp_peaks_mid_run() {
        let process = ArrivalProcess::Diurnal { base: 1.0, peak: 9.0 };
        assert!((process.rate_at(0, 101) - 1.0).abs() < 1e-9);
        assert!((process.rate_at(50, 101) - 9.0).abs() < 1e-9);
        assert!((process.rate_at(100, 101) - 1.0).abs() < 1e-9);
        assert!(!process.in_spike(50));
    }

    #[test]
    fn poisson_sampler_matches_the_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "sample mean {mean} too far from λ=3");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty agent panel")]
    fn empty_panel_is_rejected() {
        let (engine, _) = ring(4);
        let server = Server::start(engine, ServeConfig::default());
        let _ = run_load(&server, &[], &LoadGenConfig::default());
    }
}
