//! Epoch-versioned model snapshots with hot swap.
//!
//! A [`ModelSnapshot`] is one immutable generation of the model: the
//! `Arc`-shared community/profiles/config state behind a
//! [`Recommender`], tagged with a monotonically
//! increasing epoch. The [`SnapshotSwitch`] holds the current snapshot and
//! swaps it atomically: readers [`pin`](SnapshotSwitch::pin) the snapshot
//! they start with and keep computing against it while a crawl/refresh
//! round [`publish`](SnapshotSwitch::publish)es the next one — no request
//! is ever paused or dropped by a swap, and the old generation is freed as
//! soon as its last reader drops the `Arc`.

use std::sync::{Arc, RwLock};

use semrec_core::{Recommender, SharedModel};

/// One immutable, epoch-tagged generation of the recommendation model.
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    epoch: u64,
    engine: Recommender,
}

impl ModelSnapshot {
    /// The generation number. Epochs start at 1 and only grow.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine serving this generation.
    pub fn engine(&self) -> &Recommender {
        &self.engine
    }

    /// The shared model state behind the engine (cheap `Arc` clone).
    pub fn model(&self) -> Arc<SharedModel> {
        self.engine.shared()
    }
}

/// The swap point: the single place the "current" snapshot lives.
///
/// Reads take a short `RwLock` read guard only long enough to clone an
/// `Arc`; computation happens entirely outside the lock, against the
/// pinned generation.
#[derive(Debug)]
pub struct SnapshotSwitch {
    current: RwLock<Arc<ModelSnapshot>>,
}

impl SnapshotSwitch {
    /// Installs `engine` as epoch 1.
    pub fn new(engine: Recommender) -> Self {
        Self::new_at(engine, 1)
    }

    /// Installs `engine` as a caller-chosen starting epoch (clamped to at
    /// least 1 — epochs start at 1 and only grow).
    ///
    /// This is the warm-start entry point: a node recovering from a
    /// durable checkpoint (see `semrec-store`) resumes at the epoch its
    /// persisted model had reached, so epoch-keyed cache semantics and the
    /// `serve.snapshot.epoch` gauge line up with a node that never
    /// restarted.
    pub fn new_at(engine: Recommender, epoch: u64) -> Self {
        let snapshot = Arc::new(ModelSnapshot { epoch: epoch.max(1), engine });
        Self::publish_metrics(&snapshot);
        SnapshotSwitch { current: RwLock::new(snapshot) }
    }

    /// Pins the current generation: the returned `Arc` stays valid (and
    /// byte-identical in behaviour) however many swaps happen after.
    pub fn pin(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap().epoch
    }

    /// Atomically installs `engine` as the next generation and returns its
    /// epoch. In-flight readers keep the generation they pinned; the old
    /// snapshot is dropped when the last of them finishes.
    pub fn publish(&self, engine: Recommender) -> u64 {
        let mut current = self.current.write().unwrap();
        let epoch = current.epoch + 1;
        let snapshot = Arc::new(ModelSnapshot { epoch, engine });
        Self::publish_metrics(&snapshot);
        semrec_obs::counter("serve.snapshot.swaps").inc();
        *current = snapshot;
        epoch
    }

    fn publish_metrics(snapshot: &ModelSnapshot) {
        semrec_obs::gauge("serve.snapshot.epoch").set(snapshot.epoch as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    use semrec_core::{Community, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    fn engine() -> Recommender {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let a = c.add_agent("http://ex.org/a").unwrap();
        let b = c.add_agent("http://ex.org/b").unwrap();
        c.trust.set_trust(a, b, 0.9).unwrap();
        c.set_rating(b, products[0], 1.0).unwrap();
        Recommender::new(c, RecommenderConfig::default())
    }

    #[test]
    fn epochs_start_at_one_and_grow() {
        let switch = SnapshotSwitch::new(engine());
        assert_eq!(switch.epoch(), 1);
        assert_eq!(switch.publish(engine()), 2);
        assert_eq!(switch.publish(engine()), 3);
        assert_eq!(switch.pin().epoch(), 3);
    }

    #[test]
    fn warm_start_resumes_at_the_persisted_epoch() {
        let switch = SnapshotSwitch::new_at(engine(), 7);
        assert_eq!(switch.epoch(), 7);
        assert_eq!(switch.publish(engine()), 8);
        // Epochs start at 1 even if a caller passes a bogus 0.
        assert_eq!(SnapshotSwitch::new_at(engine(), 0).epoch(), 1);
    }

    #[test]
    fn pinned_readers_keep_their_generation_across_swaps() {
        let switch = SnapshotSwitch::new(engine());
        let pinned = switch.pin();
        switch.publish(engine());
        switch.publish(engine());
        assert_eq!(pinned.epoch(), 1, "a pin is immune to later swaps");
        assert_eq!(switch.pin().epoch(), 3);
        // The pinned engine still answers.
        let target = pinned.engine().community().agent_by_uri("http://ex.org/a").unwrap();
        assert!(!pinned.engine().recommend(target, 5).unwrap().is_empty());
    }

    #[test]
    fn old_generation_drops_when_its_last_reader_finishes() {
        let switch = SnapshotSwitch::new(engine());
        let pinned = switch.pin();
        let weak: Weak<ModelSnapshot> = Arc::downgrade(&pinned);
        switch.publish(engine());
        assert!(weak.upgrade().is_some(), "reader still holds epoch 1");
        drop(pinned);
        assert!(weak.upgrade().is_none(), "last reader gone → epoch 1 freed");
    }

    #[test]
    fn readers_see_either_the_old_or_the_new_generation_never_neither() {
        let switch = std::sync::Arc::new(SnapshotSwitch::new(engine()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let switch = std::sync::Arc::clone(&switch);
                scope.spawn(move || {
                    for _ in 0..500 {
                        let epoch = switch.pin().epoch();
                        assert!((1..=9).contains(&epoch));
                    }
                });
            }
            for _ in 0..8 {
                switch.publish(engine());
            }
        });
        assert_eq!(switch.epoch(), 9);
    }
}
