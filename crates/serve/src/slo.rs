//! SLO enforcement: deadline budgets, a p99-wait pressure controller, and a
//! queue-depth worker autoscaler.
//!
//! Everything here runs on the virtual [`TickClock`](crate::clock::TickClock)
//! axis and is driven synchronously by the open-loop harness, so the whole
//! control loop — observed waits → pressure level → shed decisions → worker
//! count — is a pure function of the arrival trace. That is what lets the
//! acceptance tests demand byte-identical `serve.slo.*` counters across
//! runs and thread counts.
//!
//! The control policy is deliberately boring:
//!
//! * [`SloController`] keeps a sliding window of recent wait times (in
//!   ticks) and computes an **exact** p99 by sorting — no approximate
//!   histogram, because approximation would make shed decisions depend on
//!   bucket layout. When the observed p99 crosses the target it raises a
//!   pressure level, with a hysteresis band so the level doesn't flap.
//! * Pressure sheds strictly bottom-up: level 1 sheds `Low` before
//!   compute, level 2 sheds `Low` and `Normal`. `High` is never
//!   pressure-shed — it only ever misses its own hard deadline. This is
//!   the mechanism behind "high-priority goodput degrades last".
//! * [`WorkerScaler`] watches queue depth per active worker and scales the
//!   drain width multiplicatively up / one step down, with a dwell time so
//!   a single burst tick can't thrash the pool.

use crate::class::{PerClass, Priority};

/// Per-class deadline budgets and the latency SLO.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Ticks each class is allowed to wait before its *hard* deadline: a
    /// request older than this at dequeue is shed, whatever the pressure.
    pub deadline_ticks: PerClass<u64>,
    /// The p99 queue-wait target (ticks) the controller defends.
    pub target_p99_wait_ticks: u64,
    /// Sliding-window size (observed waits) for the exact p99.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            deadline_ticks: PerClass { high: 8, normal: 16, low: 32 },
            target_p99_wait_ticks: 16,
            window: 256,
        }
    }
}

/// Deadline-aware shedding driven by an exact sliding-window p99.
#[derive(Debug)]
pub struct SloController {
    config: SloConfig,
    /// Ring buffer of the last `window` observed waits, in ticks.
    waits: Vec<u64>,
    next_slot: usize,
    filled: bool,
    /// 0 = healthy, 1 = shed Low, 2 = shed Low and Normal.
    pressure: u8,
}

impl SloController {
    /// A controller defending `config`'s p99 target.
    ///
    /// # Panics
    /// Panics if `config.window == 0`.
    pub fn new(config: SloConfig) -> Self {
        assert!(config.window > 0, "SLO window must be at least 1");
        SloController {
            config,
            waits: Vec::with_capacity(config.window),
            next_slot: 0,
            filled: false,
            pressure: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The hard deadline budget (ticks) for `class`.
    pub fn deadline_budget(&self, class: Priority) -> u64 {
        *self.config.deadline_ticks.get(class)
    }

    /// Records one served request's queue wait.
    pub fn record_wait(&mut self, wait_ticks: u64) {
        if self.waits.len() < self.config.window {
            self.waits.push(wait_ticks);
        } else {
            self.waits[self.next_slot] = wait_ticks;
            self.next_slot = (self.next_slot + 1) % self.config.window;
            self.filled = true;
        }
    }

    /// Exact p99 of the current window (0 while empty).
    pub fn observed_p99(&self) -> u64 {
        if self.waits.is_empty() {
            return 0;
        }
        let mut sorted = self.waits.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// Current pressure level (0 healthy, 1 shed Low, 2 shed Low+Normal).
    pub fn pressure(&self) -> u8 {
        self.pressure
    }

    /// Re-evaluates pressure from the observed p99. Called once per tick by
    /// the lockstep driver. Hysteresis: escalate when p99 exceeds the
    /// target (2× target for level 2), de-escalate only once p99 falls
    /// back under 3/4 of the threshold that raised the level.
    pub fn update(&mut self) -> u8 {
        let p99 = self.observed_p99();
        let target = self.config.target_p99_wait_ticks.max(1);
        let level2 = target.saturating_mul(2);
        self.pressure = match self.pressure {
            0 => {
                if p99 > level2 {
                    2
                } else if p99 > target {
                    1
                } else {
                    0
                }
            }
            1 => {
                if p99 > level2 {
                    2
                } else if p99 <= target * 3 / 4 {
                    0
                } else {
                    1
                }
            }
            _ => {
                if p99 <= level2 * 3 / 4 {
                    if p99 > target {
                        1
                    } else {
                        0
                    }
                } else {
                    2
                }
            }
        };
        semrec_obs::gauge("serve.slo.pressure").set(self.pressure as f64);
        semrec_obs::gauge("serve.slo.observed_p99_ticks").set(p99 as f64);
        self.pressure
    }

    /// Whether the current pressure level sheds `class` pre-compute. The
    /// hard per-class deadline is enforced separately by the server;
    /// pressure shedding only ever claims `Low` and `Normal`.
    pub fn should_shed(&self, class: Priority) -> bool {
        match class {
            Priority::High => false,
            Priority::Normal => self.pressure >= 2,
            Priority::Low => self.pressure >= 1,
        }
    }
}

/// Autoscaler configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScalerConfig {
    /// Lower bound on active workers.
    pub min_workers: usize,
    /// Upper bound on active workers.
    pub max_workers: usize,
    /// Queue depth per active worker above which the pool scales up.
    pub high_water: usize,
    /// Queue depth per active worker below which the pool scales down.
    pub low_water: usize,
    /// Ticks a watermark must hold before a scale event fires.
    pub dwell_ticks: u64,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig { min_workers: 1, max_workers: 8, high_water: 16, low_water: 2, dwell_ticks: 4 }
    }
}

/// A hysteretic queue-depth autoscaler for the lockstep drain width.
///
/// "Workers" here is the number of compute lanes
/// [`Server::drain_step`](crate::server::Server::drain_step) may use this
/// tick — the scaler decides *width*, the drain step decides *how* to
/// split work across it deterministically.
#[derive(Debug)]
pub struct WorkerScaler {
    config: ScalerConfig,
    active: usize,
    /// Consecutive ticks the high (positive) / low (negative) watermark
    /// condition has held.
    streak: i64,
    scale_events: u64,
}

impl WorkerScaler {
    /// A scaler starting at `config.min_workers`.
    ///
    /// # Panics
    /// Panics if `min_workers == 0` or `max_workers < min_workers`.
    pub fn new(config: ScalerConfig) -> Self {
        assert!(config.min_workers > 0, "min_workers must be at least 1");
        assert!(config.max_workers >= config.min_workers, "max_workers must be >= min_workers");
        let scaler =
            WorkerScaler { config, active: config.min_workers, streak: 0, scale_events: 0 };
        semrec_obs::gauge("serve.workers.active").set(scaler.active as f64);
        scaler
    }

    /// Currently active worker count.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Scale events fired so far (up or down).
    pub fn scale_events(&self) -> u64 {
        self.scale_events
    }

    /// Observes the queue depth for this tick and returns the worker count
    /// to drain with. Scaling is multiplicative up (doubling, clamped) and
    /// single-step down, each gated behind `dwell_ticks` consecutive
    /// observations so one bursty tick cannot flap the pool.
    pub fn observe(&mut self, queue_depth: usize) -> usize {
        let per_worker = queue_depth / self.active.max(1);
        if per_worker >= self.config.high_water && self.active < self.config.max_workers {
            self.streak = if self.streak >= 0 { self.streak + 1 } else { 1 };
            if self.streak as u64 >= self.config.dwell_ticks {
                self.active = (self.active * 2).min(self.config.max_workers);
                self.streak = 0;
                self.record_scale_event();
            }
        } else if per_worker <= self.config.low_water && self.active > self.config.min_workers {
            self.streak = if self.streak <= 0 { self.streak - 1 } else { -1 };
            if (-self.streak) as u64 >= self.config.dwell_ticks {
                self.active -= 1;
                self.streak = 0;
                self.record_scale_event();
            }
        } else {
            self.streak = 0;
        }
        self.active
    }

    fn record_scale_event(&mut self) {
        self.scale_events += 1;
        semrec_obs::counter("serve.workers.scale_events").inc();
        semrec_obs::gauge("serve.workers.active").set(self.active as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_is_exact_over_the_window() {
        let mut slo = SloController::new(SloConfig { window: 100, ..SloConfig::default() });
        for w in 1..=100u64 {
            slo.record_wait(w);
        }
        assert_eq!(slo.observed_p99(), 99);
        // The window slides: 100 more observations of 7 push the tail out.
        for _ in 0..100 {
            slo.record_wait(7);
        }
        assert_eq!(slo.observed_p99(), 7);
    }

    #[test]
    fn pressure_escalates_and_releases_with_hysteresis() {
        let mut slo = SloController::new(SloConfig {
            target_p99_wait_ticks: 10,
            window: 8,
            ..SloConfig::default()
        });
        assert_eq!(slo.update(), 0, "empty window is healthy");
        for _ in 0..8 {
            slo.record_wait(15);
        }
        assert_eq!(slo.update(), 1, "p99 over target raises level 1");
        assert!(slo.should_shed(Priority::Low));
        assert!(!slo.should_shed(Priority::Normal));
        for _ in 0..8 {
            slo.record_wait(25);
        }
        assert_eq!(slo.update(), 2, "p99 over 2x target raises level 2");
        assert!(slo.should_shed(Priority::Normal));
        assert!(!slo.should_shed(Priority::High), "High is never pressure-shed");
        // Falling to just under the level-2 threshold is not enough …
        for _ in 0..8 {
            slo.record_wait(18);
        }
        assert_eq!(slo.update(), 2, "inside the hysteresis band the level holds");
        // … but dropping under 3/4 of it de-escalates, and a healthy p99
        // releases fully.
        for _ in 0..8 {
            slo.record_wait(12);
        }
        assert_eq!(slo.update(), 1);
        for _ in 0..8 {
            slo.record_wait(3);
        }
        assert_eq!(slo.update(), 0);
        assert!(!slo.should_shed(Priority::Low));
    }

    #[test]
    fn deadline_budgets_come_from_config() {
        let slo = SloController::new(SloConfig::default());
        assert!(slo.deadline_budget(Priority::High) < slo.deadline_budget(Priority::Normal));
        assert!(slo.deadline_budget(Priority::Normal) < slo.deadline_budget(Priority::Low));
    }

    #[test]
    fn scaler_doubles_up_after_dwell_and_steps_down() {
        let config = ScalerConfig {
            min_workers: 1,
            max_workers: 8,
            high_water: 10,
            low_water: 2,
            dwell_ticks: 3,
        };
        let mut scaler = WorkerScaler::new(config);
        // Two hot ticks are not enough; the third fires the doubling.
        assert_eq!(scaler.observe(50), 1);
        assert_eq!(scaler.observe(50), 1);
        assert_eq!(scaler.observe(50), 2);
        assert_eq!(scaler.scale_events(), 1);
        // Still hot per-worker (25 >= 10): dwell restarts, doubles again.
        for _ in 0..2 {
            scaler.observe(50);
        }
        assert_eq!(scaler.observe(50), 4);
        // Cold: steps down one at a time after its own dwell.
        for _ in 0..2 {
            scaler.observe(0);
        }
        assert_eq!(scaler.observe(0), 3);
        assert!(scaler.scale_events() >= 3);
    }

    #[test]
    fn scaler_respects_bounds_and_resets_streak_in_the_band() {
        let config = ScalerConfig {
            min_workers: 2,
            max_workers: 4,
            high_water: 10,
            low_water: 1,
            dwell_ticks: 2,
        };
        let mut scaler = WorkerScaler::new(config);
        assert_eq!(scaler.active(), 2);
        for _ in 0..20 {
            scaler.observe(1000);
        }
        assert_eq!(scaler.active(), 4, "clamped at max_workers");
        // Mid-band observation breaks a cold streak.
        scaler.observe(0);
        scaler.observe(5 * 4); // per-worker 5: between low 1 and high 10
        scaler.observe(0);
        assert_eq!(scaler.active(), 4, "streak was reset by the in-band tick");
        for _ in 0..20 {
            scaler.observe(0);
        }
        assert_eq!(scaler.active(), 2, "clamped at min_workers");
    }
}
