//! A bounded MPMC queue with admission control.
//!
//! The queue is the server's overload valve: [`BoundedQueue::push`] refuses
//! (instead of blocking) once the configured depth is reached, so producers
//! get a typed rejection immediately and the queue can never grow without
//! bound. Consumers drain in micro-batches — one lock acquisition hands a
//! worker up to `max` requests, which is what makes per-batch snapshot
//! pinning cheap.
//!
//! Mutex + Condvar, std-only by design (see the vendored-deps note in the
//! workspace manifest).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushRefused {
    /// The queue was at capacity (admission control).
    Full {
        /// Depth observed at refusal.
        depth: usize,
        /// The configured capacity the depth ran into — without it, a shed
        /// diagnostic can't tell "tiny queue" from "huge backlog".
        capacity: usize,
    },
    /// The queue was closed.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An open queue admitting at most `capacity` queued items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a queue that admits nothing deadlocks
    /// every producer.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under the lock only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, or refuses without blocking. On success returns the
    /// depth *after* the push.
    pub fn push(&self, item: T) -> Result<usize, (T, PushRefused)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, PushRefused::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((
                item,
                PushRefused::Full { depth: inner.items.len(), capacity: self.capacity },
            ));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one item is queued (or the queue is closed),
    /// then removes and returns up to `max` items in FIFO order. An empty
    /// vector means the queue is closed *and* fully drained — the consumer
    /// should exit.
    pub fn drain(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let take = max.min(inner.items.len());
                let batch: Vec<T> = inner.items.drain(..take).collect();
                if !inner.items.is_empty() {
                    // Leftovers: wake a sibling worker rather than leaving
                    // them for our next lap.
                    self.not_empty.notify_one();
                }
                return batch;
            }
            if inner.closed {
                return Vec::new();
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes are refused, and once drained every
    /// blocked consumer wakes with an empty batch. Items already queued are
    /// still handed out — close-then-drain is the graceful shutdown path.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything queued right now, without blocking.
    /// Used at shutdown to fail leftover requests explicitly instead of
    /// silently dropping their response channels.
    pub fn take_all(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_past_capacity_is_refused_with_depth() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.push(1), Ok(1));
        assert_eq!(queue.push(2), Ok(2));
        match queue.push(3) {
            Err((item, PushRefused::Full { depth, capacity })) => {
                assert_eq!(item, 3);
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining frees a slot.
        assert_eq!(queue.drain(1), vec![1]);
        assert_eq!(queue.push(3), Ok(2));
    }

    #[test]
    fn drain_is_fifo_and_batched() {
        let queue = BoundedQueue::new(8);
        for i in 0..5 {
            queue.push(i).unwrap();
        }
        assert_eq!(queue.drain(3), vec![0, 1, 2]);
        assert_eq!(queue.drain(3), vec![3, 4]);
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains_leftovers() {
        let queue = BoundedQueue::new(4);
        queue.push(1).unwrap();
        queue.close();
        assert!(matches!(queue.push(2), Err((2, PushRefused::Closed))));
        assert_eq!(queue.drain(4), vec![1]);
        assert_eq!(queue.drain(4), Vec::<i32>::new(), "closed + empty ends the consumer");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let queue = Arc::new(BoundedQueue::<i32>::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.drain(4))
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.close();
        assert_eq!(consumer.join().unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let queue = Arc::new(BoundedQueue::<u64>::new(64));
        let produced = 4 * 500u64;
        let mut consumed = Vec::new();
        std::thread::scope(|scope| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let batch = queue.drain(7);
                            if batch.is_empty() {
                                return got;
                            }
                            got.extend(batch);
                        }
                    })
                })
                .collect();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let queue = Arc::clone(&queue);
                    scope.spawn(move || {
                        for i in 0..500u64 {
                            let mut item = p * 1000 + i;
                            // Retry on Full: this test checks conservation,
                            // not admission control.
                            loop {
                                match queue.push(item) {
                                    Ok(_) => break,
                                    Err((back, PushRefused::Full { .. })) => {
                                        item = back;
                                        std::thread::yield_now();
                                    }
                                    Err((_, PushRefused::Closed)) => panic!("closed early"),
                                }
                            }
                        }
                    })
                })
                .collect();
            for producer in producers {
                producer.join().unwrap();
            }
            queue.close();
            for consumer in consumers {
                consumed.extend(consumer.join().unwrap());
            }
        });
        consumed.sort_unstable();
        assert_eq!(consumed.len() as u64, produced);
        consumed.dedup();
        assert_eq!(consumed.len() as u64, produced, "no item may be duplicated");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
