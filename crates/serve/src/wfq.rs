//! A bounded weighted-fair queue over priority classes.
//!
//! The classed generalization of [`BoundedQueue`](crate::queue::BoundedQueue):
//! one FIFO lane per [`Priority`], a shared capacity across lanes, and a
//! deficit-round-robin dequeue that hands each class a service share
//! proportional to its weight whenever it is backlogged. Dequeue order is a
//! pure function of the push sequence — no wall time, no randomness — so a
//! serving schedule built on it is reproducible.
//!
//! Two deliberate asymmetries:
//!
//! * **Within a credit round, classes are served in strict-priority
//!   order** (`High` before `Normal` before `Low`), so urgency shapes
//!   *latency* while the credits shape *throughput share*: a backlogged
//!   class can never be starved beyond its weight bound (see the
//!   no-starvation proptest), but the urgent class always goes first
//!   inside the round.
//! * **At capacity, a higher-class push may displace the newest queued
//!   request of a strictly lower class** instead of being refused — the
//!   victim is handed back to the caller to shed with a typed error, so
//!   nothing silently disappears.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::class::Priority;
use crate::queue::PushRefused;

/// Outcome of a successful [`WeightedFairQueue::push`].
#[derive(Debug)]
pub struct Admitted<T> {
    /// Total queued depth after the push.
    pub depth: usize,
    /// A lower-class item evicted to make room, if the queue was at
    /// capacity. The caller owns shedding it (typed error, counters).
    pub displaced: Option<(Priority, T)>,
}

#[derive(Debug)]
struct Inner<T> {
    lanes: [VecDeque<T>; Priority::COUNT],
    credits: [u32; Priority::COUNT],
    closed: bool,
}

impl<T> Inner<T> {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// A bounded multi-producer / multi-consumer queue with per-class lanes and
/// weighted-fair (deficit round-robin) dequeue.
#[derive(Debug)]
pub struct WeightedFairQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    weights: [u32; Priority::COUNT],
}

impl<T> WeightedFairQueue<T> {
    /// An open queue with shared `capacity` and the default 4/2/1 weights.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        WeightedFairQueue::with_weights(capacity, Priority::DEFAULT_WEIGHTS)
    }

    /// An open queue with caller-chosen per-class weights (each ≥ 1, so no
    /// class can be configured into total starvation).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or any weight is 0.
    pub fn with_weights(capacity: usize, weights: [u32; Priority::COUNT]) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        assert!(weights.iter().all(|&w| w > 0), "every class weight must be at least 1");
        WeightedFairQueue {
            inner: Mutex::new(Inner {
                lanes: Default::default(),
                // Start mid-round with a full allowance, refilled on
                // exhaustion; starting empty would only add a refill.
                credits: weights,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            weights,
        }
    }

    /// The shared capacity across all lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-class service weights, aligned with [`Priority::ALL`].
    pub fn weights(&self) -> [u32; Priority::COUNT] {
        self.weights
    }

    /// Total queued depth (racy by nature; exact under the lock only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().depth()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued depth per class, aligned with [`Priority::ALL`].
    pub fn class_depths(&self) -> [usize; Priority::COUNT] {
        let inner = self.inner.lock().unwrap();
        let mut depths = [0; Priority::COUNT];
        for (lane, depth) in inner.lanes.iter().zip(&mut depths) {
            *depth = lane.len();
        }
        depths
    }

    /// Admits `item` into `class`'s lane. At capacity, displaces the newest
    /// queued item of the *lowest* backlogged class strictly below `class`
    /// (it would have been served last anyway) and hands the victim back;
    /// with no lower class to displace, refuses with
    /// [`PushRefused::Full`].
    pub fn push(&self, class: Priority, item: T) -> Result<Admitted<T>, (T, PushRefused)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, PushRefused::Closed));
        }
        let depth = inner.depth();
        let mut displaced = None;
        if depth >= self.capacity {
            // Scan strictly-lower classes from the bottom up.
            let victim_lane = Priority::ALL[class.index() + 1..]
                .iter()
                .rev()
                .find(|victim| !inner.lanes[victim.index()].is_empty())
                .copied();
            match victim_lane {
                Some(victim) => {
                    let item = inner.lanes[victim.index()].pop_back().expect("non-empty lane");
                    displaced = Some((victim, item));
                }
                None => {
                    return Err((item, PushRefused::Full { depth, capacity: self.capacity }));
                }
            }
        }
        inner.lanes[class.index()].push_back(item);
        let depth = inner.depth();
        drop(inner);
        self.not_empty.notify_one();
        Ok(Admitted { depth, displaced })
    }

    /// Removes the next item in deficit-round-robin order. Must hold the
    /// lock; `None` iff every lane is empty.
    fn pop_locked(&self, inner: &mut Inner<T>) -> Option<(Priority, T)> {
        loop {
            let mut backlogged = false;
            for class in Priority::ALL {
                let lane = class.index();
                if inner.lanes[lane].is_empty() {
                    continue;
                }
                backlogged = true;
                if inner.credits[lane] > 0 {
                    inner.credits[lane] -= 1;
                    let item = inner.lanes[lane].pop_front().expect("checked non-empty");
                    return Some((class, item));
                }
            }
            if !backlogged {
                return None;
            }
            // Every backlogged class exhausted its round: refill.
            inner.credits = self.weights;
        }
    }

    /// Blocks until at least one item is queued (or the queue is closed),
    /// then removes up to `max` items in weighted-fair order. An empty
    /// vector means closed *and* drained — the consumer should exit.
    pub fn drain(&self, max: usize) -> Vec<(Priority, T)> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.depth() > 0 {
                let mut batch = Vec::with_capacity(max.min(inner.depth()));
                while batch.len() < max {
                    match self.pop_locked(&mut inner) {
                        Some(item) => batch.push(item),
                        None => break,
                    }
                }
                if inner.depth() > 0 {
                    self.not_empty.notify_one();
                }
                return batch;
            }
            if inner.closed {
                return Vec::new();
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Removes up to `max` items in weighted-fair order without blocking —
    /// the lockstep serving path, where the caller *is* the schedule.
    pub fn try_drain(&self, max: usize) -> Vec<(Priority, T)> {
        let mut inner = self.inner.lock().unwrap();
        let mut batch = Vec::new();
        while batch.len() < max {
            match self.pop_locked(&mut inner) {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        batch
    }

    /// Closes the queue: future pushes are refused, and once drained every
    /// blocked consumer wakes with an empty batch.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything queued right now (weighted-fair
    /// order), without blocking. Shutdown uses this to answer leftovers.
    pub fn take_all(&self) -> Vec<(Priority, T)> {
        let mut inner = self.inner.lock().unwrap();
        let mut all = Vec::with_capacity(inner.depth());
        while let Some(item) = self.pop_locked(&mut inner) {
            all.push(item);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained_classes(queue: &WeightedFairQueue<u32>, max: usize) -> Vec<Priority> {
        queue.try_drain(max).into_iter().map(|(class, _)| class).collect()
    }

    #[test]
    fn drr_shares_service_by_weight() {
        // 4/2/1 weights, everything backlogged: one full round serves
        // H,H,H,H,N,N,L — high first within the round, but never more than
        // its credit allowance.
        let queue = WeightedFairQueue::new(64);
        for i in 0..8u32 {
            queue.push(Priority::High, i).unwrap();
            queue.push(Priority::Normal, 100 + i).unwrap();
            queue.push(Priority::Low, 200 + i).unwrap();
        }
        let order = drained_classes(&queue, 7);
        assert_eq!(
            order,
            vec![
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Normal,
                Priority::Low,
            ]
        );
        // The next round repeats the pattern.
        assert_eq!(drained_classes(&queue, 7)[0], Priority::High);
    }

    #[test]
    fn fifo_within_a_class() {
        let queue = WeightedFairQueue::new(16);
        for i in 0..4u32 {
            queue.push(Priority::Normal, i).unwrap();
        }
        let items: Vec<u32> = queue.try_drain(8).into_iter().map(|(_, v)| v).collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_lanes_do_not_stall_the_round() {
        let queue = WeightedFairQueue::new(16);
        for i in 0..6u32 {
            queue.push(Priority::Low, i).unwrap();
        }
        // Only Low is backlogged: it gets every slot despite weight 1.
        assert_eq!(queue.try_drain(6).len(), 6);
    }

    #[test]
    fn displacement_evicts_the_newest_lowest_item() {
        let queue = WeightedFairQueue::new(3);
        queue.push(Priority::Low, 1u32).unwrap();
        queue.push(Priority::Low, 2).unwrap();
        queue.push(Priority::Normal, 3).unwrap();
        // Full. A High push displaces Low's newest (2), not its oldest.
        let admitted = queue.push(Priority::High, 4).unwrap();
        assert_eq!(admitted.depth, 3);
        let (victim_class, victim) = admitted.displaced.expect("must displace");
        assert_eq!(victim_class, Priority::Low);
        assert_eq!(victim, 2);
        // A Low push at capacity cannot displace anyone.
        match queue.push(Priority::Low, 5) {
            Err((5, PushRefused::Full { depth, capacity })) => {
                assert_eq!(depth, 3);
                assert_eq!(capacity, 3);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Normal can displace Low but not Normal.
        let admitted = queue.push(Priority::Normal, 6).unwrap();
        assert_eq!(admitted.displaced.expect("displaces remaining Low").1, 1);
        match queue.push(Priority::Normal, 7) {
            Err((7, PushRefused::Full { .. })) => {}
            other => panic!("no lower class left, expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_then_drain_hands_out_leftovers_then_empties() {
        let queue = WeightedFairQueue::new(8);
        queue.push(Priority::High, 1u32).unwrap();
        queue.push(Priority::Low, 2).unwrap();
        queue.close();
        assert!(matches!(queue.push(Priority::High, 3), Err((3, PushRefused::Closed))));
        assert_eq!(queue.drain(8).len(), 2);
        assert!(queue.drain(8).is_empty(), "closed + empty ends the consumer");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let queue = std::sync::Arc::new(WeightedFairQueue::<u32>::new(4));
        let consumer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.drain(4))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    fn class_depths_track_lanes() {
        let queue = WeightedFairQueue::new(8);
        queue.push(Priority::High, 1u32).unwrap();
        queue.push(Priority::Low, 2).unwrap();
        queue.push(Priority::Low, 3).unwrap();
        assert_eq!(queue.class_depths(), [1, 0, 2]);
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.take_all().len(), 3);
        assert!(queue.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = WeightedFairQueue::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_is_rejected() {
        let _ = WeightedFairQueue::<u32>::with_weights(4, [4, 0, 1]);
    }
}
