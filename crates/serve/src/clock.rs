//! The virtual tick clock.
//!
//! Deadlines and batch windows are keyed to *virtual ticks*, not wall time,
//! for the same reason the fault-injection layer counts latency in ticks:
//! determinism. A test (or the load generator) advances the clock
//! explicitly, so "this request went stale in the queue" is a reproducible
//! fact of the schedule, not a race against the wall clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock, shared by reference.
#[derive(Debug, Default)]
pub struct TickClock {
    now: AtomicU64,
}

impl TickClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        TickClock::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock by `ticks`, returning the new time.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.now.fetch_add(ticks, Ordering::AcqRel) + ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = TickClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(3), 3);
        assert_eq!(clock.advance(1), 4);
        assert_eq!(clock.now(), 4);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let clock = TickClock::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        clock.advance(1);
                    }
                });
            }
        });
        assert_eq!(clock.now(), 4000);
    }
}
