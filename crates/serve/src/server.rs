//! The serving core: a classed, weighted-fair request queue with two drain
//! modes — a free-running worker pool, and a lockstep [`Server::drain_step`]
//! for deterministic SLO-controlled serving.
//!
//! Life of a request:
//!
//! 1. **Admission** — [`Server::submit_classed`] pushes onto the
//!    [`WeightedFairQueue`]. At capacity the push either displaces the
//!    newest strictly-lower-class queued request (the victim resolves with
//!    [`ServeError::Overloaded`]) or is itself refused the same way
//!    (load-shedding, counted as `serve.requests.shed.admission`).
//! 2. **Batching** — a drain hands out up to `batch_size` requests in
//!    deficit-round-robin order and pins the current [`ModelSnapshot`] once
//!    for the whole batch, so every request in a batch is answered from a
//!    single consistent generation.
//! 3. **Deadline check** — a request whose deadline (explicit, or derived
//!    from its class's SLO budget) passed while it queued is shed
//!    (`serve.requests.shed.deadline`) rather than served late. Under SLO
//!    pressure, `Low` and then `Normal` requests are shed pre-compute while
//!    `High` only ever misses its own hard deadline.
//! 4. **Cache / compute** — the sharded LRU is consulted under the pinned
//!    epoch; a miss runs the full pipeline and populates the cache.
//!
//! ## Two drain modes
//!
//! `ServeConfig::workers > 0` starts the classic free-running pool:
//! convenient, but wall-clock scheduling makes cache and shed counters
//! depend on thread interleaving. `workers == 0` builds a *lockstep*
//! server: nothing drains until the harness calls [`Server::drain_step`],
//! which makes every decision (shed, cache, response order) sequentially
//! and parallelizes only the pure recommendation compute of deduplicated
//! cache misses — chunked by index so the result is byte-identical for any
//! `threads`. The open-loop load generator drives this mode one virtual
//! tick at a time.
//!
//! Snapshot swap ([`Server::publish`]) happens between batches from the
//! workers' point of view: requests already drained finish on the old
//! generation, later batches pin the new one, and nothing in flight is
//! lost. Shutdown is graceful: the queue closes, workers drain what is
//! left, and anything still queued when the pool has exited is answered
//! with [`ServeError::ShuttingDown`] instead of a dropped channel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use semrec_core::{AgentId, CoreError, Recommendation, Recommender, SwapPlan};

use crate::cache::{CacheStats, RecCache};
use crate::class::{PerClass, Priority};
use crate::clock::TickClock;
use crate::error::ServeError;
use crate::queue::PushRefused;
use crate::slo::SloController;
use crate::snapshot::{ModelSnapshot, SnapshotSwitch};
use crate::wfq::WeightedFairQueue;

/// Serving configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue. `0` builds a lockstep server:
    /// requests queue until [`Server::drain_step`] is called (also the
    /// accept-only mode admission and shutdown tests rely on).
    pub workers: usize,
    /// Maximum queued requests before admission control sheds.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains (and serves under one pinned
    /// snapshot) per batch.
    pub batch_size: usize,
    /// Total recommendation-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (each with its own lock).
    pub cache_shards: usize,
    /// Weighted-fair service weights per class, aligned with
    /// [`Priority::ALL`] (length = [`Priority::COUNT`]).
    pub class_weights: [u32; 3],
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            batch_size: 8,
            cache_capacity: 4096,
            cache_shards: 8,
            class_weights: Priority::DEFAULT_WEIGHTS,
        }
    }
}

/// Outcome of a [`Server::publish_delta`] swap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishReport {
    /// The epoch the new generation was installed as.
    pub epoch: u64,
    /// Cache entries carried across the swap (re-keyed, still answering).
    pub carried: usize,
    /// Cache entries dropped (dirty, or stale generations).
    pub invalidated: usize,
    /// Whether the plan forced wholesale invalidation.
    pub wholesale: bool,
}

/// A successfully served request.
#[derive(Clone, Debug, PartialEq)]
pub struct ServedResponse {
    /// The recommendation list (shared with the cache — cheap to clone).
    pub recommendations: Arc<Vec<Recommendation>>,
    /// The snapshot generation that answered.
    pub epoch: u64,
    /// Whether the answer came from the cache.
    pub cache_hit: bool,
    /// The request's priority class.
    pub class: Priority,
    /// True when the answering snapshot was built from degraded source
    /// data (crawl losses, parse failures — see `SourceHealth`), so the
    /// caller can caption the explanation accordingly.
    pub degraded: bool,
}

/// What a request resolves to.
pub type ServeResult = Result<ServedResponse, ServeError>;

/// A pending response: block on [`Ticket::wait`] or poll [`Ticket::try_wait`].
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// Blocks until the request resolves. Returns
    /// [`ServeError::Disconnected`] only if a worker panicked mid-request.
    pub fn wait(self) -> ServeResult {
        self.receiver.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `Some` once the request has resolved. The
    /// lockstep harness polls tickets between ticks instead of blocking.
    pub fn try_wait(&self) -> Option<ServeResult> {
        match self.receiver.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// One queued request.
#[derive(Debug)]
struct Request {
    agent: AgentId,
    n: usize,
    class: Priority,
    /// Virtual tick the request was admitted at (queue-wait accounting).
    submitted_at: u64,
    /// Explicit virtual-tick start-by deadline, if any. When absent, the
    /// lockstep path derives one from the class's SLO budget.
    deadline: Option<u64>,
    responder: mpsc::Sender<ServeResult>,
}

/// Per-class slice of the request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests of this class admitted into the queue.
    pub submitted: u64,
    /// Requests of this class answered with a recommendation list.
    pub served: u64,
    /// Requests of this class shed (admission, displacement or deadline).
    pub shed: u64,
}

/// Cumulative per-server request counters (survive registry resets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with a recommendation list.
    pub served: u64,
    /// Requests refused at admission (queue full) or displaced by a
    /// higher-class arrival.
    pub shed_admission: u64,
    /// Requests dropped at dequeue because their deadline passed (hard
    /// deadline misses and SLO pressure sheds).
    pub shed_deadline: u64,
    /// Requests that reached the engine and got an engine error back.
    pub failed: u64,
    /// The same counters sliced per priority class.
    pub class: PerClass<ClassStats>,
}

impl ServeStats {
    /// Total load shed, whatever the mechanism.
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_deadline
    }

    /// Every request that was resolved one way or another.
    pub fn resolved(&self) -> u64 {
        self.served + self.shed() + self.failed
    }
}

#[derive(Debug, Default)]
struct StatCells {
    submitted: AtomicU64,
    served: AtomicU64,
    shed_admission: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
    class_submitted: [AtomicU64; Priority::COUNT],
    class_served: [AtomicU64; Priority::COUNT],
    class_shed: [AtomicU64; Priority::COUNT],
}

/// Handle to the `serve.class.{label}.{event}` counter.
fn class_counter(class: Priority, event: &str) -> semrec_obs::Counter {
    semrec_obs::counter(&format!("serve.class.{}.{event}", class.label()))
}

/// State shared between the server handle and its workers.
struct Shared {
    queue: WeightedFairQueue<Request>,
    switch: SnapshotSwitch,
    cache: RecCache,
    clock: TickClock,
    batch_size: usize,
    stats: StatCells,
}

impl Shared {
    fn count_served(&self, class: Priority) {
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats.class_served[class.index()].fetch_add(1, Ordering::Relaxed);
        semrec_obs::counter("serve.requests.served").inc();
        class_counter(class, "served").inc();
    }

    fn count_shed_deadline(&self, class: Priority) {
        self.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
        self.stats.class_shed[class.index()].fetch_add(1, Ordering::Relaxed);
        semrec_obs::counter("serve.requests.shed").inc();
        semrec_obs::counter("serve.requests.shed.deadline").inc();
        semrec_obs::counter("serve.slo.violations").inc();
        class_counter(class, "shed").inc();
    }

    fn count_shed_admission(&self, class: Priority) {
        self.stats.shed_admission.fetch_add(1, Ordering::Relaxed);
        self.stats.class_shed[class.index()].fetch_add(1, Ordering::Relaxed);
        semrec_obs::counter("serve.requests.shed").inc();
        semrec_obs::counter("serve.requests.shed.admission").inc();
        class_counter(class, "shed").inc();
    }
}

/// Outcome of one lockstep [`Server::drain_step`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Requests taken off the queue this step.
    pub drained: usize,
    /// Requests answered with a recommendation list.
    pub served: usize,
    /// Requests shed at a hard deadline.
    pub shed_deadline: usize,
    /// Requests shed by SLO pressure (before their hard deadline).
    pub shed_pressure: usize,
    /// Requests that resolved with an engine error.
    pub failed: usize,
}

/// The in-process recommendation server.
///
/// Dropping the server shuts it down gracefully: the queue closes, workers
/// finish what is queued, and the pool is joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server fronting `engine` (installed as snapshot epoch 1).
    pub fn start(engine: Recommender, config: ServeConfig) -> Server {
        Server::start_at(engine, config, 1)
    }

    /// Starts a server fronting `engine` at a caller-chosen snapshot epoch
    /// — the warm-start path for an engine recovered from a durable
    /// checkpoint (see `semrec-store`), which resumes at the epoch the
    /// persisted model had reached instead of restarting at 1.
    pub fn start_at(engine: Recommender, config: ServeConfig, epoch: u64) -> Server {
        let shared = Arc::new(Shared {
            queue: WeightedFairQueue::with_weights(config.queue_capacity, config.class_weights),
            switch: SnapshotSwitch::new_at(engine, epoch),
            cache: RecCache::new(config.cache_capacity, config.cache_shards),
            clock: TickClock::new(),
            batch_size: config.batch_size.max(1),
            stats: StatCells::default(),
        });
        semrec_obs::gauge("serve.workers").set(config.workers as f64);
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("semrec-serve-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a [`Priority::Normal`] request with no deadline.
    pub fn submit(&self, agent: AgentId, n: usize) -> Result<Ticket, ServeError> {
        self.submit_classed(agent, n, Priority::Normal, None)
    }

    /// Submits a [`Priority::Normal`] request that must be *started* by
    /// virtual tick `deadline`.
    pub fn submit_with_deadline(
        &self,
        agent: AgentId,
        n: usize,
        deadline: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        self.submit_classed(agent, n, Priority::Normal, deadline)
    }

    /// Submits a request in `class`, optionally with an explicit start-by
    /// deadline (virtual ticks). Returns a [`Ticket`] on admission, or the
    /// typed shed error immediately. At capacity a higher-class request may
    /// displace the newest queued strictly-lower-class request — the victim
    /// resolves with [`ServeError::Overloaded`] and the newcomer is
    /// admitted in its place.
    pub fn submit_classed(
        &self,
        agent: AgentId,
        n: usize,
        class: Priority,
        deadline: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let (sender, receiver) = mpsc::channel();
        let request = Request {
            agent,
            n,
            class,
            submitted_at: self.shared.clock.now(),
            deadline,
            responder: sender,
        };
        match self.shared.queue.push(class, request) {
            Ok(admitted) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.stats.class_submitted[class.index()].fetch_add(1, Ordering::Relaxed);
                semrec_obs::counter("serve.requests.submitted").inc();
                class_counter(class, "submitted").inc();
                semrec_obs::gauge("serve.queue.depth").set(admitted.depth as f64);
                if let Some((victim_class, victim)) = admitted.displaced {
                    self.shared.count_shed_admission(victim_class);
                    semrec_obs::counter("serve.requests.displaced").inc();
                    let _ = victim.responder.send(Err(ServeError::Overloaded {
                        depth: self.shared.queue.capacity(),
                        capacity: self.shared.queue.capacity(),
                        class: victim_class,
                    }));
                }
                Ok(Ticket { receiver })
            }
            Err((_, PushRefused::Full { depth, capacity })) => {
                self.shared.count_shed_admission(class);
                Err(ServeError::Overloaded { depth, capacity, class })
            }
            Err((_, PushRefused::Closed)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Atomically installs `engine` as the next model generation and
    /// invalidates cache entries of older generations. In-flight batches
    /// finish on the generation they pinned; returns the new epoch.
    pub fn publish(&self, engine: Recommender) -> u64 {
        let epoch = self.shared.switch.publish(engine);
        self.shared.cache.invalidate_before(epoch);
        epoch
    }

    /// Delta-aware publish: installs `engine` and, instead of dropping the
    /// whole cache, carries the previous generation's entries for agents
    /// the [`SwapPlan`] proves clean across the swap. A wholesale plan
    /// (membership change, or dirty fraction past the threshold) degrades
    /// to exactly [`Server::publish`] semantics.
    ///
    /// The caller must have computed `plan` for precisely this transition
    /// (the engine currently installed → `engine`); the serving invariant —
    /// a cached answer is only served if byte-identical to an engine
    /// recompute on the live snapshot — then holds because a carried
    /// agent's recommendations are unchanged by construction and the id
    /// mapping is stable whenever the plan allows carrying at all.
    pub fn publish_delta(&self, engine: Recommender, plan: &SwapPlan) -> PublishReport {
        let epoch = self.shared.switch.publish(engine);
        if plan.wholesale() {
            let invalidated = self.shared.cache.invalidate_before(epoch);
            return PublishReport { epoch, carried: 0, invalidated, wholesale: true };
        }
        let (carried, invalidated) =
            self.shared.cache.carry_into(epoch, &|agent| plan.carryable(agent));
        PublishReport { epoch, carried, invalidated, wholesale: false }
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.switch.epoch()
    }

    /// The virtual clock deadlines are checked against. The server never
    /// advances it on its own — the load generator (or test) drives time.
    pub fn clock(&self) -> &TickClock {
        &self.shared.clock
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Current queue depth per class, aligned with [`Priority::ALL`].
    pub fn class_depths(&self) -> [usize; Priority::COUNT] {
        self.shared.queue.class_depths()
    }

    /// Per-server request counters.
    pub fn stats(&self) -> ServeStats {
        let cells = &self.shared.stats;
        let mut class = PerClass::<ClassStats>::default();
        for c in Priority::ALL {
            let i = c.index();
            *class.get_mut(c) = ClassStats {
                submitted: cells.class_submitted[i].load(Ordering::Relaxed),
                served: cells.class_served[i].load(Ordering::Relaxed),
                shed: cells.class_shed[i].load(Ordering::Relaxed),
            };
        }
        ServeStats {
            submitted: cells.submitted.load(Ordering::Relaxed),
            served: cells.served.load(Ordering::Relaxed),
            shed_admission: cells.shed_admission.load(Ordering::Relaxed),
            shed_deadline: cells.shed_deadline.load(Ordering::Relaxed),
            failed: cells.failed.load(Ordering::Relaxed),
            class,
        }
    }

    /// Per-server cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// One synchronous serving step for the lockstep (zero-worker) mode:
    /// pops requests in weighted-fair order until up to `max` of them
    /// *survive* shedding (dropping an expired request runs no compute, so
    /// it costs no serving slot), makes every shed/cache decision
    /// sequentially, and computes the deduplicated cache misses on up to
    /// `threads` scoped threads. The compute is pure and chunked by index,
    /// so counters and responses are byte-identical for any `threads`
    /// value.
    ///
    /// With an [`SloController`], requests without an explicit deadline get
    /// `submitted_at + class budget` as their hard deadline, served waits
    /// feed the controller's window, pressure is re-evaluated once per
    /// step, and pressure sheds claim `Low` then `Normal` pre-compute.
    ///
    /// # Panics
    /// Panics if the server was started with worker threads — mixing the
    /// two drain modes would race the queue.
    pub fn drain_step(
        &self,
        max: usize,
        threads: usize,
        mut slo: Option<&mut SloController>,
    ) -> DrainOutcome {
        assert!(
            self.workers.is_empty(),
            "drain_step requires a lockstep server (ServeConfig.workers == 0)"
        );
        let shared = &self.shared;
        let mut outcome = DrainOutcome::default();
        if let Some(slo) = slo.as_mut() {
            slo.update();
        }
        let now = shared.clock.now();
        let snapshot = shared.switch.pin();
        let degraded = snapshot.engine().source_health().is_degraded();
        let waits = semrec_obs::histogram_with_buckets("serve.wait.ticks", &semrec_obs::TICK_BUCKETS);

        /// What a drained request resolved to before compute.
        enum Pending {
            /// Already responded (shed).
            Done,
            /// Answered from cache.
            Hit(Arc<Vec<Recommendation>>),
            /// Waiting on the compute of unique miss `index`.
            Miss(usize),
        }

        let max = max.max(1);
        let mut requests = Vec::with_capacity(max);
        let mut pending = Vec::with_capacity(max);
        let mut unique: Vec<(u64, AgentId, usize)> = Vec::new();
        let mut survivors = 0usize;
        // `max` budgets *service*, not queue pops: shedding a dead request
        // runs no compute, so it must not burn a serving slot. Dropping the
        // expired head of a lane is exactly what converts queue backlog
        // into goodput for the live requests behind it.
        while survivors < max {
            let batch = shared.queue.try_drain(max - survivors);
            if batch.is_empty() {
                break;
            }
            outcome.drained += batch.len();
            for (class, request) in batch {
                let deadline = request.deadline.or_else(|| {
                    slo.as_ref().map(|slo| request.submitted_at + slo.deadline_budget(class))
                });
                if let Some(deadline) = deadline {
                    if now > deadline {
                        shared.count_shed_deadline(class);
                        outcome.shed_deadline += 1;
                        let _ = request
                            .responder
                            .send(Err(ServeError::DeadlineExceeded { deadline, now }));
                        requests.push(request);
                        pending.push(Pending::Done);
                        continue;
                    }
                }
                if slo.as_ref().is_some_and(|slo| slo.should_shed(class)) {
                    shared.count_shed_deadline(class);
                    semrec_obs::counter("serve.slo.pressure_sheds").inc();
                    outcome.shed_pressure += 1;
                    let _ = request.responder.send(Err(ServeError::DeadlineExceeded {
                        deadline: deadline.unwrap_or(now),
                        now,
                    }));
                    requests.push(request);
                    pending.push(Pending::Done);
                    continue;
                }
                // Survivor: its wait feeds the SLO window whether it turns
                // out to be a hit, a miss, or an engine error.
                survivors += 1;
                let wait = now.saturating_sub(request.submitted_at);
                waits.observe(wait as f64);
                if let Some(slo) = slo.as_mut() {
                    slo.record_wait(wait);
                }
                let key = (snapshot.epoch(), request.agent, request.n);
                if let Some(cached) = shared.cache.get(&key) {
                    pending.push(Pending::Hit(cached));
                } else {
                    let index = match unique.iter().position(|&u| u == key) {
                        Some(index) => index,
                        None => {
                            unique.push(key);
                            unique.len() - 1
                        }
                    };
                    pending.push(Pending::Miss(index));
                }
                requests.push(request);
            }
        }
        semrec_obs::gauge("serve.queue.depth").set(shared.queue.len() as f64);
        if requests.is_empty() {
            return outcome;
        }
        semrec_obs::histogram("serve.batch.size").observe(outcome.drained as f64);

        // Parallel pure compute of the unique misses. Chunked by index:
        // thread count changes who computes, never what or in which slot.
        let computed: Vec<Result<Arc<Vec<Recommendation>>, CoreError>> = if unique.is_empty() {
            Vec::new()
        } else {
            let lanes = threads.max(1).min(unique.len());
            let chunk = unique.len().div_ceil(lanes);
            let engine = snapshot.engine();
            let mut results: Vec<Option<Result<Arc<Vec<Recommendation>>, CoreError>>> =
                (0..unique.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = unique
                    .chunks(chunk)
                    .map(|keys| {
                        scope.spawn(move || {
                            keys.iter()
                                .map(|&(_, agent, n)| engine.recommend(agent, n).map(Arc::new))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut slot = 0;
                for handle in handles {
                    for result in handle.join().expect("drain_step compute lane") {
                        results[slot] = Some(result);
                        slot += 1;
                    }
                }
            });
            results.into_iter().map(|r| r.expect("every slot filled")).collect()
        };
        // Populate the cache in first-occurrence order, sequentially.
        for (key, result) in unique.iter().zip(&computed) {
            if let Ok(recommendations) = result {
                shared.cache.insert(*key, Arc::clone(recommendations));
            }
        }

        // Respond in drained (weighted-fair) order.
        for (request, state) in requests.into_iter().zip(pending) {
            let class = request.class;
            let (recommendations, cache_hit) = match state {
                Pending::Done => continue,
                Pending::Hit(cached) => (cached, true),
                Pending::Miss(index) => match &computed[index] {
                    Ok(recommendations) => (Arc::clone(recommendations), false),
                    Err(e) => {
                        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                        semrec_obs::counter("serve.requests.failed").inc();
                        outcome.failed += 1;
                        let _ = request.responder.send(Err(ServeError::Engine(e.clone())));
                        continue;
                    }
                },
            };
            shared.count_served(class);
            outcome.served += 1;
            let _ = request.responder.send(Ok(ServedResponse {
                recommendations,
                epoch: snapshot.epoch(),
                cache_hit,
                class,
                degraded,
            }));
        }
        outcome
    }

    /// Closes the queue, drains it, joins the workers, and returns the
    /// final counters. Requests still queued if the pool could not drain
    /// them (a zero-worker server) are answered `ShuttingDown`.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A zero-worker server (or a panicked pool) may leave requests
        // queued: answer them explicitly rather than dropping channels.
        for (_, request) in self.shared.queue.take_all() {
            let _ = request.responder.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A worker: drain a micro-batch, pin the current snapshot once, serve the
/// batch, repeat until the queue closes and empties.
fn worker_loop(shared: &Shared) {
    let batch_sizes = semrec_obs::histogram("serve.batch.size");
    loop {
        let batch = shared.queue.drain(shared.batch_size);
        if batch.is_empty() {
            return; // closed and drained
        }
        let _span = semrec_obs::span("serve.batch");
        batch_sizes.observe(batch.len() as f64);
        semrec_obs::gauge("serve.queue.depth").set(shared.queue.len() as f64);
        let snapshot = shared.switch.pin();
        for (_, request) in batch {
            serve_one(shared, &snapshot, request);
        }
    }
}

/// Serves one drained request against the batch's pinned snapshot.
fn serve_one(shared: &Shared, snapshot: &ModelSnapshot, request: Request) {
    let now = shared.clock.now();
    let class = request.class;
    if let Some(deadline) = request.deadline {
        if now > deadline {
            shared.count_shed_deadline(class);
            let _ = request.responder.send(Err(ServeError::DeadlineExceeded { deadline, now }));
            return;
        }
    }
    let degraded = snapshot.engine().source_health().is_degraded();
    let key = (snapshot.epoch(), request.agent, request.n);
    if let Some(cached) = shared.cache.get(&key) {
        shared.count_served(class);
        let _ = request.responder.send(Ok(ServedResponse {
            recommendations: cached,
            epoch: snapshot.epoch(),
            cache_hit: true,
            class,
            degraded,
        }));
        return;
    }
    match snapshot.engine().recommend(request.agent, request.n) {
        Ok(recommendations) => {
            let recommendations = Arc::new(recommendations);
            shared.cache.insert(key, Arc::clone(&recommendations));
            shared.count_served(class);
            let _ = request.responder.send(Ok(ServedResponse {
                recommendations,
                epoch: snapshot.epoch(),
                cache_hit: false,
                class,
                degraded,
            }));
        }
        Err(e) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            semrec_obs::counter("serve.requests.failed").inc();
            let _ = request.responder.send(Err(ServeError::Engine(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloConfig;
    use semrec_core::{Community, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    /// A ring community: every agent trusts the next and rates one product.
    fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> =
            (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        for i in 0..n {
            c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
            c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
        }
        (Recommender::new(c, RecommenderConfig::default()), agents)
    }

    fn config(workers: usize) -> ServeConfig {
        ServeConfig { workers, ..ServeConfig::default() }
    }

    #[test]
    fn serves_and_matches_the_direct_engine() {
        let (engine, agents) = ring(12);
        let server = Server::start(engine.clone(), config(2));
        for &agent in &agents {
            let response = server.submit(agent, 5).unwrap().wait().unwrap();
            assert_eq!(*response.recommendations, engine.recommend(agent, 5).unwrap());
            assert_eq!(response.epoch, 1);
            assert_eq!(response.class, Priority::Normal);
            assert!(!response.degraded);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.served, 12);
        assert_eq!(stats.class.normal.served, 12);
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let (engine, agents) = ring(6);
        let server = Server::start(engine, config(1));
        let first = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        let second = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(second.cache_hit);
        assert_eq!(*first.recommendations, *second.recommendations);
        let cache = server.cache_stats();
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn admission_control_sheds_with_a_typed_error() {
        let (engine, agents) = ring(6);
        // Zero workers: nothing drains, so the third push must be refused
        // deterministically.
        let server = Server::start(
            engine,
            ServeConfig { workers: 0, queue_capacity: 2, ..ServeConfig::default() },
        );
        let a = server.submit(agents[0], 5).unwrap();
        let b = server.submit(agents[1], 5).unwrap();
        match server.submit(agents[2], 5) {
            Err(ServeError::Overloaded { depth, capacity, class }) => {
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
                assert_eq!(class, Priority::Normal);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.shed_admission, 1);
        assert_eq!(stats.class.normal.shed, 1);
        // Shutdown answers the queued-but-never-served requests.
        let stats = server.shutdown();
        assert_eq!(stats.shed_admission, 1);
        assert_eq!(a.wait(), Err(ServeError::ShuttingDown));
        assert_eq!(b.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn high_class_displaces_the_newest_low_request() {
        let (engine, agents) = ring(6);
        let server = Server::start(
            engine,
            ServeConfig { workers: 0, queue_capacity: 2, ..ServeConfig::default() },
        );
        let _keep = server.submit_classed(agents[0], 5, Priority::Low, None).unwrap();
        let victim = server.submit_classed(agents[1], 5, Priority::Low, None).unwrap();
        let urgent = server.submit_classed(agents[2], 5, Priority::High, None).unwrap();
        // The victim resolved immediately with a typed admission shed.
        match victim.try_wait() {
            Some(Err(ServeError::Overloaded { depth, capacity, class })) => {
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
                assert_eq!(class, Priority::Low);
            }
            other => panic!("expected displaced Overloaded, got {other:?}"),
        }
        assert!(urgent.try_wait().is_none(), "the urgent request is queued");
        let stats = server.stats();
        assert_eq!(stats.shed_admission, 1);
        assert_eq!(stats.class.low.shed, 1);
        assert_eq!(stats.class.high.submitted, 1);
        assert_eq!(server.class_depths(), [1, 0, 1]);
    }

    #[test]
    fn stale_queued_requests_are_shed_at_dequeue() {
        let (engine, agents) = ring(6);
        let shared = Arc::new(Shared {
            queue: WeightedFairQueue::new(8),
            switch: SnapshotSwitch::new(engine.clone()),
            cache: RecCache::new(16, 2),
            clock: TickClock::new(),
            batch_size: 4,
            stats: StatCells::default(),
        });
        // Queue two requests with deadlines at tick 0 and tick 5, then
        // advance to tick 3 before any worker runs: exactly one is stale.
        let (tx1, rx1) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        shared
            .queue
            .push(
                Priority::Normal,
                Request {
                    agent: agents[0],
                    n: 5,
                    class: Priority::Normal,
                    submitted_at: 0,
                    deadline: Some(0),
                    responder: tx1,
                },
            )
            .unwrap();
        shared
            .queue
            .push(
                Priority::Normal,
                Request {
                    agent: agents[1],
                    n: 5,
                    class: Priority::Normal,
                    submitted_at: 0,
                    deadline: Some(5),
                    responder: tx2,
                },
            )
            .unwrap();
        shared.clock.advance(3);
        shared.queue.close();
        worker_loop(&shared);
        assert_eq!(
            rx1.recv().unwrap(),
            Err(ServeError::DeadlineExceeded { deadline: 0, now: 3 })
        );
        let ok = rx2.recv().unwrap().unwrap();
        assert_eq!(*ok.recommendations, engine.recommend(agents[1], 5).unwrap());
        assert_eq!(shared.stats.shed_deadline.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_step_serves_in_weighted_fair_order_with_slo_deadlines() {
        let (engine, agents) = ring(8);
        let server = Server::start(engine.clone(), config(0));
        let mut slo = SloController::new(SloConfig::default());
        let low = server.submit_classed(agents[0], 5, Priority::Low, None).unwrap();
        let high = server.submit_classed(agents[1], 5, Priority::High, None).unwrap();
        let outcome = server.drain_step(8, 2, Some(&mut slo));
        assert_eq!(outcome.drained, 2);
        assert_eq!(outcome.served, 2);
        let high = high.try_wait().expect("resolved").unwrap();
        assert_eq!(high.class, Priority::High);
        assert_eq!(*high.recommendations, engine.recommend(agents[1], 5).unwrap());
        assert!(low.try_wait().expect("resolved").is_ok());
        // A Low request older than its 32-tick budget is shed at dequeue.
        let stale = server.submit_classed(agents[2], 5, Priority::Low, None).unwrap();
        server.clock().advance(33);
        let outcome = server.drain_step(8, 1, Some(&mut slo));
        assert_eq!(outcome.shed_deadline, 1);
        assert!(matches!(
            stale.try_wait(),
            Some(Err(ServeError::DeadlineExceeded { deadline: 32, now: 33 }))
        ));
        server.shutdown();
    }

    #[test]
    fn drain_step_is_identical_across_thread_counts() {
        let (engine, agents) = ring(10);
        let mut baseline: Option<(DrainOutcome, Vec<ServeResult>)> = None;
        for threads in [1usize, 2, 8] {
            let server = Server::start(engine.clone(), config(0));
            let tickets: Vec<_> = (0..10)
                .map(|i| {
                    server
                        .submit_classed(agents[i % agents.len()], 5, Priority::ALL[i % 3], None)
                        .unwrap()
                })
                .collect();
            let outcome = server.drain_step(16, threads, None);
            let results: Vec<ServeResult> =
                tickets.iter().map(|t| t.try_wait().expect("resolved")).collect();
            match &baseline {
                None => baseline = Some((outcome, results)),
                Some((expected_outcome, expected)) => {
                    assert_eq!(outcome, *expected_outcome, "threads={threads}");
                    assert_eq!(results, *expected, "threads={threads}");
                }
            }
            server.shutdown();
        }
    }

    #[test]
    fn engine_errors_come_back_typed() {
        let (engine, _) = ring(4);
        let server = Server::start(engine, config(1));
        let bogus = AgentId::from_index(999);
        let result = server.submit(bogus, 5).unwrap().wait();
        assert!(matches!(result, Err(ServeError::Engine(_))), "{result:?}");
        assert_eq!(server.stats().failed, 1);
    }

    #[test]
    fn publish_swaps_epoch_and_invalidates_the_cache() {
        let (engine, agents) = ring(8);
        let server = Server::start(engine.clone(), config(2));
        let before = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert_eq!(before.epoch, 1);

        let (engine2, _) = ring(8);
        assert_eq!(server.publish(engine2.clone()), 2);
        let after = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert_eq!(after.epoch, 2);
        assert!(!after.cache_hit, "epoch 1 entries must not answer epoch 2");
        assert_eq!(*after.recommendations, engine2.recommend(agents[0], 5).unwrap());
        assert!(server.cache_stats().invalidated >= 1);
    }

    #[test]
    fn publish_delta_carries_clean_entries_across_the_swap() {
        use semrec_core::ModelDelta;

        // Large enough that the 6-hop reverse closure of one change stays
        // a minority (7 of 20 agents) and the plan is not wholesale.
        let (engine, agents) = ring(20);
        let server = Server::start(engine.clone(), config(1));
        // Warm the cache for every agent on epoch 1.
        for &agent in &agents {
            assert!(!server.submit(agent, 5).unwrap().wait().unwrap().cache_hit);
        }

        // Next generation: agent 3 re-rates one product.
        let mut next = engine.community().clone();
        let products: Vec<_> = next.catalog.iter().collect();
        next.set_rating(agents[3], products[1], -0.5).unwrap();
        let uri = next.agent(agents[3]).unwrap().uri.clone();
        let delta = ModelDelta { ratings_changed: vec![uri], trust_changed: Vec::new() };
        let plan = SwapPlan::compute(
            engine.community(),
            &next,
            &delta,
            engine.config().neighborhood.appleseed.max_range,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        let (engine2, _) = engine.advance(next, &delta, *engine.source_health());

        let report = server.publish_delta(engine2.clone(), &plan);
        assert_eq!(report.epoch, 2);
        assert!(!report.wholesale);
        assert!(report.carried > 0, "clean agents must carry: {report:?}");
        assert!(report.invalidated > 0, "dirty agents must drop: {report:?}");

        // The serving invariant: every answer — carried or recomputed — is
        // byte-identical to an engine recompute on the live snapshot.
        for &agent in &agents {
            let response = server.submit(agent, 5).unwrap().wait().unwrap();
            assert_eq!(response.epoch, 2);
            assert_eq!(
                *response.recommendations,
                engine2.recommend(agent, 5).unwrap(),
                "agent {agent:?} answer must match the live snapshot"
            );
            assert_eq!(
                response.cache_hit,
                plan.carryable(agent),
                "exactly the carried agents answer from cache"
            );
        }
        assert_eq!(server.cache_stats().carried, report.carried as u64);
        server.shutdown();
    }

    #[test]
    fn wholesale_plan_degrades_to_full_invalidation() {
        use semrec_core::ModelDelta;

        let (engine, agents) = ring(4);
        let server = Server::start(engine.clone(), config(1));
        for &agent in &agents {
            server.submit(agent, 5).unwrap().wait().unwrap();
        }
        // Membership change: a ring of 5 renumbers nothing here, but the
        // URI↔id mapping check sees the extra agent and refuses to carry.
        let (engine2, _) = ring(5);
        let plan = SwapPlan::compute(
            engine.community(),
            engine2.community(),
            &ModelDelta::default(),
            engine.config().neighborhood.appleseed.max_range,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        assert!(plan.wholesale());
        let report = server.publish_delta(engine2.clone(), &plan);
        assert_eq!(report.carried, 0);
        assert_eq!(report.invalidated, 4);
        let response = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(!response.cache_hit);
        assert_eq!(*response.recommendations, engine2.recommend(agents[0], 5).unwrap());
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_without_hanging() {
        let (engine, agents) = ring(6);
        let server = Server::start(engine, config(4));
        for &agent in &agents {
            let _ = server.submit(agent, 3);
        }
        drop(server); // must join cleanly
    }
}
