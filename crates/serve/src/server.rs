//! The serving core: a sharded worker pool draining the bounded request
//! queue in micro-batches.
//!
//! Life of a request:
//!
//! 1. **Admission** — [`Server::submit`] pushes onto the bounded queue. At
//!    capacity the push is refused with [`ServeError::Overloaded`]
//!    (load-shedding, counted as `serve.requests.shed.overload`).
//! 2. **Batching** — a worker drains up to `batch_size` requests with one
//!    lock acquisition and pins the current [`ModelSnapshot`] once for the
//!    whole batch, so every request in a batch is answered from a single
//!    consistent generation.
//! 3. **Deadline check** — a request whose virtual-tick deadline passed
//!    while it queued is shed (`serve.requests.shed.deadline`) rather than
//!    served late.
//! 4. **Cache / compute** — the sharded LRU is consulted under the pinned
//!    epoch; a miss runs the full pipeline and populates the cache.
//!
//! Snapshot swap ([`Server::publish`]) happens between batches from the
//! workers' point of view: requests already drained finish on the old
//! generation, later batches pin the new one, and nothing in flight is
//! lost. Shutdown is graceful: the queue closes, workers drain what is
//! left, and anything still queued when the pool has exited is answered
//! with [`ServeError::ShuttingDown`] instead of a dropped channel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use semrec_core::{AgentId, Recommendation, Recommender, SwapPlan};

use crate::cache::{CacheStats, RecCache};
use crate::clock::TickClock;
use crate::error::ServeError;
use crate::queue::{BoundedQueue, PushRefused};
use crate::snapshot::{ModelSnapshot, SnapshotSwitch};

/// Serving configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue. `0` builds an accept-only server
    /// (requests queue but are never processed — useful for admission and
    /// shutdown tests).
    pub workers: usize,
    /// Maximum queued requests before admission control sheds.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains (and serves under one pinned
    /// snapshot) per batch.
    pub batch_size: usize,
    /// Total recommendation-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (each with its own lock).
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            batch_size: 8,
            cache_capacity: 4096,
            cache_shards: 8,
        }
    }
}

/// Outcome of a [`Server::publish_delta`] swap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishReport {
    /// The epoch the new generation was installed as.
    pub epoch: u64,
    /// Cache entries carried across the swap (re-keyed, still answering).
    pub carried: usize,
    /// Cache entries dropped (dirty, or stale generations).
    pub invalidated: usize,
    /// Whether the plan forced wholesale invalidation.
    pub wholesale: bool,
}

/// A successfully served request.
#[derive(Clone, Debug, PartialEq)]
pub struct ServedResponse {
    /// The recommendation list (shared with the cache — cheap to clone).
    pub recommendations: Arc<Vec<Recommendation>>,
    /// The snapshot generation that answered.
    pub epoch: u64,
    /// Whether the answer came from the cache.
    pub cache_hit: bool,
}

/// What a request resolves to.
pub type ServeResult = Result<ServedResponse, ServeError>;

/// A pending response: block on [`Ticket::wait`] to collect it.
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// Blocks until the request resolves. Returns
    /// [`ServeError::Disconnected`] only if a worker panicked mid-request.
    pub fn wait(self) -> ServeResult {
        self.receiver.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// One queued request.
#[derive(Debug)]
struct Request {
    agent: AgentId,
    n: usize,
    /// Virtual tick this request must be *started* by, if any.
    deadline: Option<u64>,
    responder: mpsc::Sender<ServeResult>,
}

/// Cumulative per-server request counters (survive registry resets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with a recommendation list.
    pub served: u64,
    /// Requests refused at admission (queue full).
    pub shed_overload: u64,
    /// Requests dropped at dequeue because their deadline passed.
    pub shed_deadline: u64,
    /// Requests that reached the engine and got an engine error back.
    pub failed: u64,
}

impl ServeStats {
    /// Total load shed, whatever the mechanism.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline
    }

    /// Every request that was resolved one way or another.
    pub fn resolved(&self) -> u64 {
        self.served + self.shed() + self.failed
    }
}

#[derive(Debug, Default)]
struct StatCells {
    submitted: AtomicU64,
    served: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
}

/// State shared between the server handle and its workers.
struct Shared {
    queue: BoundedQueue<Request>,
    switch: SnapshotSwitch,
    cache: RecCache,
    clock: TickClock,
    batch_size: usize,
    stats: StatCells,
}

/// The in-process recommendation server.
///
/// Dropping the server shuts it down gracefully: the queue closes, workers
/// finish what is queued, and the pool is joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server fronting `engine` (installed as snapshot epoch 1).
    pub fn start(engine: Recommender, config: ServeConfig) -> Server {
        Server::start_at(engine, config, 1)
    }

    /// Starts a server fronting `engine` at a caller-chosen snapshot epoch
    /// — the warm-start path for an engine recovered from a durable
    /// checkpoint (see `semrec-store`), which resumes at the epoch the
    /// persisted model had reached instead of restarting at 1.
    pub fn start_at(engine: Recommender, config: ServeConfig, epoch: u64) -> Server {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            switch: SnapshotSwitch::new_at(engine, epoch),
            cache: RecCache::new(config.cache_capacity, config.cache_shards),
            clock: TickClock::new(),
            batch_size: config.batch_size.max(1),
            stats: StatCells::default(),
        });
        semrec_obs::gauge("serve.workers").set(config.workers as f64);
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("semrec-serve-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a request with no deadline. Returns a [`Ticket`] on
    /// admission, or the typed shed error immediately.
    pub fn submit(&self, agent: AgentId, n: usize) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(agent, n, None)
    }

    /// Submits a request that must be *started* by virtual tick
    /// `deadline` — if the queue is still holding it past that tick, it is
    /// shed at dequeue instead of served late.
    pub fn submit_with_deadline(
        &self,
        agent: AgentId,
        n: usize,
        deadline: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let (sender, receiver) = mpsc::channel();
        let request = Request { agent, n, deadline, responder: sender };
        match self.shared.queue.push(request) {
            Ok(depth) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                semrec_obs::counter("serve.requests.submitted").inc();
                semrec_obs::gauge("serve.queue.depth").set(depth as f64);
                Ok(Ticket { receiver })
            }
            Err((_, PushRefused::Full { depth })) => {
                self.shared.stats.shed_overload.fetch_add(1, Ordering::Relaxed);
                semrec_obs::counter("serve.requests.shed").inc();
                semrec_obs::counter("serve.requests.shed.overload").inc();
                Err(ServeError::Overloaded { depth })
            }
            Err((_, PushRefused::Closed)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Atomically installs `engine` as the next model generation and
    /// invalidates cache entries of older generations. In-flight batches
    /// finish on the generation they pinned; returns the new epoch.
    pub fn publish(&self, engine: Recommender) -> u64 {
        let epoch = self.shared.switch.publish(engine);
        self.shared.cache.invalidate_before(epoch);
        epoch
    }

    /// Delta-aware publish: installs `engine` and, instead of dropping the
    /// whole cache, carries the previous generation's entries for agents
    /// the [`SwapPlan`] proves clean across the swap. A wholesale plan
    /// (membership change, or dirty fraction past the threshold) degrades
    /// to exactly [`Server::publish`] semantics.
    ///
    /// The caller must have computed `plan` for precisely this transition
    /// (the engine currently installed → `engine`); the serving invariant —
    /// a cached answer is only served if byte-identical to an engine
    /// recompute on the live snapshot — then holds because a carried
    /// agent's recommendations are unchanged by construction and the id
    /// mapping is stable whenever the plan allows carrying at all.
    pub fn publish_delta(&self, engine: Recommender, plan: &SwapPlan) -> PublishReport {
        let epoch = self.shared.switch.publish(engine);
        if plan.wholesale() {
            let invalidated = self.shared.cache.invalidate_before(epoch);
            return PublishReport { epoch, carried: 0, invalidated, wholesale: true };
        }
        let (carried, invalidated) =
            self.shared.cache.carry_into(epoch, &|agent| plan.carryable(agent));
        PublishReport { epoch, carried, invalidated, wholesale: false }
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.switch.epoch()
    }

    /// The virtual clock deadlines are checked against. The server never
    /// advances it on its own — the load generator (or test) drives time.
    pub fn clock(&self) -> &TickClock {
        &self.shared.clock
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Per-server request counters.
    pub fn stats(&self) -> ServeStats {
        let cells = &self.shared.stats;
        ServeStats {
            submitted: cells.submitted.load(Ordering::Relaxed),
            served: cells.served.load(Ordering::Relaxed),
            shed_overload: cells.shed_overload.load(Ordering::Relaxed),
            shed_deadline: cells.shed_deadline.load(Ordering::Relaxed),
            failed: cells.failed.load(Ordering::Relaxed),
        }
    }

    /// Per-server cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Closes the queue, drains it, joins the workers, and returns the
    /// final counters. Requests still queued if the pool could not drain
    /// them (a zero-worker server) are answered `ShuttingDown`.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A zero-worker server (or a panicked pool) may leave requests
        // queued: answer them explicitly rather than dropping channels.
        for request in self.shared.queue.take_all() {
            let _ = request.responder.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A worker: drain a micro-batch, pin the current snapshot once, serve the
/// batch, repeat until the queue closes and empties.
fn worker_loop(shared: &Shared) {
    let batch_sizes = semrec_obs::histogram("serve.batch.size");
    loop {
        let batch = shared.queue.drain(shared.batch_size);
        if batch.is_empty() {
            return; // closed and drained
        }
        let _span = semrec_obs::span("serve.batch");
        batch_sizes.observe(batch.len() as f64);
        semrec_obs::gauge("serve.queue.depth").set(shared.queue.len() as f64);
        let snapshot = shared.switch.pin();
        for request in batch {
            serve_one(shared, &snapshot, request);
        }
    }
}

/// Serves one drained request against the batch's pinned snapshot.
fn serve_one(shared: &Shared, snapshot: &ModelSnapshot, request: Request) {
    let now = shared.clock.now();
    if let Some(deadline) = request.deadline {
        if now > deadline {
            shared.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            semrec_obs::counter("serve.requests.shed").inc();
            semrec_obs::counter("serve.requests.shed.deadline").inc();
            let _ = request.responder.send(Err(ServeError::DeadlineExceeded { deadline, now }));
            return;
        }
    }
    let key = (snapshot.epoch(), request.agent, request.n);
    if let Some(cached) = shared.cache.get(&key) {
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        semrec_obs::counter("serve.requests.served").inc();
        let _ = request.responder.send(Ok(ServedResponse {
            recommendations: cached,
            epoch: snapshot.epoch(),
            cache_hit: true,
        }));
        return;
    }
    match snapshot.engine().recommend(request.agent, request.n) {
        Ok(recommendations) => {
            let recommendations = Arc::new(recommendations);
            shared.cache.insert(key, Arc::clone(&recommendations));
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            semrec_obs::counter("serve.requests.served").inc();
            let _ = request.responder.send(Ok(ServedResponse {
                recommendations,
                epoch: snapshot.epoch(),
                cache_hit: false,
            }));
        }
        Err(e) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            semrec_obs::counter("serve.requests.failed").inc();
            let _ = request.responder.send(Err(ServeError::Engine(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_core::{Community, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    /// A ring community: every agent trusts the next and rates one product.
    fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> =
            (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        for i in 0..n {
            c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
            c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
        }
        (Recommender::new(c, RecommenderConfig::default()), agents)
    }

    fn config(workers: usize) -> ServeConfig {
        ServeConfig { workers, ..ServeConfig::default() }
    }

    #[test]
    fn serves_and_matches_the_direct_engine() {
        let (engine, agents) = ring(12);
        let server = Server::start(engine.clone(), config(2));
        for &agent in &agents {
            let response = server.submit(agent, 5).unwrap().wait().unwrap();
            assert_eq!(*response.recommendations, engine.recommend(agent, 5).unwrap());
            assert_eq!(response.epoch, 1);
        }
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.served, 12);
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let (engine, agents) = ring(6);
        let server = Server::start(engine, config(1));
        let first = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        let second = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(second.cache_hit);
        assert_eq!(*first.recommendations, *second.recommendations);
        let cache = server.cache_stats();
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn admission_control_sheds_with_a_typed_error() {
        let (engine, agents) = ring(6);
        // Zero workers: nothing drains, so the third push must be refused
        // deterministically.
        let server = Server::start(
            engine,
            ServeConfig { workers: 0, queue_capacity: 2, ..ServeConfig::default() },
        );
        let a = server.submit(agents[0], 5).unwrap();
        let b = server.submit(agents[1], 5).unwrap();
        match server.submit(agents[2], 5) {
            Err(ServeError::Overloaded { depth }) => assert_eq!(depth, 2),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.shed_overload, 1);
        // Shutdown answers the queued-but-never-served requests.
        let stats = server.shutdown();
        assert_eq!(stats.shed_overload, 1);
        assert_eq!(a.wait(), Err(ServeError::ShuttingDown));
        assert_eq!(b.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn stale_queued_requests_are_shed_at_dequeue() {
        let (engine, agents) = ring(6);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(8),
            switch: SnapshotSwitch::new(engine.clone()),
            cache: RecCache::new(16, 2),
            clock: TickClock::new(),
            batch_size: 4,
            stats: StatCells::default(),
        });
        // Queue two requests with deadlines at tick 0 and tick 5, then
        // advance to tick 3 before any worker runs: exactly one is stale.
        let (tx1, rx1) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        shared
            .queue
            .push(Request { agent: agents[0], n: 5, deadline: Some(0), responder: tx1 })
            .unwrap();
        shared
            .queue
            .push(Request { agent: agents[1], n: 5, deadline: Some(5), responder: tx2 })
            .unwrap();
        shared.clock.advance(3);
        shared.queue.close();
        worker_loop(&shared);
        assert_eq!(
            rx1.recv().unwrap(),
            Err(ServeError::DeadlineExceeded { deadline: 0, now: 3 })
        );
        let ok = rx2.recv().unwrap().unwrap();
        assert_eq!(*ok.recommendations, engine.recommend(agents[1], 5).unwrap());
        assert_eq!(shared.stats.shed_deadline.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn engine_errors_come_back_typed() {
        let (engine, _) = ring(4);
        let server = Server::start(engine, config(1));
        let bogus = AgentId::from_index(999);
        let result = server.submit(bogus, 5).unwrap().wait();
        assert!(matches!(result, Err(ServeError::Engine(_))), "{result:?}");
        assert_eq!(server.stats().failed, 1);
    }

    #[test]
    fn publish_swaps_epoch_and_invalidates_the_cache() {
        let (engine, agents) = ring(8);
        let server = Server::start(engine.clone(), config(2));
        let before = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert_eq!(before.epoch, 1);

        let (engine2, _) = ring(8);
        assert_eq!(server.publish(engine2.clone()), 2);
        let after = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert_eq!(after.epoch, 2);
        assert!(!after.cache_hit, "epoch 1 entries must not answer epoch 2");
        assert_eq!(*after.recommendations, engine2.recommend(agents[0], 5).unwrap());
        assert!(server.cache_stats().invalidated >= 1);
    }

    #[test]
    fn publish_delta_carries_clean_entries_across_the_swap() {
        use semrec_core::ModelDelta;

        // Large enough that the 6-hop reverse closure of one change stays
        // a minority (7 of 20 agents) and the plan is not wholesale.
        let (engine, agents) = ring(20);
        let server = Server::start(engine.clone(), config(1));
        // Warm the cache for every agent on epoch 1.
        for &agent in &agents {
            assert!(!server.submit(agent, 5).unwrap().wait().unwrap().cache_hit);
        }

        // Next generation: agent 3 re-rates one product.
        let mut next = engine.community().clone();
        let products: Vec<_> = next.catalog.iter().collect();
        next.set_rating(agents[3], products[1], -0.5).unwrap();
        let uri = next.agent(agents[3]).unwrap().uri.clone();
        let delta = ModelDelta { ratings_changed: vec![uri], trust_changed: Vec::new() };
        let plan = SwapPlan::compute(
            engine.community(),
            &next,
            &delta,
            engine.config().neighborhood.appleseed.max_range,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        let (engine2, _) = engine.advance(next, &delta, *engine.source_health());

        let report = server.publish_delta(engine2.clone(), &plan);
        assert_eq!(report.epoch, 2);
        assert!(!report.wholesale);
        assert!(report.carried > 0, "clean agents must carry: {report:?}");
        assert!(report.invalidated > 0, "dirty agents must drop: {report:?}");

        // The serving invariant: every answer — carried or recomputed — is
        // byte-identical to an engine recompute on the live snapshot.
        for &agent in &agents {
            let response = server.submit(agent, 5).unwrap().wait().unwrap();
            assert_eq!(response.epoch, 2);
            assert_eq!(
                *response.recommendations,
                engine2.recommend(agent, 5).unwrap(),
                "agent {agent:?} answer must match the live snapshot"
            );
            assert_eq!(
                response.cache_hit,
                plan.carryable(agent),
                "exactly the carried agents answer from cache"
            );
        }
        assert_eq!(server.cache_stats().carried, report.carried as u64);
        server.shutdown();
    }

    #[test]
    fn wholesale_plan_degrades_to_full_invalidation() {
        use semrec_core::ModelDelta;

        let (engine, agents) = ring(4);
        let server = Server::start(engine.clone(), config(1));
        for &agent in &agents {
            server.submit(agent, 5).unwrap().wait().unwrap();
        }
        // Membership change: a ring of 5 renumbers nothing here, but the
        // URI↔id mapping check sees the extra agent and refuses to carry.
        let (engine2, _) = ring(5);
        let plan = SwapPlan::compute(
            engine.community(),
            engine2.community(),
            &ModelDelta::default(),
            engine.config().neighborhood.appleseed.max_range,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        assert!(plan.wholesale());
        let report = server.publish_delta(engine2.clone(), &plan);
        assert_eq!(report.carried, 0);
        assert_eq!(report.invalidated, 4);
        let response = server.submit(agents[0], 5).unwrap().wait().unwrap();
        assert!(!response.cache_hit);
        assert_eq!(*response.recommendations, engine2.recommend(agents[0], 5).unwrap());
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_without_hanging() {
        let (engine, agents) = ring(6);
        let server = Server::start(engine, config(4));
        for &agent in &agents {
            let _ = server.submit(agent, 3);
        }
        drop(server); // must join cleanly
    }
}
