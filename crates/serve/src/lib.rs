//! # semrec-serve — concurrent recommendation serving
//!
//! The paper's framework is meant to answer *live* requests in a
//! decentralized, high-churn environment; this crate is the serving
//! substrate in front of [`semrec_core::Recommender`]. Std-only (threads,
//! mutexes, channels), consistent with the workspace's vendored-deps
//! constraint. Four pieces:
//!
//! * **[`SnapshotSwitch`] / [`ModelSnapshot`]** — the epoch-versioned
//!   model. A crawl/refresh round publishes a new generation while
//!   requests are in flight; readers pin the generation they started on,
//!   and the old one drops with its last reader. Serving never pauses.
//! * **[`WeightedFairQueue`] / [`BoundedQueue`]** — admission control
//!   with priority classes. Every request carries a [`Priority`]; at
//!   capacity, submission fails fast with [`ServeError::Overloaded`] (or
//!   displaces a strictly-lower-class request) instead of queuing without
//!   bound, dequeue is deficit-round-robin weighted by class, and requests
//!   whose virtual-tick deadline passed while queued are shed at dequeue
//!   ([`ServeError::DeadlineExceeded`]) rather than served late.
//! * **[`Server`]** — the worker pool. Workers drain micro-batches (up to
//!   `batch_size` per lock acquisition), pin one snapshot per batch, and
//!   consult a sharded per-snapshot LRU ([`RecCache`]) keyed by
//!   `(epoch, agent, n)` — swap invalidation is wholesale and a stale
//!   generation can never answer, because the epoch is part of the key.
//!   Zero-worker servers instead drain through the lockstep
//!   [`Server::drain_step`], the deterministic path the SLO machinery
//!   rides on.
//! * **[`slo`]** — SLO enforcement: per-class deadline budgets, an exact
//!   sliding-window p99 pressure controller ([`SloController`]) that sheds
//!   `Low` before `Normal` and never pressure-sheds `High`, and a
//!   hysteretic queue-depth autoscaler ([`WorkerScaler`]) for the drain
//!   width.
//! * **[`loadgen`]** — deterministic load generators: the closed-loop
//!   [`run_load`] (seeded Zipf over the agent panel) and the open-loop
//!   [`run_open_loop`] (Poisson / diurnal / flash-crowd arrivals on the
//!   virtual tick axis) reporting per-class latency percentiles and
//!   goodput-under-SLO.
//!
//! Everything observable lands in the global `semrec-obs` registry under
//! the `serve.*` namespace (see the README's serving metric table).
//!
//! ```
//! use semrec_core::{Community, Recommender, RecommenderConfig};
//! use semrec_serve::{ServeConfig, Server};
//! use semrec_taxonomy::fixtures::example1;
//!
//! let e = example1();
//! let products: Vec<_> = e.catalog.iter().collect();
//! let mut community = Community::new(e.fig.taxonomy, e.catalog);
//! let alice = community.add_agent("http://example.org/alice").unwrap();
//! let bob = community.add_agent("http://example.org/bob").unwrap();
//! community.trust.set_trust(alice, bob, 0.9).unwrap();
//! community.set_rating(bob, products[0], 1.0).unwrap();
//!
//! let engine = Recommender::new(community, RecommenderConfig::default());
//! let server = Server::start(engine, ServeConfig::default());
//! let response = server.submit(alice, 10).unwrap().wait().unwrap();
//! assert_eq!(response.recommendations[0].product, products[0]);
//! assert_eq!(response.epoch, 1);
//! ```
//!
//! ## Determinism contract
//!
//! Recommendations served through the pool are byte-identical to direct
//! [`Recommender::recommend`](semrec_core::Recommender::recommend) calls,
//! for any worker count: the pipeline is a pure function of the pinned
//! snapshot, the cache only ever returns what the same snapshot computed,
//! and deadlines are checked against the *virtual* [`TickClock`] that only
//! the caller advances. Wall time appears solely in latency histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod class;
pub mod clock;
pub mod error;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod slo;
pub mod snapshot;
pub mod wfq;

pub use cache::{CacheKey, CacheStats, RecCache};
pub use class::{PerClass, Priority};
pub use clock::TickClock;
pub use error::{Result, ServeError};
pub use loadgen::{
    run_load, run_open_loop, run_open_loop_with, ArrivalProcess, ClassReport, LoadGenConfig,
    LoadReport, OpenLoopConfig, OpenLoopReport,
};
pub use queue::{BoundedQueue, PushRefused};
pub use server::{
    ClassStats, DrainOutcome, PublishReport, ServeConfig, ServeStats, ServedResponse, Server,
    Ticket,
};
pub use slo::{ScalerConfig, SloConfig, SloController, WorkerScaler};
pub use snapshot::{ModelSnapshot, SnapshotSwitch};
pub use wfq::{Admitted, WeightedFairQueue};
