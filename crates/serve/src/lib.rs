//! # semrec-serve — concurrent recommendation serving
//!
//! The paper's framework is meant to answer *live* requests in a
//! decentralized, high-churn environment; this crate is the serving
//! substrate in front of [`semrec_core::Recommender`]. Std-only (threads,
//! mutexes, channels), consistent with the workspace's vendored-deps
//! constraint. Four pieces:
//!
//! * **[`SnapshotSwitch`] / [`ModelSnapshot`]** — the epoch-versioned
//!   model. A crawl/refresh round publishes a new generation while
//!   requests are in flight; readers pin the generation they started on,
//!   and the old one drops with its last reader. Serving never pauses.
//! * **[`BoundedQueue`]** — admission control. At capacity, submission
//!   fails fast with [`ServeError::Overloaded`] instead of queuing without
//!   bound, and requests whose virtual-tick deadline passed while queued
//!   are shed at dequeue ([`ServeError::DeadlineExceeded`]) rather than
//!   served late.
//! * **[`Server`]** — the worker pool. Workers drain micro-batches (up to
//!   `batch_size` per lock acquisition), pin one snapshot per batch, and
//!   consult a sharded per-snapshot LRU ([`RecCache`]) keyed by
//!   `(epoch, agent, n)` — swap invalidation is wholesale and a stale
//!   generation can never answer, because the epoch is part of the key.
//! * **[`loadgen`]** — a deterministic closed-loop load generator (seeded
//!   Zipf over the agent panel) reporting latency percentiles,
//!   throughput, shed rate, and cache hit rate.
//!
//! Everything observable lands in the global `semrec-obs` registry under
//! the `serve.*` namespace (see the README's serving metric table).
//!
//! ```
//! use semrec_core::{Community, Recommender, RecommenderConfig};
//! use semrec_serve::{ServeConfig, Server};
//! use semrec_taxonomy::fixtures::example1;
//!
//! let e = example1();
//! let products: Vec<_> = e.catalog.iter().collect();
//! let mut community = Community::new(e.fig.taxonomy, e.catalog);
//! let alice = community.add_agent("http://example.org/alice").unwrap();
//! let bob = community.add_agent("http://example.org/bob").unwrap();
//! community.trust.set_trust(alice, bob, 0.9).unwrap();
//! community.set_rating(bob, products[0], 1.0).unwrap();
//!
//! let engine = Recommender::new(community, RecommenderConfig::default());
//! let server = Server::start(engine, ServeConfig::default());
//! let response = server.submit(alice, 10).unwrap().wait().unwrap();
//! assert_eq!(response.recommendations[0].product, products[0]);
//! assert_eq!(response.epoch, 1);
//! ```
//!
//! ## Determinism contract
//!
//! Recommendations served through the pool are byte-identical to direct
//! [`Recommender::recommend`](semrec_core::Recommender::recommend) calls,
//! for any worker count: the pipeline is a pure function of the pinned
//! snapshot, the cache only ever returns what the same snapshot computed,
//! and deadlines are checked against the *virtual* [`TickClock`] that only
//! the caller advances. Wall time appears solely in latency histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod error;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod snapshot;

pub use cache::{CacheKey, CacheStats, RecCache};
pub use clock::TickClock;
pub use error::{Result, ServeError};
pub use loadgen::{run_load, LoadGenConfig, LoadReport};
pub use queue::{BoundedQueue, PushRefused};
pub use server::{PublishReport, ServeConfig, ServeStats, ServedResponse, Server, Ticket};
pub use snapshot::{ModelSnapshot, SnapshotSwitch};
