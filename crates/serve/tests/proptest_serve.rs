//! Property tests for the serving layer's load-bearing invariants:
//!
//! 1. the sharded LRU never holds more entries than its capacity, whatever
//!    the operation sequence;
//! 2. an entry computed against an old snapshot generation is never served
//!    after a swap — lookups keyed by the current epoch only ever see
//!    values inserted at that epoch;
//! 3. admission control is exact (typed refusal carrying depth *and*
//!    capacity) for both the FIFO and the weighted-fair queue;
//! 4. weighted-fair dequeue never starves the lowest class beyond its
//!    weight bound, however the arrival mix is skewed.

use std::sync::Arc;

use proptest::prelude::*;

use semrec_core::{AgentId, ProductId, Recommendation};
use semrec_serve::{BoundedQueue, Priority, PushRefused, RecCache, WeightedFairQueue};

/// A recommendation list "stamped" with the epoch it was computed at, so a
/// cross-epoch leak is detectable from the value alone.
fn stamped(epoch: u64) -> Arc<Vec<Recommendation>> {
    Arc::new(vec![Recommendation {
        product: ProductId::from_index(0),
        score: epoch as f64,
        voters: 1,
    }])
}

proptest! {
    #[test]
    /// However the key space is hammered, the cache never exceeds its
    /// effective capacity (per-shard budget × shards) and the disabled
    /// cache never holds anything.
    fn lru_never_exceeds_capacity(
        capacity in 0usize..12,
        shards in 1usize..5,
        ops in prop::collection::vec(
            (0u64..3, 0usize..24, 1usize..4, any::<bool>()),
            1..120,
        ),
    ) {
        let cache = RecCache::new(capacity, shards);
        for (epoch, agent, n, is_insert) in ops {
            let key = (epoch, AgentId::from_index(agent), n);
            if is_insert {
                cache.insert(key, stamped(epoch));
            } else if let Some(hit) = cache.get(&key) {
                prop_assert_eq!(hit[0].score, epoch as f64);
            }
            prop_assert!(
                cache.len() <= cache.capacity(),
                "{} entries > capacity {}", cache.len(), cache.capacity()
            );
            if capacity == 0 {
                prop_assert!(cache.is_empty());
            }
        }
        // Accounting sanity: every eviction and invalidation corresponds to
        // an insert that is no longer resident.
        let stats = cache.stats();
        prop_assert!(stats.evictions as usize + cache.len() <= 120);
    }

    #[test]
    /// Swap safety: whatever interleaving of inserts, publishes, and
    /// lookups happens, a lookup under the current epoch never returns a
    /// value computed at an older epoch — and after `invalidate_before`,
    /// no pre-swap entry remains resident at all.
    fn no_stale_epoch_survives_a_swap(
        capacity in 1usize..16,
        shards in 1usize..4,
        ops in prop::collection::vec((0usize..24, 1usize..4, 0u8..8), 1..160),
    ) {
        let cache = RecCache::new(capacity, shards);
        let mut epoch = 1u64;
        for (agent, n, action) in ops {
            let key = (epoch, AgentId::from_index(agent), n);
            match action {
                // Swap: the next generation arrives, old entries die.
                0 => {
                    epoch += 1;
                    cache.invalidate_before(epoch);
                }
                // Lookup at the current epoch: any hit must carry the
                // current generation's stamp.
                1..=3 => {
                    if let Some(hit) = cache.get(&key) {
                        prop_assert_eq!(
                            hit[0].score, epoch as f64,
                            "epoch {} lookup returned a stale generation", epoch
                        );
                    }
                }
                // Insert at the current epoch.
                _ => cache.insert(key, stamped(epoch)),
            }
        }
    }

    #[test]
    /// The queue admits at most `capacity` items, refuses the rest with a
    /// typed rejection carrying the observed depth, and hands back exactly
    /// what it admitted, in FIFO order.
    fn queue_admission_is_exact(
        capacity in 1usize..10,
        pushes in 0usize..25,
    ) {
        let queue = BoundedQueue::new(capacity);
        let mut admitted = Vec::new();
        for i in 0..pushes {
            match queue.push(i) {
                Ok(depth) => {
                    admitted.push(i);
                    prop_assert!(depth <= capacity);
                }
                Err((item, PushRefused::Full { depth, capacity: reported })) => {
                    prop_assert_eq!(item, i);
                    prop_assert_eq!(depth, capacity);
                    prop_assert_eq!(reported, capacity, "the refusal must name the capacity");
                }
                Err((_, PushRefused::Closed)) => unreachable!("queue never closed"),
            }
        }
        prop_assert_eq!(admitted.len(), pushes.min(capacity));
        prop_assert_eq!(queue.len(), admitted.len());
        queue.close();
        let mut drained = Vec::new();
        loop {
            let batch = queue.drain(3);
            if batch.is_empty() {
                break;
            }
            drained.extend(batch);
        }
        prop_assert_eq!(drained, admitted);
    }

    #[test]
    /// No-starvation bound for weighted-fair dequeue: while every class
    /// stays backlogged, any window of W = w_high + w_normal + w_low
    /// consecutive pops contains at least w_c pops of class c — so even the
    /// lowest class is guaranteed its weight share, whatever the weights.
    fn weighted_fair_dequeue_never_starves_a_backlogged_class(
        weights in (1u32..6, 1u32..6, 1u32..6),
        pops in 1usize..60,
    ) {
        let weights = [weights.0, weights.1, weights.2];
        let round: usize = weights.iter().map(|&w| w as usize).sum();
        // Backlog deep enough that no lane empties mid-run.
        let backlog = pops + round;
        let queue = WeightedFairQueue::with_weights(3 * backlog, weights);
        for i in 0..backlog as u32 {
            for class in Priority::ALL {
                queue.push(class, i).unwrap();
            }
        }
        let order: Vec<Priority> =
            queue.try_drain(pops).into_iter().map(|(class, _)| class).collect();
        prop_assert_eq!(order.len(), pops);
        for window in order.windows(round) {
            for class in Priority::ALL {
                let got = window.iter().filter(|&&c| c == class).count();
                let want = weights[class.index()] as usize;
                prop_assert!(
                    got >= want,
                    "class {} got {} of its {} guaranteed pops in a window of {}: {:?}",
                    class, got, want, round, window
                );
            }
        }
    }

    #[test]
    /// Displacement conservation: whatever classed push sequence hits a
    /// full queue, every admitted item is either still queued or was handed
    /// back as a displacement victim — nothing vanishes — and depth never
    /// exceeds capacity.
    fn classed_admission_conserves_items(
        capacity in 1usize..8,
        pushes in prop::collection::vec(0usize..3, 1..60),
    ) {
        let queue = WeightedFairQueue::new(capacity);
        let mut alive = std::collections::BTreeSet::new();
        let mut displaced = Vec::new();
        for (item, class_index) in pushes.into_iter().enumerate() {
            let item = item as u32;
            let class = Priority::ALL[class_index];
            match queue.push(class, item) {
                Ok(admitted) => {
                    alive.insert(item);
                    prop_assert!(admitted.depth <= capacity);
                    if let Some((victim_class, victim)) = admitted.displaced {
                        prop_assert!(victim_class > class, "only strictly lower classes displace");
                        prop_assert!(alive.remove(&victim), "victim must have been queued");
                        displaced.push(victim);
                    }
                }
                Err((item, PushRefused::Full { depth, capacity: reported })) => {
                    prop_assert_eq!(depth, capacity);
                    prop_assert_eq!(reported, capacity);
                    prop_assert!(!alive.contains(&item));
                }
                Err(_) => unreachable!("queue never closed"),
            }
            prop_assert!(queue.len() <= capacity);
        }
        let drained: std::collections::BTreeSet<u32> =
            queue.take_all().into_iter().map(|(_, item)| item).collect();
        prop_assert_eq!(drained, alive);
    }
}
