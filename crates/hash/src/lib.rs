//! # semrec-hash — the workspace's canonical non-cryptographic hashes
//!
//! One home for the hash primitives that several crates previously carried
//! private copies of. Checksums (`semrec-store` snapshot/WAL frames) and
//! seeded pseudo-random decisions (`semrec-web` fault injection) both hash
//! the same way, so the two can never silently drift apart.
//!
//! Nothing here is cryptographic: these functions guard against torn
//! writes and provide deterministic, well-mixed fault schedules — they do
//! not resist adversaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The FNV-1a 64-bit offset basis (the hash of the empty input).
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash over a byte slice.
///
/// This is the snapshot/WAL integrity checksum and the byte-mixing step of
/// fault-injection decisions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(FNV1A64_OFFSET, bytes)
}

/// Folds more bytes into an FNV-1a 64-bit state, enabling incremental
/// hashing over several slices without concatenating them first.
pub fn fnv1a64_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A64_PRIME);
    }
    hash
}

/// SplitMix64 finalizer: one round of strong avalanche mixing.
///
/// FNV-1a's low bits are weak for short inputs; callers that turn a hash
/// into a uniform decision (fault injection) finish with this mixer.
pub fn splitmix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A stateless seeded decision hash: FNV-1a over the key bytes, mixed with
/// `seed`/`attempt`/`salt` through the SplitMix64 finalizer.
///
/// This is how every seeded pseudo-random decision in the workspace is
/// derived — fault-injection schedules and retry jitter (`semrec-web`),
/// gossip partner selection and payload rotation (`semrec-p2p`). Because
/// the hash is a pure function of `(seed, key, attempt, salt)` there is no
/// shared RNG stream, so decisions commute with thread scheduling and stay
/// byte-identical across runs and worker counts. Each call site owns a
/// distinct `salt` constant so its decision stream is independent of every
/// other's under the same seed.
pub fn stable_hash(seed: u64, key: &str, attempt: u64, salt: u64) -> u64 {
    let h = fnv1a64(key.as_bytes());
    splitmix64(h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempt.wrapping_mul(salt))
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
///
/// Uses the top 53 bits, so every representable value is an exact multiple
/// of 2⁻⁵³ — the standard uniform-double construction.
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_hashing_matches_one_shot() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_continue(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn stable_hash_is_deterministic_and_sensitive_to_every_input() {
        let base = stable_hash(7, "http://ex.org/a", 0, 0x1234);
        assert_eq!(base, stable_hash(7, "http://ex.org/a", 0, 0x1234));
        assert_ne!(base, stable_hash(8, "http://ex.org/a", 0, 0x1234));
        assert_ne!(base, stable_hash(7, "http://ex.org/b", 0, 0x1234));
        assert_ne!(base, stable_hash(7, "http://ex.org/a", 1, 0x1234));
        assert_ne!(base, stable_hash(7, "http://ex.org/a", 0, 0x1235));
    }

    #[test]
    fn unit_stays_in_the_half_open_interval() {
        for h in [0, 1, u64::MAX, 0xdead_beef, 1 << 63] {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u), "unit({h}) = {u}");
        }
        assert_eq!(unit(0), 0.0);
    }

    #[test]
    fn splitmix64_avalanches_small_inputs() {
        // Adjacent inputs must not produce adjacent outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a ^ b, 0);
        assert!((a ^ b).count_ones() > 16, "weak avalanche: {:#x}", a ^ b);
    }
}
