//! # semrec-hash — the workspace's canonical non-cryptographic hashes
//!
//! One home for the hash primitives that several crates previously carried
//! private copies of. Checksums (`semrec-store` snapshot/WAL frames) and
//! seeded pseudo-random decisions (`semrec-web` fault injection) both hash
//! the same way, so the two can never silently drift apart.
//!
//! Nothing here is cryptographic: these functions guard against torn
//! writes and provide deterministic, well-mixed fault schedules — they do
//! not resist adversaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The FNV-1a 64-bit offset basis (the hash of the empty input).
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash over a byte slice.
///
/// This is the snapshot/WAL integrity checksum and the byte-mixing step of
/// fault-injection decisions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(FNV1A64_OFFSET, bytes)
}

/// Folds more bytes into an FNV-1a 64-bit state, enabling incremental
/// hashing over several slices without concatenating them first.
pub fn fnv1a64_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A64_PRIME);
    }
    hash
}

/// SplitMix64 finalizer: one round of strong avalanche mixing.
///
/// FNV-1a's low bits are weak for short inputs; callers that turn a hash
/// into a uniform decision (fault injection) finish with this mixer.
pub fn splitmix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_hashing_matches_one_shot() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_continue(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn splitmix64_avalanches_small_inputs() {
        // Adjacent inputs must not produce adjacent outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a ^ b, 0);
        assert!((a ^ b).count_ones() > 16, "weak avalanche: {:#x}", a ^ b);
    }
}
