//! Property tests over randomly grown taxonomies: the §3.1 invariants
//! (single top element, acyclicity, partial-order consistency) must hold for
//! every construction sequence the builder admits.

use proptest::prelude::*;
use semrec_taxonomy::{Taxonomy, TopicId};

/// Grows a tree by attaching each new topic under a pseudo-random existing
/// parent, then adds a few DAG edges where legal.
fn grow(seed_parents: &[usize], dag_edges: &[(usize, usize)]) -> Taxonomy {
    let mut b = Taxonomy::builder("Top");
    let mut ids = vec![TopicId::TOP];
    for (i, &p) in seed_parents.iter().enumerate() {
        let parent = ids[p % ids.len()];
        let id = b.add_topic(format!("t{i}"), parent).unwrap();
        ids.push(id);
    }
    for &(c, p) in dag_edges {
        let child = ids[c % ids.len()];
        let parent = ids[p % ids.len()];
        // Ignore rejected edges (cycles, self, ⊤): builder must stay consistent.
        let _ = b.add_parent(child, parent);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_topic_reaches_top(
        parents in prop::collection::vec(0usize..1000, 1..60),
        edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..10),
    ) {
        let t = grow(&parents, &edges);
        for id in t.iter() {
            prop_assert!(t.is_ancestor(TopicId::TOP, id));
            if id != TopicId::TOP {
                prop_assert!(!t.parents(id).is_empty());
            }
        }
        prop_assert!(t.parents(TopicId::TOP).is_empty());
    }

    #[test]
    fn depth_is_consistent_with_parents(
        parents in prop::collection::vec(0usize..1000, 1..60),
        edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..10),
    ) {
        let t = grow(&parents, &edges);
        for id in t.iter() {
            if id == TopicId::TOP {
                prop_assert_eq!(t.depth(id), 0);
            } else {
                let want = t.parents(id).iter().map(|p| t.depth(*p) + 1).min().unwrap();
                prop_assert_eq!(t.depth(id), want);
            }
        }
    }

    #[test]
    fn acyclicity_no_topic_is_its_own_proper_ancestor(
        parents in prop::collection::vec(0usize..1000, 1..60),
        edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..16),
    ) {
        let t = grow(&parents, &edges);
        for id in t.iter() {
            prop_assert!(!t.ancestors(id).contains(&id));
            prop_assert!(!t.descendants(id).contains(&id));
        }
    }

    #[test]
    fn ancestor_descendant_duality(
        parents in prop::collection::vec(0usize..1000, 1..40),
        edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..8),
    ) {
        let t = grow(&parents, &edges);
        for a in t.iter() {
            for d in t.descendants(a) {
                prop_assert!(t.ancestors(d).contains(&a));
                prop_assert!(t.is_ancestor(a, d));
            }
        }
    }

    #[test]
    fn paths_start_at_top_and_end_at_node(
        parents in prop::collection::vec(0usize..1000, 1..40),
        edges in prop::collection::vec((0usize..1000, 0usize..1000), 0..8),
    ) {
        let t = grow(&parents, &edges);
        for id in t.iter() {
            let paths = t.paths_from_top(id);
            prop_assert!(!paths.is_empty());
            for path in paths {
                prop_assert_eq!(path[0], TopicId::TOP);
                prop_assert_eq!(*path.last().unwrap(), id);
                // Consecutive elements are parent→child edges.
                for w in path.windows(2) {
                    prop_assert!(t.children(w[0]).contains(&w[1]));
                }
            }
        }
    }

    #[test]
    fn lca_is_a_common_ancestor(
        parents in prop::collection::vec(0usize..1000, 2..40),
    ) {
        let t = grow(&parents, &[]);
        let ids: Vec<_> = t.iter().collect();
        for i in (0..ids.len()).step_by(3) {
            for j in (i..ids.len()).step_by(5) {
                let (a, b) = (ids[i], ids[j]);
                let lca = t.lowest_common_ancestor(a, b);
                prop_assert!(t.is_ancestor(lca, a));
                prop_assert!(t.is_ancestor(lca, b));
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_trees(
        parents in prop::collection::vec(0usize..1000, 2..30),
    ) {
        let t = grow(&parents, &[]);
        let ids: Vec<_> = t.iter().collect();
        for &a in ids.iter().step_by(4) {
            prop_assert_eq!(t.distance(a, a), 0);
            for &b in ids.iter().step_by(7) {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }
}
