//! # semrec-taxonomy — taxonomy `C`, topic set `D`, products `B`, descriptors `f`
//!
//! The paper's information model (§3.1) globally publishes a taxonomy `C`
//! arranging every category `d_k ∈ D` in an acyclic graph with exactly one
//! top element `⊤`, a product set `B`, and a descriptor assignment
//! `f: B → 2^D`. This crate implements all three, plus the Figure 1 /
//! Example 1 fixtures and the structural statistics experiment E10 uses.
//!
//! ```
//! use semrec_taxonomy::{Taxonomy, TopicId};
//!
//! let mut builder = Taxonomy::builder("Books");
//! let science = builder.add_topic("Science", TopicId::TOP).unwrap();
//! let math = builder.add_topic("Mathematics", science).unwrap();
//! let taxonomy = builder.build();
//! assert!(taxonomy.is_ancestor(TopicId::TOP, math));
//! assert_eq!(taxonomy.depth(math), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod fixtures;
pub mod stats;
#[allow(clippy::module_inception)]
pub mod taxonomy;
pub mod topic;

pub use catalog::{Catalog, Product, ProductId};
pub use error::{Result, TaxonomyError};
pub use stats::{stats, TaxonomyStats};
pub use taxonomy::{Taxonomy, TaxonomyBuilder, TaxonomyParts};
pub use topic::{Topic, TopicId};
