//! The taxonomy `C` over the topic set `D` (§3.1 of the paper).
//!
//! `C` arranges all topics in an acyclic graph by imposing a partial subset
//! order `⊑`, with exactly one top element `⊤` (zero indegree). Trees are the
//! common case — Amazon's book taxonomy is a tree, and Eq. 3 assumes one —
//! but multiple parents are supported; path-dependent operations then
//! enumerate every root path.

use std::collections::HashMap;

use crate::error::{Result, TaxonomyError};
use crate::topic::{Topic, TopicId};

/// An immutable taxonomy: a rooted DAG of topics.
///
/// Construct via [`TaxonomyBuilder`]. Children/parents are stored as dense
/// adjacency vectors; by construction every non-root node has at least one
/// parent and the graph is acyclic (parents must exist before children, and
/// extra DAG edges are cycle-checked).
#[derive(Clone, Debug)]
pub struct Taxonomy {
    topics: Vec<Topic>,
    parents: Vec<Vec<TopicId>>,
    children: Vec<Vec<TopicId>>,
    /// Depth of the shortest path to ⊤ (root has depth 0).
    depth: Vec<u32>,
    by_label: HashMap<String, TopicId>,
}

impl Taxonomy {
    /// Starts building a taxonomy whose top element carries `root_label`.
    pub fn builder(root_label: impl Into<String>) -> TaxonomyBuilder {
        TaxonomyBuilder::new(root_label)
    }

    /// Number of topics, including ⊤.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Always false: a taxonomy contains at least ⊤.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The unique top element ⊤.
    pub fn top(&self) -> TopicId {
        TopicId::TOP
    }

    /// The topic record.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.index()]
    }

    /// The label of a topic.
    pub fn label(&self, id: TopicId) -> &str {
        &self.topics[id.index()].label
    }

    /// Looks a topic up by its label. Labels are unique per taxonomy.
    pub fn by_label(&self, label: &str) -> Option<TopicId> {
        self.by_label.get(label).copied()
    }

    /// Direct parents (empty only for ⊤).
    pub fn parents(&self, id: TopicId) -> &[TopicId] {
        &self.parents[id.index()]
    }

    /// Direct children (subtopics).
    pub fn children(&self, id: TopicId) -> &[TopicId] {
        &self.children[id.index()]
    }

    /// Number of siblings under a given parent: `sib(p)` from Eq. 3.
    ///
    /// For multi-parent nodes the sibling count is parent-specific, so the
    /// parent must be supplied.
    pub fn siblings_under(&self, id: TopicId, parent: TopicId) -> usize {
        debug_assert!(self.children(parent).contains(&id));
        self.children(parent).len().saturating_sub(1)
    }

    /// True if the topic has no subtopics (a leaf, i.e. most specific category).
    pub fn is_leaf(&self, id: TopicId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// All leaf topics.
    pub fn leaves(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.iter().filter(|&id| self.is_leaf(id))
    }

    /// Depth of the shortest path to ⊤ (⊤ itself has depth 0).
    pub fn depth(&self, id: TopicId) -> u32 {
        self.depth[id.index()]
    }

    /// Maximum depth over all topics.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Iterates all topic ids in insertion (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = TopicId> {
        (0..self.topics.len()).map(TopicId::from_index)
    }

    /// True if `ancestor ⊒ descendant` in the partial order (reflexive).
    pub fn is_ancestor(&self, ancestor: TopicId, descendant: TopicId) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut stack = vec![descendant];
        let mut seen = vec![false; self.topics.len()];
        while let Some(node) = stack.pop() {
            for &p in self.parents(node) {
                if p == ancestor {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// All ancestors of a topic (excluding itself), deduplicated, nearest first.
    pub fn ancestors(&self, id: TopicId) -> Vec<TopicId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.topics.len()];
        let mut frontier = vec![id];
        while let Some(node) = frontier.pop() {
            for &p in self.parents(node) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    out.push(p);
                    frontier.push(p);
                }
            }
        }
        out.sort_by_key(|&t| std::cmp::Reverse(self.depth(t)));
        out
    }

    /// All descendants of a topic (excluding itself).
    pub fn descendants(&self, id: TopicId) -> Vec<TopicId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.topics.len()];
        let mut frontier = vec![id];
        while let Some(node) = frontier.pop() {
            for &c in self.children(node) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    out.push(c);
                    frontier.push(c);
                }
            }
        }
        out
    }

    /// Every path `(⊤ = p_0, p_1, …, p_q = id)` from the top element down to
    /// the topic, as used by Eq. 3. For trees this is a single path.
    pub fn paths_from_top(&self, id: TopicId) -> Vec<Vec<TopicId>> {
        if id == TopicId::TOP {
            return vec![vec![TopicId::TOP]];
        }
        let mut paths = Vec::new();
        for &parent in self.parents(id) {
            for mut path in self.paths_from_top(parent) {
                path.push(id);
                paths.push(path);
            }
        }
        paths
    }

    /// The lowest common ancestor with maximal depth (ties broken by id).
    pub fn lowest_common_ancestor(&self, a: TopicId, b: TopicId) -> TopicId {
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let mut in_a = vec![false; self.topics.len()];
        for anc in self.ancestors(a) {
            in_a[anc.index()] = true;
        }
        let mut best = TopicId::TOP;
        let mut best_depth = 0;
        for anc in self.ancestors(b) {
            if in_a[anc.index()]
                && self.depth(anc) >= best_depth
                && (self.depth(anc) > best_depth || anc < best)
            {
                best = anc;
                best_depth = self.depth(anc);
            }
        }
        best
    }

    /// Taxonomic distance: shortest path length between two topics going
    /// through their lowest common ancestor.
    pub fn distance(&self, a: TopicId, b: TopicId) -> u32 {
        let lca = self.lowest_common_ancestor(a, b);
        (self.depth(a) - self.depth(lca)) + (self.depth(b) - self.depth(lca))
    }

    /// Exports the raw adjacency representation for serialization (see
    /// `semrec-store`).
    ///
    /// The parts preserve the *exact* stored order of every adjacency list
    /// — in particular `children`, whose order depends on the historical
    /// interleaving of [`TaxonomyBuilder::add_topic`] and
    /// [`TaxonomyBuilder::add_parent`] calls and feeds the summation order
    /// of profile generation. Rebuilding through the public builder in
    /// topic-id order could reorder children and perturb float sums;
    /// [`Taxonomy::from_parts`] cannot.
    pub fn to_parts(&self) -> TaxonomyParts {
        TaxonomyParts {
            labels: self.topics.iter().map(|t| t.label.clone()).collect(),
            parents: self.parents.clone(),
            children: self.children.clone(),
            depth: self.depth.clone(),
        }
    }

    /// Rebuilds a taxonomy from [`Taxonomy::to_parts`] output, validating
    /// structural invariants (consistent lengths, in-bounds ids, a
    /// parentless root, parented non-roots, unique labels,
    /// parents/children agreement) so corrupted serialized bytes surface
    /// as a typed [`TaxonomyError::InvalidParts`] instead of a panic.
    pub fn from_parts(parts: TaxonomyParts) -> Result<Taxonomy> {
        let TaxonomyParts { labels, parents, children, depth } = parts;
        let n = labels.len();
        let invalid = |what: &str| TaxonomyError::InvalidParts(what.to_owned());
        if n == 0 {
            return Err(invalid("no topics: a taxonomy contains at least ⊤"));
        }
        if parents.len() != n || children.len() != n || depth.len() != n {
            return Err(invalid("adjacency/depth vectors disagree on topic count"));
        }
        if !parents[0].is_empty() || depth[0] != 0 {
            return Err(invalid("⊤ must be parentless at depth 0"));
        }
        let mut edges = 0usize;
        for (idx, list) in parents.iter().enumerate() {
            if idx > 0 && list.is_empty() {
                return Err(invalid("non-root topic without a parent"));
            }
            edges += list.len();
            for p in list {
                if p.index() >= n {
                    return Err(invalid("parent id out of bounds"));
                }
            }
        }
        // Parents/children agreement, checked from the child side: parent
        // lists are short (usually a single entry) where a hub topic's
        // child list can hold hundreds, so scanning `parents[c]` per child
        // edge is near-O(edges) instead of O(edges × hub fanout). Equal
        // edge counts close the loop: every parent edge is then mirrored.
        let mut child_edges = 0usize;
        for (idx, list) in children.iter().enumerate() {
            child_edges += list.len();
            for c in list {
                if c.index() >= n {
                    return Err(invalid("child id out of bounds"));
                }
                if !parents[c.index()].contains(&TopicId::from_index(idx)) {
                    return Err(invalid("child edge missing from the parent list"));
                }
            }
        }
        if child_edges != edges {
            return Err(invalid("parents/children edge counts disagree"));
        }
        let mut by_label = HashMap::with_capacity(n);
        for (idx, label) in labels.iter().enumerate() {
            if by_label.insert(label.clone(), TopicId::from_index(idx)).is_some() {
                return Err(TaxonomyError::DuplicateLabel(label.clone()));
            }
        }
        Ok(Taxonomy {
            topics: labels.into_iter().map(|label| Topic { label }).collect(),
            parents,
            children,
            depth,
            by_label,
        })
    }
}

/// The raw serializable representation of a [`Taxonomy`]: exactly its
/// stored adjacency vectors, order included. Produced by
/// [`Taxonomy::to_parts`], consumed by [`Taxonomy::from_parts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaxonomyParts {
    /// Topic labels in id order (index 0 is ⊤).
    pub labels: Vec<String>,
    /// Direct parents per topic, in stored order.
    pub parents: Vec<Vec<TopicId>>,
    /// Direct children per topic, in stored order.
    pub children: Vec<Vec<TopicId>>,
    /// Shortest-path depth to ⊤ per topic.
    pub depth: Vec<u32>,
}

/// Incremental taxonomy construction.
///
/// Topics must be added parents-first, which makes the graph acyclic by
/// construction; [`TaxonomyBuilder::add_parent`] edges are additionally
/// cycle-checked.
#[derive(Clone, Debug)]
pub struct TaxonomyBuilder {
    taxonomy: Taxonomy,
}

impl TaxonomyBuilder {
    fn new(root_label: impl Into<String>) -> Self {
        let root_label = root_label.into();
        let mut by_label = HashMap::new();
        by_label.insert(root_label.clone(), TopicId::TOP);
        TaxonomyBuilder {
            taxonomy: Taxonomy {
                topics: vec![Topic { label: root_label }],
                parents: vec![Vec::new()],
                children: vec![Vec::new()],
                depth: vec![0],
                by_label,
            },
        }
    }

    /// Adds a topic under an existing parent, returning its id.
    ///
    /// Fails if the label already exists or the parent is unknown.
    pub fn add_topic(&mut self, label: impl Into<String>, parent: TopicId) -> Result<TopicId> {
        let label = label.into();
        let t = &mut self.taxonomy;
        if parent.index() >= t.topics.len() {
            return Err(TaxonomyError::UnknownTopic(parent.index()));
        }
        if t.by_label.contains_key(&label) {
            return Err(TaxonomyError::DuplicateLabel(label));
        }
        let id = TopicId::from_index(t.topics.len());
        t.by_label.insert(label.clone(), id);
        t.topics.push(Topic { label });
        t.parents.push(vec![parent]);
        t.children.push(Vec::new());
        t.depth.push(t.depth[parent.index()] + 1);
        t.children[parent.index()].push(id);
        Ok(id)
    }

    /// Adds an extra parent edge (turning the tree into a DAG).
    ///
    /// Fails on unknown topics, self-edges, duplicate edges, edges into ⊤,
    /// and edges that would create a cycle.
    pub fn add_parent(&mut self, child: TopicId, parent: TopicId) -> Result<()> {
        let t = &mut self.taxonomy;
        for id in [child, parent] {
            if id.index() >= t.topics.len() {
                return Err(TaxonomyError::UnknownTopic(id.index()));
            }
        }
        if child == parent || child == TopicId::TOP {
            return Err(TaxonomyError::CycleDetected);
        }
        if t.parents[child.index()].contains(&parent) {
            return Ok(()); // duplicate edge is a no-op
        }
        if self.taxonomy.is_ancestor(child, parent) {
            return Err(TaxonomyError::CycleDetected);
        }
        let t = &mut self.taxonomy;
        t.parents[child.index()].push(parent);
        t.children[parent.index()].push(child);
        // Depth is the minimum over parents; a new parent can only shorten it,
        // and any shortening must be propagated to descendants.
        Self::relax_depths(t, child);
        Ok(())
    }

    fn relax_depths(t: &mut Taxonomy, start: TopicId) {
        let mut frontier = vec![start];
        while let Some(node) = frontier.pop() {
            let best = t.parents[node.index()]
                .iter()
                .map(|p| t.depth[p.index()] + 1)
                .min()
                .unwrap_or(0);
            if best < t.depth[node.index()] {
                t.depth[node.index()] = best;
                frontier.extend(t.children[node.index()].iter().copied());
            }
        }
    }

    /// Finalizes the taxonomy.
    pub fn build(self) -> Taxonomy {
        self.taxonomy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Books → {Science → {Mathematics → {Pure → {Algebra, Calculus}}}} etc.
    fn small() -> (Taxonomy, Vec<TopicId>) {
        let mut b = Taxonomy::builder("Books");
        let science = b.add_topic("Science", TopicId::TOP).unwrap();
        let fiction = b.add_topic("Fiction", TopicId::TOP).unwrap();
        let math = b.add_topic("Mathematics", science).unwrap();
        let physics = b.add_topic("Physics", science).unwrap();
        let pure = b.add_topic("Pure", math).unwrap();
        let algebra = b.add_topic("Algebra", pure).unwrap();
        let calculus = b.add_topic("Calculus", pure).unwrap();
        let t = b.build();
        (t, vec![science, fiction, math, physics, pure, algebra, calculus])
    }

    #[test]
    fn structure_accessors() {
        let (t, ids) = small();
        let [science, fiction, math, _physics, pure, algebra, calculus] = ids[..] else {
            unreachable!()
        };
        assert_eq!(t.len(), 8);
        assert_eq!(t.label(TopicId::TOP), "Books");
        assert_eq!(t.parents(algebra), &[pure]);
        assert_eq!(t.children(pure), &[algebra, calculus]);
        assert_eq!(t.depth(algebra), 4);
        assert_eq!(t.max_depth(), 4);
        assert!(t.is_leaf(fiction));
        assert!(!t.is_leaf(science));
        assert_eq!(t.siblings_under(algebra, pure), 1);
        assert_eq!(t.siblings_under(math, science), 1);
        assert_eq!(t.by_label("Pure"), Some(pure));
        assert_eq!(t.by_label("Nope"), None);
    }

    #[test]
    fn duplicate_labels_and_unknown_parents_fail() {
        let mut b = Taxonomy::builder("Books");
        b.add_topic("Science", TopicId::TOP).unwrap();
        assert!(matches!(
            b.add_topic("Science", TopicId::TOP),
            Err(TaxonomyError::DuplicateLabel(_))
        ));
        assert!(matches!(
            b.add_topic("X", TopicId::from_index(99)),
            Err(TaxonomyError::UnknownTopic(99))
        ));
    }

    #[test]
    fn ancestor_relation_is_reflexive_and_transitive() {
        let (t, ids) = small();
        let algebra = ids[5];
        let science = ids[0];
        assert!(t.is_ancestor(algebra, algebra));
        assert!(t.is_ancestor(TopicId::TOP, algebra));
        assert!(t.is_ancestor(science, algebra));
        assert!(!t.is_ancestor(algebra, science));
        assert!(!t.is_ancestor(ids[1], algebra)); // Fiction vs Algebra
    }

    #[test]
    fn ancestors_are_nearest_first() {
        let (t, ids) = small();
        let algebra = ids[5];
        let anc = t.ancestors(algebra);
        let labels: Vec<_> = anc.iter().map(|&a| t.label(a)).collect();
        assert_eq!(labels, vec!["Pure", "Mathematics", "Science", "Books"]);
    }

    #[test]
    fn descendants_cover_the_subtree() {
        let (t, ids) = small();
        let science = ids[0];
        let desc = t.descendants(science);
        assert_eq!(desc.len(), 5); // math, physics, pure, algebra, calculus
        assert_eq!(t.descendants(ids[5]).len(), 0);
    }

    #[test]
    fn single_path_in_trees() {
        let (t, ids) = small();
        let algebra = ids[5];
        let paths = t.paths_from_top(algebra);
        assert_eq!(paths.len(), 1);
        let labels: Vec<_> = paths[0].iter().map(|&p| t.label(p)).collect();
        assert_eq!(labels, vec!["Books", "Science", "Mathematics", "Pure", "Algebra"]);
    }

    #[test]
    fn lca_and_distance() {
        let (t, ids) = small();
        let [science, fiction, math, physics, pure, algebra, calculus] = ids[..] else {
            unreachable!()
        };
        assert_eq!(t.lowest_common_ancestor(algebra, calculus), pure);
        assert_eq!(t.lowest_common_ancestor(algebra, physics), science);
        assert_eq!(t.lowest_common_ancestor(algebra, fiction), TopicId::TOP);
        assert_eq!(t.lowest_common_ancestor(math, algebra), math);
        assert_eq!(t.distance(algebra, calculus), 2);
        assert_eq!(t.distance(algebra, algebra), 0);
        assert_eq!(t.distance(algebra, physics), 4);
    }

    #[test]
    fn dag_edges_and_cycle_rejection() {
        let mut b = Taxonomy::builder("Top");
        let a = b.add_topic("A", TopicId::TOP).unwrap();
        let bb = b.add_topic("B", TopicId::TOP).unwrap();
        let c = b.add_topic("C", a).unwrap();
        // C also under B: legal DAG edge.
        b.add_parent(c, bb).unwrap();
        // Cycle: A under C would close A → C → A.
        assert!(matches!(b.add_parent(a, c), Err(TaxonomyError::CycleDetected)));
        assert!(matches!(b.add_parent(c, c), Err(TaxonomyError::CycleDetected)));
        // Edges into the top element are forbidden (⊤ must keep indegree 0).
        assert!(matches!(b.add_parent(TopicId::TOP, a), Err(TaxonomyError::CycleDetected)));
        let t = b.build();
        assert_eq!(t.parents(c), &[a, bb]);
        assert_eq!(t.paths_from_top(c).len(), 2);
    }

    #[test]
    fn dag_depth_relaxation() {
        let mut b = Taxonomy::builder("Top");
        let a = b.add_topic("A", TopicId::TOP).unwrap();
        let a2 = b.add_topic("A2", a).unwrap();
        let deep = b.add_topic("Deep", a2).unwrap();
        let leaf = b.add_topic("Leaf", deep).unwrap();
        assert_eq!(b.taxonomy.depth(leaf), 4);
        // New shortcut: Deep directly under Top.
        b.add_parent(deep, TopicId::TOP).unwrap();
        let t = b.build();
        assert_eq!(t.depth(deep), 1);
        assert_eq!(t.depth(leaf), 2);
    }

    #[test]
    fn parts_round_trip_preserves_exact_adjacency_order() {
        // A DAG whose children lists are *not* in topic-id order: C gains
        // B as a second parent after D was already B's child.
        let mut b = Taxonomy::builder("Top");
        let a = b.add_topic("A", TopicId::TOP).unwrap();
        let bb = b.add_topic("B", TopicId::TOP).unwrap();
        let c = b.add_topic("C", a).unwrap();
        let d = b.add_topic("D", bb).unwrap();
        b.add_parent(c, bb).unwrap();
        let t = b.build();
        assert_eq!(t.children(bb), &[d, c], "insertion order, not id order");

        let rebuilt = Taxonomy::from_parts(t.to_parts()).unwrap();
        assert_eq!(rebuilt.to_parts(), t.to_parts());
        assert_eq!(rebuilt.children(bb), &[d, c]);
        assert_eq!(rebuilt.by_label("C"), Some(c));
        assert_eq!(rebuilt.depth(c), t.depth(c));
    }

    #[test]
    fn malformed_parts_are_rejected_with_typed_errors() {
        let (t, _) = small();
        let good = t.to_parts();

        let mut empty = good.clone();
        empty.labels.clear();
        empty.parents.clear();
        empty.children.clear();
        empty.depth.clear();
        assert!(matches!(Taxonomy::from_parts(empty), Err(TaxonomyError::InvalidParts(_))));

        let mut short = good.clone();
        short.depth.pop();
        assert!(matches!(Taxonomy::from_parts(short), Err(TaxonomyError::InvalidParts(_))));

        let mut rooted = good.clone();
        rooted.parents[0].push(TopicId::from_index(1));
        assert!(matches!(Taxonomy::from_parts(rooted), Err(TaxonomyError::InvalidParts(_))));

        let mut orphan = good.clone();
        orphan.parents[3].clear();
        assert!(matches!(Taxonomy::from_parts(orphan), Err(TaxonomyError::InvalidParts(_))));

        let mut oob = good.clone();
        oob.parents[3] = vec![TopicId::from_index(99)];
        assert!(matches!(Taxonomy::from_parts(oob), Err(TaxonomyError::InvalidParts(_))));

        let mut dup = good.clone();
        dup.labels[2] = dup.labels[1].clone();
        assert!(matches!(Taxonomy::from_parts(dup), Err(TaxonomyError::DuplicateLabel(_))));

        let mut lopsided = good;
        lopsided.children[1].pop();
        assert!(matches!(Taxonomy::from_parts(lopsided), Err(TaxonomyError::InvalidParts(_))));
    }

    #[test]
    fn duplicate_dag_edge_is_noop() {
        let mut b = Taxonomy::builder("Top");
        let a = b.add_topic("A", TopicId::TOP).unwrap();
        let c = b.add_topic("C", a).unwrap();
        b.add_parent(c, a).unwrap();
        let t = b.build();
        assert_eq!(t.parents(c), &[a]);
    }
}
