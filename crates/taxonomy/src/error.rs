//! Error types for taxonomy and catalog construction.

use std::fmt;

/// Result alias for taxonomy operations.
pub type Result<T> = std::result::Result<T, TaxonomyError>;

/// Errors from taxonomy or catalog construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// A topic id did not designate an existing topic.
    UnknownTopic(usize),
    /// A topic label was already taken.
    DuplicateLabel(String),
    /// An edge would have made the taxonomy cyclic (or targeted ⊤).
    CycleDetected,
    /// A product identifier (ISBN/URI) was already registered.
    DuplicateProduct(String),
    /// A product id did not designate an existing product.
    UnknownProduct(usize),
    /// A product was registered without any topic descriptor (`|f(b)| ≥ 1`).
    MissingDescriptors(String),
    /// Serialized raw parts violated a structural invariant
    /// (see `Taxonomy::from_parts`).
    InvalidParts(String),
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::UnknownTopic(idx) => write!(f, "unknown topic index {idx}"),
            TaxonomyError::DuplicateLabel(label) => write!(f, "duplicate topic label `{label}`"),
            TaxonomyError::CycleDetected => write!(f, "edge would create a cycle"),
            TaxonomyError::DuplicateProduct(id) => write!(f, "duplicate product `{id}`"),
            TaxonomyError::UnknownProduct(idx) => write!(f, "unknown product index {idx}"),
            TaxonomyError::MissingDescriptors(id) => {
                write!(f, "product `{id}` has no topic descriptors (|f(b)| ≥ 1 required)")
            }
            TaxonomyError::InvalidParts(what) => {
                write!(f, "malformed taxonomy parts: {what}")
            }
        }
    }
}

impl std::error::Error for TaxonomyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TaxonomyError::UnknownTopic(3).to_string().contains('3'));
        assert!(TaxonomyError::DuplicateLabel("X".into()).to_string().contains('X'));
        assert!(TaxonomyError::MissingDescriptors("isbn".into()).to_string().contains("f(b)"));
    }
}
