//! Structural statistics over taxonomies.
//!
//! §6 of the paper asks how taxonomy *structure* (Amazon's book taxonomy is
//! deep and narrow; its DVD taxonomy broader but shallower) impacts profile
//! generation. These statistics quantify the shapes experiment E10 compares.

use crate::taxonomy::Taxonomy;
use crate::topic::TopicId;

/// Aggregate shape statistics of a taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub struct TaxonomyStats {
    /// Total number of topics including ⊤.
    pub topics: usize,
    /// Number of leaf topics.
    pub leaves: usize,
    /// Number of inner (non-leaf) topics.
    pub inner: usize,
    /// Maximum depth.
    pub max_depth: u32,
    /// Mean depth over leaf topics.
    pub mean_leaf_depth: f64,
    /// Mean branching factor over inner topics.
    pub mean_branching: f64,
    /// Maximum branching factor.
    pub max_branching: usize,
    /// Histogram of topic counts per depth (index = depth).
    pub depth_histogram: Vec<usize>,
}

/// Computes shape statistics for a taxonomy.
pub fn stats(taxonomy: &Taxonomy) -> TaxonomyStats {
    let mut leaves = 0usize;
    let mut leaf_depth_sum = 0u64;
    let mut inner = 0usize;
    let mut child_sum = 0usize;
    let mut max_branching = 0usize;
    let mut depth_histogram = vec![0usize; taxonomy.max_depth() as usize + 1];

    for id in taxonomy.iter() {
        depth_histogram[taxonomy.depth(id) as usize] += 1;
        let kids = taxonomy.children(id).len();
        if kids == 0 {
            leaves += 1;
            leaf_depth_sum += u64::from(taxonomy.depth(id));
        } else {
            inner += 1;
            child_sum += kids;
            max_branching = max_branching.max(kids);
        }
    }

    TaxonomyStats {
        topics: taxonomy.len(),
        leaves,
        inner,
        max_depth: taxonomy.max_depth(),
        mean_leaf_depth: if leaves > 0 { leaf_depth_sum as f64 / leaves as f64 } else { 0.0 },
        mean_branching: if inner > 0 { child_sum as f64 / inner as f64 } else { 0.0 },
        max_branching,
        depth_histogram,
    }
}

/// Renders a taxonomy as an indented tree, depth-first (Figure 1 style).
///
/// DAG nodes with several parents appear once per parent. Intended for small
/// fragments; output is truncated after `max_lines`.
pub fn render_tree(taxonomy: &Taxonomy, max_lines: usize) -> String {
    let mut out = String::new();
    let mut lines = 0usize;
    render_node(taxonomy, TopicId::TOP, 0, &mut out, &mut lines, max_lines);
    if lines >= max_lines {
        out.push_str("…\n");
    }
    out
}

fn render_node(
    taxonomy: &Taxonomy,
    node: TopicId,
    indent: usize,
    out: &mut String,
    lines: &mut usize,
    max_lines: usize,
) {
    if *lines >= max_lines {
        return;
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(taxonomy.label(node));
    out.push('\n');
    *lines += 1;
    for &child in taxonomy.children(node) {
        render_node(taxonomy, child, indent + 1, out, lines, max_lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;

    #[test]
    fn figure1_shape() {
        let f = figure1();
        let s = stats(&f.taxonomy);
        assert_eq!(s.topics, f.taxonomy.len());
        assert_eq!(s.leaves + s.inner, s.topics);
        // Deepest branch: Books → Science → Mathematics → Applied →
        // Matrix Theory → Linear Algebra.
        assert_eq!(s.max_depth, 5);
        assert_eq!(s.depth_histogram[0], 1); // exactly one ⊤
        assert_eq!(s.depth_histogram.iter().sum::<usize>(), s.topics);
        assert!(s.mean_leaf_depth > 1.0);
        assert!(s.mean_branching > 1.0);
        assert_eq!(s.max_branching, 4);
    }

    #[test]
    fn render_contains_the_figure1_path() {
        let f = figure1();
        let rendered = render_tree(&f.taxonomy, 100);
        for label in ["Books", "Science", "Mathematics", "Pure", "Algebra"] {
            assert!(rendered.contains(label), "missing {label}");
        }
        // Indentation grows along the path.
        let idx = |l: &str| rendered.lines().position(|ln| ln.trim() == l).unwrap();
        assert!(idx("Books") < idx("Science"));
        assert!(idx("Science") < idx("Mathematics"));
    }

    #[test]
    fn render_truncates() {
        let f = figure1();
        let rendered = render_tree(&f.taxonomy, 3);
        assert_eq!(rendered.lines().count(), 4); // 3 lines + ellipsis
        assert!(rendered.ends_with("…\n"));
    }

    #[test]
    fn trivial_taxonomy_stats() {
        let t = Taxonomy::builder("Top").build();
        let s = stats(&t);
        assert_eq!(s.topics, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.inner, 0);
        assert_eq!(s.mean_branching, 0.0);
        assert_eq!(s.mean_leaf_depth, 0.0);
    }
}
