//! Topic identifiers and topic records.

use std::fmt;

/// Dense identifier of a taxonomy topic (category) `d_k ∈ D`.
///
/// Identifiers index directly into the taxonomy's internal vectors, so all
/// hot-path operations (ancestor walks, profile propagation) are array
/// lookups.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(pub(crate) u32);

impl TopicId {
    /// The identifier of the unique top element `⊤` in every taxonomy.
    pub const TOP: TopicId = TopicId(0);

    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `TopicId` from a raw index.
    ///
    /// The caller must ensure the index designates an existing topic of the
    /// taxonomy it is used with; out-of-range ids cause panics downstream.
    pub fn from_index(index: usize) -> Self {
        TopicId(u32::try_from(index).expect("topic index exceeds u32"))
    }
}

impl fmt::Debug for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A topic record: its human-readable label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topic {
    /// Human-readable category label (e.g. "Algebra").
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_is_index_zero() {
        assert_eq!(TopicId::TOP.index(), 0);
        assert_eq!(TopicId::from_index(0), TopicId::TOP);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TopicId::from_index(7).to_string(), "d7");
        assert_eq!(format!("{:?}", TopicId::from_index(7)), "d7");
    }
}
