//! The product set `B` and the descriptor assignment function `f: B → 2^D`
//! (§3.1 of the paper).
//!
//! Products carry globally agreed identifiers — ISBNs for books, shop catalog
//! URIs otherwise — and one or more topic descriptors relating them to the
//! taxonomy. The paper requires `|f(b)| ≥ 1` for every product, "for
//! classification into one single category generally entails loss of
//! precision".

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, TaxonomyError};
use crate::taxonomy::Taxonomy;
use crate::topic::TopicId;

/// Dense identifier of a product `b_j ∈ B`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProductId(pub(crate) u32);

impl ProductId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `ProductId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        ProductId(u32::try_from(index).expect("product index exceeds u32"))
    }
}

impl fmt::Debug for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A catalogued product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Product {
    /// Globally unique external identifier (e.g. `urn:isbn:0387954521`).
    pub identifier: String,
    /// Human-readable title.
    pub title: String,
}

/// The product catalog: set `B` plus the descriptor assignment `f`.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    products: Vec<Product>,
    descriptors: Vec<Vec<TopicId>>,
    by_identifier: HashMap<String, ProductId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of products `m = |B|`.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// True if no products are registered.
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// Registers a product with its topic descriptors `f(b)`.
    ///
    /// Descriptors must be non-empty and name topics of `taxonomy`.
    pub fn add_product(
        &mut self,
        taxonomy: &Taxonomy,
        identifier: impl Into<String>,
        title: impl Into<String>,
        descriptors: Vec<TopicId>,
    ) -> Result<ProductId> {
        let identifier = identifier.into();
        if descriptors.is_empty() {
            return Err(TaxonomyError::MissingDescriptors(identifier));
        }
        for &d in &descriptors {
            if d.index() >= taxonomy.len() {
                return Err(TaxonomyError::UnknownTopic(d.index()));
            }
        }
        if self.by_identifier.contains_key(&identifier) {
            return Err(TaxonomyError::DuplicateProduct(identifier));
        }
        let id = ProductId::from_index(self.products.len());
        self.by_identifier.insert(identifier.clone(), id);
        self.products.push(Product { identifier, title: title.into() });
        let mut descriptors = descriptors;
        descriptors.sort_unstable();
        descriptors.dedup();
        self.descriptors.push(descriptors);
        Ok(id)
    }

    /// The product record.
    pub fn product(&self, id: ProductId) -> &Product {
        &self.products[id.index()]
    }

    /// The descriptor set `f(b)` (sorted, deduplicated; `|f(b)| ≥ 1`).
    pub fn descriptors(&self, id: ProductId) -> &[TopicId] {
        &self.descriptors[id.index()]
    }

    /// Looks a product up by its external identifier.
    pub fn by_identifier(&self, identifier: &str) -> Option<ProductId> {
        self.by_identifier.get(identifier).copied()
    }

    /// Iterates all product ids.
    pub fn iter(&self) -> impl Iterator<Item = ProductId> {
        (0..self.products.len()).map(ProductId::from_index)
    }

    /// All products carrying a given descriptor.
    pub fn products_with_descriptor(&self, topic: TopicId) -> Vec<ProductId> {
        self.iter().filter(|&p| self.descriptors(p).contains(&topic)).collect()
    }

    /// All products classified somewhere under `topic` (inclusive).
    pub fn products_under(&self, taxonomy: &Taxonomy, topic: TopicId) -> Vec<ProductId> {
        self.iter()
            .filter(|&p| self.descriptors(p).iter().any(|&d| taxonomy.is_ancestor(topic, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Taxonomy, Catalog, Vec<TopicId>) {
        let mut b = Taxonomy::builder("Books");
        let science = b.add_topic("Science", TopicId::TOP).unwrap();
        let math = b.add_topic("Mathematics", science).unwrap();
        let fiction = b.add_topic("Fiction", TopicId::TOP).unwrap();
        let t = b.build();
        let mut c = Catalog::new();
        c.add_product(&t, "urn:isbn:0387954521", "Matrix Analysis", vec![math]).unwrap();
        c.add_product(&t, "urn:isbn:0553380958", "Snow Crash", vec![fiction]).unwrap();
        c.add_product(&t, "urn:isbn:0802713319", "Fermat's Enigma", vec![math, science])
            .unwrap();
        (t, c, vec![science, math, fiction])
    }

    #[test]
    fn registration_and_lookup() {
        let (_t, c, ids) = setup();
        assert_eq!(c.len(), 3);
        let p = c.by_identifier("urn:isbn:0387954521").unwrap();
        assert_eq!(c.product(p).title, "Matrix Analysis");
        assert_eq!(c.descriptors(p), &[ids[1]]);
        assert!(c.by_identifier("urn:isbn:none").is_none());
    }

    #[test]
    fn duplicate_identifiers_fail() {
        let (t, mut c, ids) = setup();
        assert!(matches!(
            c.add_product(&t, "urn:isbn:0387954521", "Again", vec![ids[0]]),
            Err(TaxonomyError::DuplicateProduct(_))
        ));
    }

    #[test]
    fn empty_descriptors_fail() {
        let (t, mut c, _) = setup();
        assert!(matches!(
            c.add_product(&t, "urn:isbn:1111111111", "No topics", vec![]),
            Err(TaxonomyError::MissingDescriptors(_))
        ));
    }

    #[test]
    fn unknown_descriptor_topics_fail() {
        let (t, mut c, _) = setup();
        assert!(matches!(
            c.add_product(&t, "urn:isbn:1111111111", "Bad", vec![TopicId::from_index(99)]),
            Err(TaxonomyError::UnknownTopic(99))
        ));
    }

    #[test]
    fn descriptors_are_deduplicated() {
        let (t, mut c, ids) = setup();
        let p = c
            .add_product(&t, "urn:isbn:2222222222", "Dup", vec![ids[1], ids[1], ids[0]])
            .unwrap();
        assert_eq!(c.descriptors(p), &[ids[0], ids[1]]);
    }

    #[test]
    fn queries_by_topic() {
        let (t, c, ids) = setup();
        let [science, math, fiction] = ids[..] else { unreachable!() };
        assert_eq!(c.products_with_descriptor(math).len(), 2);
        assert_eq!(c.products_with_descriptor(fiction).len(), 1);
        // products_under Science includes everything classified under math too.
        assert_eq!(c.products_under(&t, science).len(), 2);
        assert_eq!(c.products_under(&t, TopicId::TOP).len(), 3);
    }
}
