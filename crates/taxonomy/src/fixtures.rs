//! Fixtures reproducing Figure 1 and Example 1 of the paper.
//!
//! Figure 1 shows a "small fragment from the Amazon book taxonomy" containing
//! the path **Books → Science → Mathematics → Pure → Algebra**. Example 1
//! fixes the sibling counts along that path implicitly through its reported
//! scores (29.087, 14.543, 4.848, 1.212, 0.303 for a leaf allotment of 50):
//!
//! * `Algebra` has 1 sibling under `Pure`        (50 → half to parent level),
//! * `Pure` has 2 siblings under `Mathematics`,
//! * `Mathematics` has 3 siblings under `Science`,
//! * `Science` has 3 siblings under `Books`.
//!
//! The fixture reproduces exactly those counts and adds the branches needed
//! to host Example 1's four books (*Matrix Analysis*, *Fermat's Enigma*,
//! *Snow Crash*, *Neuromancer*).

use crate::catalog::{Catalog, ProductId};
use crate::taxonomy::Taxonomy;
use crate::topic::TopicId;

/// Named handles into the Figure 1 fixture taxonomy.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The taxonomy itself (root label `Books`).
    pub taxonomy: Taxonomy,
    /// `Science`, child of ⊤ with 3 siblings.
    pub science: TopicId,
    /// `Mathematics`, child of `Science` with 3 siblings.
    pub mathematics: TopicId,
    /// `Pure`, child of `Mathematics` with 2 siblings.
    pub pure: TopicId,
    /// `Algebra`, child of `Pure` with 1 sibling.
    pub algebra: TopicId,
    /// `Applied`, sibling of `Pure` (used by the §3.3 similarity example).
    pub applied: TopicId,
    /// `Science Fiction`, hosting *Snow Crash* and *Neuromancer*.
    pub science_fiction: TopicId,
    /// `History of Mathematics`, hosting *Fermat's Enigma*.
    pub history_of_math: TopicId,
    /// `Matrix Theory`, a further Matrix-Analysis descriptor.
    pub matrix_theory: TopicId,
    /// `Linear Algebra` under `Matrix Theory`'s branch.
    pub linear_algebra: TopicId,
    /// `Textbooks` under `Reference`.
    pub textbooks: TopicId,
    /// `Number Theory`, sibling branch used by Fermat's Enigma.
    pub number_theory: TopicId,
    /// `Cyberpunk` under `Science Fiction`.
    pub cyberpunk: TopicId,
}

/// Builds the Figure 1 fragment with Example 1's sibling counts.
pub fn figure1() -> Figure1 {
    let mut b = Taxonomy::builder("Books");
    let top = TopicId::TOP;

    // Books: Science + 3 siblings.
    let science = b.add_topic("Science", top).unwrap();
    let fiction = b.add_topic("Fiction", top).unwrap();
    let _nonfiction = b.add_topic("Nonfiction", top).unwrap();
    let reference = b.add_topic("Reference", top).unwrap();

    // Science: Mathematics + 3 siblings.
    let mathematics = b.add_topic("Mathematics", science).unwrap();
    let _physics = b.add_topic("Physics", science).unwrap();
    let _astronomy = b.add_topic("Astronomy", science).unwrap();
    let _biology = b.add_topic("Biology", science).unwrap();

    // Mathematics: Pure + 2 siblings.
    let pure = b.add_topic("Pure", mathematics).unwrap();
    let applied = b.add_topic("Applied", mathematics).unwrap();
    let history_of_math = b.add_topic("History of Mathematics", mathematics).unwrap();

    // Pure: Algebra + 1 sibling.
    let algebra = b.add_topic("Algebra", pure).unwrap();
    let number_theory = b.add_topic("Number Theory", pure).unwrap();

    // Branches hosting the remaining Example 1 descriptors and books.
    let matrix_theory = b.add_topic("Matrix Theory", applied).unwrap();
    let linear_algebra = b.add_topic("Linear Algebra", matrix_theory).unwrap();
    let textbooks = b.add_topic("Textbooks", reference).unwrap();
    let science_fiction = b.add_topic("Science Fiction", fiction).unwrap();
    let cyberpunk = b.add_topic("Cyberpunk", science_fiction).unwrap();

    Figure1 {
        taxonomy: b.build(),
        science,
        mathematics,
        pure,
        algebra,
        applied,
        science_fiction,
        history_of_math,
        matrix_theory,
        linear_algebra,
        textbooks,
        number_theory,
        cyberpunk,
    }
}

/// Example 1's four books, registered against the Figure 1 taxonomy.
///
/// *Matrix Analysis* carries exactly 5 descriptors ("For Matrix Analysis, 5
/// topic descriptors are given, one of them pointing to leaf topic Algebra"),
/// so with `s = 1000` its Algebra descriptor is allotted `1000/(4·5) = 50`.
#[derive(Clone, Debug)]
pub struct Example1 {
    /// The Figure 1 taxonomy and named topics.
    pub fig: Figure1,
    /// The product catalog holding the four books.
    pub catalog: Catalog,
    /// *Matrix Analysis* (5 descriptors, incl. Algebra).
    pub matrix_analysis: ProductId,
    /// *Fermat's Enigma*.
    pub fermats_enigma: ProductId,
    /// *Snow Crash*.
    pub snow_crash: ProductId,
    /// *Neuromancer*.
    pub neuromancer: ProductId,
}

/// Builds the Example 1 scenario.
pub fn example1() -> Example1 {
    let fig = figure1();
    let t = &fig.taxonomy;
    let mut catalog = Catalog::new();
    let matrix_analysis = catalog
        .add_product(
            t,
            "urn:isbn:0521386322",
            "Matrix Analysis",
            vec![
                fig.algebra,
                fig.matrix_theory,
                fig.linear_algebra,
                fig.textbooks,
                fig.applied,
            ],
        )
        .unwrap();
    let fermats_enigma = catalog
        .add_product(
            t,
            "urn:isbn:0385493622",
            "Fermat's Enigma",
            vec![fig.number_theory, fig.history_of_math],
        )
        .unwrap();
    let snow_crash = catalog
        .add_product(t, "urn:isbn:0553380958", "Snow Crash", vec![fig.cyberpunk])
        .unwrap();
    let neuromancer = catalog
        .add_product(t, "urn:isbn:0441569595", "Neuromancer", vec![fig.cyberpunk])
        .unwrap();
    Example1 { fig, catalog, matrix_analysis, fermats_enigma, snow_crash, neuromancer }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_counts_match_example_1() {
        let f = figure1();
        let t = &f.taxonomy;
        assert_eq!(t.siblings_under(f.algebra, f.pure), 1);
        assert_eq!(t.siblings_under(f.pure, f.mathematics), 2);
        assert_eq!(t.siblings_under(f.mathematics, f.science), 3);
        assert_eq!(t.siblings_under(f.science, TopicId::TOP), 3);
    }

    #[test]
    fn algebra_path_matches_figure_1() {
        let f = figure1();
        let paths = f.taxonomy.paths_from_top(f.algebra);
        assert_eq!(paths.len(), 1);
        let labels: Vec<_> = paths[0].iter().map(|&p| f.taxonomy.label(p)).collect();
        assert_eq!(labels, vec!["Books", "Science", "Mathematics", "Pure", "Algebra"]);
    }

    #[test]
    fn example1_has_four_books_and_five_descriptors() {
        let e = example1();
        assert_eq!(e.catalog.len(), 4);
        assert_eq!(e.catalog.descriptors(e.matrix_analysis).len(), 5);
        assert!(e.catalog.descriptors(e.matrix_analysis).contains(&e.fig.algebra));
        assert_eq!(e.catalog.product(e.snow_crash).title, "Snow Crash");
    }

    #[test]
    fn taxonomy_is_single_rooted() {
        let f = figure1();
        let t = &f.taxonomy;
        for id in t.iter() {
            if id != TopicId::TOP {
                assert!(!t.parents(id).is_empty());
                assert!(t.is_ancestor(TopicId::TOP, id));
            }
        }
        assert!(t.parents(TopicId::TOP).is_empty());
    }
}
