//! A minimal length-prefixed binary codec plus the FNV-1a-64 checksum.
//!
//! Deliberately boring: little-endian fixed-width integers, `u64`
//! length-prefixed byte strings, `f64` persisted as raw IEEE-754 bits so a
//! round trip is bit-exact (the repo-wide byte-identity contract lives or
//! dies on this). Every read is bounds-checked and returns a typed
//! [`Error::Truncated`] instead of slicing past the end.

use crate::error::{Error, Result};

/// FNV-1a 64-bit hash — the snapshot/WAL integrity checksum.
///
/// Re-exported from `semrec-hash`, the single canonical implementation
/// shared with fault-decision hashing in `semrec-web`; not cryptographic —
/// it guards against torn writes and bit rot, not adversaries.
pub use semrec_hash::fnv1a64;

/// Append-only byte buffer with typed `put_*` helpers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes with no framing.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Pads with zero bytes until the buffer length is a multiple of 8.
    ///
    /// Snapshot-v2 arenas are written 8-byte aligned relative to the file
    /// start (the writer buffer includes the 12-byte frame header), so an
    /// eventual memory-mapped reader could reinterpret them in place.
    pub fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Bytes written so far — the offset the next `put_*` will land at.
    pub fn offset(&self) -> usize {
        self.buf.len()
    }

    /// Overwrites a previously written `u64` in place (e.g. a section
    /// length that is only known after the section is written).
    ///
    /// # Panics
    /// If `offset..offset + 8` is not already written.
    pub fn patch_u64(&mut self, offset: usize, v: u64) {
        self.buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` arena: length prefix, alignment padding, then the
    /// elements as raw little-endian bytes.
    pub fn put_u32_arena(&mut self, values: &[u32]) {
        self.put_len(values.len());
        self.align8();
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends an `f64` arena as raw IEEE-754 bit patterns (bit-exact
    /// round trip), length-prefixed and aligned like
    /// [`Writer::put_u32_arena`].
    pub fn put_f64_arena(&mut self, values: &[f64]) {
        self.put_len(values.len());
        self.align8();
        for &v in values {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute file offset of `bytes[0]` — needed to honor the 8-byte
    /// alignment padding [`Writer::align8`] computed against the file
    /// start. 0 unless set via [`Reader::with_base`].
    base: usize,
    /// Reported in [`Error::Truncated`] so the caller knows which
    /// structure the bytes ran out in.
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, tagging truncation errors with `context`.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Reader { bytes, pos: 0, base: 0, context }
    }

    /// Like [`Reader::new`], for a slice that starts `base` bytes into the
    /// file the writer produced (e.g. a frame payload after the 12-byte
    /// header), so alignment padding is skipped correctly.
    pub fn with_base(bytes: &'a [u8], context: &'static str, base: usize) -> Self {
        Reader { bytes, pos: 0, base, context }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Bytes consumed so far, relative to the slice this reader was built
    /// over (add [`Reader::with_base`]'s base for the file offset).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Truncated { context: self.context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length (`u64`) and sanity-bounds it against the bytes that
    /// are actually left, so a corrupted length cannot trigger a huge
    /// allocation before the inevitable truncation error.
    pub fn get_len(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        if v > self.remaining() as u64 {
            return Err(Error::Truncated { context: self.context });
        }
        Ok(v as usize)
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting anything but 0/1 as corruption.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Corrupt(format!("bool byte {other} in {}", self.context))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt(format!("invalid UTF-8 in {}", self.context)))
    }

    /// Skips the zero padding [`Writer::align8`] wrote.
    fn skip_align8(&mut self) -> Result<()> {
        let misalign = (self.base + self.pos) % 8;
        if misalign != 0 {
            self.take(8 - misalign)?;
        }
        Ok(())
    }

    /// Reads a raw byte run of explicit length (no length prefix).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32` arena written by [`Writer::put_u32_arena`]: one
    /// bounds-checked slice take, then a bulk little-endian copy — no
    /// per-element framing.
    pub fn get_u32_arena(&mut self) -> Result<Vec<u32>> {
        let len = self.get_len()?;
        self.skip_align8()?;
        let raw = self.take(len.checked_mul(4).ok_or(Error::Truncated { context: self.context })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads an `f64` arena written by [`Writer::put_f64_arena`] —
    /// bit patterns copied verbatim, no float re-derivation.
    pub fn get_f64_arena(&mut self) -> Result<Vec<f64>> {
        let len = self.get_len()?;
        self.skip_align8()?;
        let raw = self.take(len.checked_mul(8).ok_or(Error::Truncated { context: self.context })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.1f64);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5], "unit");
        assert!(matches!(r.get_u64(), Err(Error::Truncated { context: "unit" })));
    }

    #[test]
    fn hostile_length_prefix_cannot_demand_a_huge_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~18EB follow
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "unit");
        assert!(matches!(r.get_len(), Err(Error::Truncated { .. })));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corruption() {
        let mut r = Reader::new(&[9], "unit");
        assert!(matches!(r.get_bool(), Err(Error::Corrupt(_))));
        let mut w = Writer::new();
        w.put_len(2);
        w.put_raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "unit");
        assert!(matches!(r.get_str(), Err(Error::Corrupt(_))));
    }
}
