//! # semrec-store — durable checkpoints, delta WAL, and crash-recoverable warm starts
//!
//! The paper's decentralized architecture (§2, §4.1) assumes peers that
//! appear, disappear, and come back; a node that must re-crawl the world
//! from nothing on every restart cannot rejoin cheaply. This crate is the
//! persistence layer under the pipeline: a **versioned, checksummed binary
//! snapshot** of the full model (standing extraction view, taxonomy,
//! catalog, config, source health, materialized profiles, serve epoch)
//! plus an **append-only WAL of [`CrawlDelta`](semrec_web::delta::CrawlDelta)
//! records** between snapshots. Std-only, consistent with the workspace's
//! vendored-deps constraint. Three pieces:
//!
//! * **[`Checkpoint`]** — capture/encode/decode/restore of one full model
//!   generation. The restore path reassembles the community through
//!   `CommunityBuilder` (the same code a live crawl uses, so agent-id
//!   numbering is preserved) and installs the persisted profile bits
//!   verbatim — no float is ever re-derived on load.
//! * **[`WalRecord`] / [`decode_wal`]** — per-record framed, checksummed
//!   deltas. A crash mid-append leaves a torn tail: the valid prefix
//!   replays, the tear surfaces as a typed error.
//! * **[`Store`]** — the directory of numbered snapshot/WAL pairs:
//!   [`checkpoint`](Store::checkpoint), [`append_delta`](Store::append_delta),
//!   [`recover`](Store::recover) (newest loadable snapshot + replay, with
//!   typed-error fallback past corrupt generations), and
//!   [`compact_if_needed`](Store::compact_if_needed).
//!
//! ## The headline guarantee
//!
//! **Recover-then-serve is byte-identical to never having restarted.**
//! A model recovered from snapshot+WAL answers every recommendation
//! bit-for-bit like the live model it mirrors, and a server warm-started
//! with [`Recovery::epoch`] (`semrec_serve::Server::start_at`) keeps the
//! epoch-keyed cache semantics of the node that wrote the log. Nothing in
//! this crate panics on corrupted input: bad magic, unsupported versions,
//! truncation, checksum mismatches, and semantically impossible states
//! all come back as typed [`Error`] variants, and recovery falls back to
//! the previous good snapshot.
//!
//! Everything observable lands in the global `semrec-obs` registry under
//! the `store.*` namespace (see the README's persistence metric table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod codec;
pub mod error;
pub mod snapshot;
#[allow(clippy::module_inception)]
pub mod store;
pub mod wal;

pub use arena::{decode_v2, encode_v2, sniff_version, SNAPSHOT_V2};
pub use error::{Error, Result};
pub use snapshot::{Checkpoint, RestoredModel, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{CheckpointReport, CompactionPolicy, Recovery, Store};
pub use wal::{decode_wal, encode_record, wal_header, WalReadout, WalRecord, WAL_MAGIC, WAL_VERSION};

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use semrec_core::{Recommender, RecommenderConfig, SourceHealth};
    use semrec_taxonomy::fixtures::example1;
    use semrec_web::crawler::CommunityBuilder;
    use semrec_web::delta::{AgentDiff, CrawlDelta};
    use semrec_web::extract::ExtractedAgent;

    use super::*;

    /// A unique per-test scratch directory (no external tempfile crate).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("semrec-store-{}-{tag}-{n}", std::process::id()))
    }

    fn agent(i: usize, trust: &[(usize, f64)], ratings: &[(&str, f64)]) -> ExtractedAgent {
        ExtractedAgent {
            uri: format!("http://ex.org/u{i}"),
            trust: trust.iter().map(|&(j, v)| (format!("http://ex.org/u{j}"), v)).collect(),
            ratings: ratings.iter().map(|&(p, v)| (p.to_owned(), v)).collect(),
            knows: trust.iter().map(|&(j, _)| format!("http://ex.org/u{j}")).collect(),
            see_also: Vec::new(),
        }
    }

    /// A small ring world over the Example 1 taxonomy/catalog, plus its
    /// engine built the same way a crawl would.
    fn world() -> (Recommender, Vec<ExtractedAgent>) {
        let e = example1();
        let ids: Vec<String> =
            e.catalog.iter().map(|p| e.catalog.product(p).identifier.clone()).collect();
        let view: Vec<ExtractedAgent> = (0..6)
            .map(|i| agent(i, &[((i + 1) % 6, 0.9)], &[(ids[i % ids.len()].as_str(), 1.0)]))
            .collect();
        let (community, _) = CommunityBuilder::new(&view).build(e.fig.taxonomy, e.catalog);
        (Recommender::new(community, RecommenderConfig::default()), view)
    }

    fn render(engine: &Recommender) -> String {
        let mut out = String::new();
        for a in engine.community().agents() {
            out.push_str(&format!("{a:?}:"));
            for rec in engine.recommend(a, 10).expect("recommendation succeeds") {
                out.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn checkpoint_recover_round_trip_is_byte_identical() {
        let (engine, view) = world();
        let store = Store::open(scratch("roundtrip")).unwrap();
        let report = store.checkpoint(&engine, &view, 3).unwrap();
        assert_eq!(report.seq, 1);
        assert!(report.snapshot_bytes > 0);

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.snapshot_seq, 1);
        assert_eq!(recovery.epoch, 3, "no WAL records → the persisted epoch");
        assert_eq!(recovery.replayed, 0);
        assert!(!recovery.degraded());
        assert_eq!(recovery.view, view);
        assert_eq!(render(&recovery.engine), render(&engine));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wal_replay_equals_the_live_advance() {
        let (engine, view) = world();
        let store = Store::open(scratch("replay")).unwrap();
        store.checkpoint(&engine, &view, 1).unwrap();

        // Two refresh rounds on the live node, each appended to the WAL.
        let catalog = example1().catalog;
        let target = catalog.product(catalog.iter().next().unwrap()).identifier.clone();
        let mut live = engine;
        let mut live_view = view;
        for round in 0..2u64 {
            let delta = CrawlDelta {
                changed: vec![AgentDiff {
                    uri: format!("http://ex.org/u{round}"),
                    ratings_set: vec![(target.clone(), 0.25 + round as f64 / 10.0)],
                    ..AgentDiff::default()
                }],
                unchanged: live_view.len() - 1,
                ..CrawlDelta::default()
            };
            let health = SourceHealth { attempted: 6, fetched: 6, ..Default::default() };
            store.append_delta(&delta, &health).unwrap();
            let mut builder = CommunityBuilder::new(&live_view);
            builder.apply_delta(&delta);
            let c = live.community();
            let (next, _) = builder.build(c.taxonomy.clone(), c.catalog.clone());
            let (advanced, _) = live.advance(next, &delta.model_delta(), health);
            live = advanced;
            live_view = builder.agents().to_vec();
        }

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.replayed, 2);
        assert_eq!(recovery.epoch, 3, "epoch 1 + one publish per replayed record");
        assert!(!recovery.degraded());
        assert_eq!(recovery.view, live_view);
        assert_eq!(
            render(&recovery.engine),
            render(&live),
            "snapshot+WAL recovery must be byte-identical to never restarting"
        );
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_previous_good_one() {
        let (engine, view) = world();
        let store = Store::open(scratch("fallback")).unwrap();
        store.checkpoint(&engine, &view, 1).unwrap();
        store.checkpoint(&engine, &view, 5).unwrap();

        // Bit-flip the newest snapshot's body.
        let path = store.snapshot_path(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.snapshot_seq, 1, "must fall back past the corrupt generation");
        assert_eq!(recovery.skipped.len(), 1);
        assert!(
            matches!(recovery.skipped[0].1, Error::ChecksumMismatch { .. }),
            "{:?}",
            recovery.skipped[0].1
        );
        assert!(recovery.degraded());
        assert_eq!(render(&recovery.engine), render(&engine));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn torn_wal_tail_replays_the_valid_prefix() {
        let (engine, view) = world();
        let store = Store::open(scratch("torn")).unwrap();
        store.checkpoint(&engine, &view, 1).unwrap();
        let catalog = example1().catalog;
        let target = catalog.product(catalog.iter().next().unwrap()).identifier.clone();
        let delta = CrawlDelta {
            changed: vec![AgentDiff {
                uri: "http://ex.org/u0".into(),
                ratings_set: vec![(target, 0.5)],
                ..AgentDiff::default()
            }],
            unchanged: view.len() - 1,
            ..CrawlDelta::default()
        };
        let health = SourceHealth::default();
        store.append_delta(&delta, &health).unwrap();
        store.append_delta(&delta, &health).unwrap();

        // Tear the last record mid-payload.
        let path = store.wal_path(1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.replayed, 1, "the intact prefix replays");
        assert!(matches!(recovery.wal_error, Some(Error::Truncated { .. })));
        assert_eq!(recovery.epoch, 2);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn bad_version_wal_recovers_snapshot_only() {
        let (engine, view) = world();
        let store = Store::open(scratch("walversion")).unwrap();
        store.checkpoint(&engine, &view, 4).unwrap();
        let delta = CrawlDelta { unchanged: view.len(), ..CrawlDelta::default() };
        store.append_delta(&delta, &SourceHealth::default()).unwrap();

        let path = store.wal_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xEE; // version byte
        std::fs::write(&path, bytes).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.replayed, 0, "an untrusted log replays nothing");
        assert!(matches!(recovery.wal_error, Some(Error::BadVersion { found: 0xEE, .. })));
        assert_eq!(render(&recovery.engine), render(&engine));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn empty_store_and_walless_appends_are_typed_errors() {
        let store = Store::open(scratch("empty")).unwrap();
        assert!(matches!(store.recover(), Err(Error::NoSnapshot)));
        let delta = CrawlDelta::default();
        assert!(matches!(
            store.append_delta(&delta, &SourceHealth::default()),
            Err(Error::NoSnapshot)
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn compaction_folds_the_wal_into_a_fresh_generation() {
        let (engine, view) = world();
        let store = Store::open(scratch("compact")).unwrap();
        store.checkpoint(&engine, &view, 1).unwrap();
        let delta = CrawlDelta { unchanged: view.len(), ..CrawlDelta::default() };
        store.append_delta(&delta, &SourceHealth::default()).unwrap();

        let lenient = CompactionPolicy::default();
        assert!(!store.should_compact(&lenient).unwrap());
        assert!(store
            .compact_if_needed(&engine, &view, 2, &lenient)
            .unwrap()
            .is_none());

        let strict = CompactionPolicy { max_wal_bytes: 1, max_wal_ratio: 0.0 };
        let report = store
            .compact_if_needed(&engine, &view, 2, &strict)
            .unwrap()
            .expect("an over-budget WAL must compact");
        assert_eq!(report.seq, 2);
        assert_eq!(store.wal_bytes().unwrap(), wal_header().len() as u64);
        let recovery = store.recover().unwrap();
        assert_eq!(recovery.snapshot_seq, 2);
        assert_eq!(recovery.replayed, 0);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn every_single_byte_mutation_of_a_snapshot_is_typed_never_a_panic() {
        let (engine, view) = world();
        let bytes = Checkpoint::capture(&engine, &view, 1).encode();
        for cut in 0..bytes.len() {
            if let Ok(checkpoint) = Checkpoint::decode(&bytes[..cut]) {
                let _ = checkpoint.restore();
            }
        }
        // Flipping any single bit must be caught by the checksum (or an
        // earlier frame check) — decode can never return Ok.
        for i in (0..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x04;
            assert!(Checkpoint::decode(&mutated).is_err(), "byte {i} flip went unnoticed");
        }
    }

    #[test]
    fn bad_magic_and_bad_version_snapshots_are_typed() {
        let (engine, view) = world();
        let good = Checkpoint::capture(&engine, &view, 1).encode();
        let mut magic = good.clone();
        magic[..8].copy_from_slice(b"NOTMAGIC");
        assert!(matches!(Checkpoint::decode(&magic), Err(Error::BadMagic { .. })));
        // A version bump must re-checksum or it reads as plain corruption;
        // patch both to exercise the version check in isolation.
        let mut versioned = good.clone();
        versioned[8..12].copy_from_slice(&9u32.to_le_bytes());
        let body_end = versioned.len() - 8;
        let sum = codec::fnv1a64(&versioned[..body_end]);
        versioned[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&versioned),
            Err(Error::BadVersion { found: 9, expected: SNAPSHOT_VERSION })
        ));
        assert!(Checkpoint::decode(&good).is_ok());
    }
}
