//! Snapshot format v2: the model's arenas written verbatim.
//!
//! Version 1 ([`crate::snapshot::Checkpoint`]) persists one record per
//! agent/profile and *re-derives* the model on load: every string is
//! length-prefix-walked, the community is re-assembled through
//! `CommunityBuilder` (URI hashing, edge resolution, sorting), and every
//! profile goes back through `ProfileVector::from_pairs`. Version 2 writes
//! the flat arenas the engine already holds in memory — the trust
//! [`CsrGraph`] arrays, the rating CSR arrays, the profile slab arrays,
//! and a deduplicated string table — so recovery is a handful of
//! bounds-checked bulk copies plus structural validation. No float is
//! re-derived, nothing is re-sorted, no hash map is consulted to rebuild
//! edges; the restored model is bit-identical to the captured one.
//!
//! On-disk layout (all integers little-endian, arenas 8-byte aligned
//! relative to the file start):
//!
//! ```text
//! "SEMRECSN" | version = 2: u32
//! epoch: u64 | health | config | taxonomy          (small, field-coded)
//! string table: offsets u32 arena + UTF-8 blob     (every URI/id/title once)
//! products:   ident idx, title idx, descriptor CSR (u32 arenas)
//! view:       byte length: u64, then uri idx +
//!             trust/ratings/knows/see_also CSR arenas
//! model:      agent uri idx, trust CSR (5 arenas),
//!             ratings CSR (3 arenas), profile slab (3 arenas)
//! fnv1a64(everything preceding): u64
//! ```
//!
//! The view section carries its own byte length so [`decode_v2`] can hand
//! it to a helper thread (it is the one part of the load that still builds
//! per-agent `String` lists) and adopt the model arenas concurrently; the
//! checksum runs on a third scoped thread. Hosts that expose a single CPU
//! run the identical steps serially instead — spawning there only adds
//! contention. The same guarantees as v1 hold:
//! magic, version and checksum gate the result, every body read is
//! bounds-checked, and corrupted input yields a typed [`Error`], never a
//! panic — a checksum mismatch wins over any structural error, so
//! bit-flips report exactly as they do for v1 frames.

use std::collections::HashMap;

use semrec_core::{Community, ProfileStore, Recommender, SharedModel};
use semrec_profiles::ProfileSlab;
use semrec_taxonomy::{Catalog, Taxonomy, TopicId};
use semrec_trust::CsrGraph;
use semrec_web::extract::ExtractedAgent;

use crate::codec::{fnv1a64, Reader, Writer};
use crate::error::{Error, Result};
use crate::snapshot::{
    decode_config, decode_health, decode_taxonomy, encode_config, encode_health, encode_taxonomy,
    RestoredModel, SNAPSHOT_MAGIC,
};

/// The arena snapshot format version.
pub const SNAPSHOT_V2: u32 = 2;

/// Reads the format version out of a framed snapshot without validating
/// the rest, so the loader can dispatch v1/v2. `None` when the bytes are
/// too short or the magic is wrong (callers then fall through to the v1
/// decoder for its typed error).
pub fn sniff_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")))
}

/// Deduplicating string table builder: every URI, product identifier,
/// title and string reference is written once; arenas reference it by
/// `u32` index.
#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.map.get(s) {
            return idx;
        }
        let idx = u32::try_from(self.strings.len()).expect("string table exceeds u32");
        self.map.insert(s.to_owned(), idx);
        self.strings.push(s.to_owned());
        idx
    }
}

/// Encodes the full model state in arena layout (format v2).
pub fn encode_v2(engine: &Recommender, view: &[ExtractedAgent], epoch: u64) -> Vec<u8> {
    let shared = engine.shared();
    let community = shared.community();
    let catalog = &community.catalog;
    let mut table = Interner::default();

    // Intern agent URIs first (in agent-id order), then everything else —
    // keeps the hot lookups early in the table but nothing depends on it.
    let agent_uri_idx: Vec<u32> = community
        .agents()
        .map(|a| table.intern(&community.agent(a).expect("iterated id").uri))
        .collect();

    let mut product_ident_idx = Vec::with_capacity(catalog.len());
    let mut product_title_idx = Vec::with_capacity(catalog.len());
    let mut descriptor_offsets = Vec::with_capacity(catalog.len() + 1);
    let mut descriptors = Vec::new();
    descriptor_offsets.push(0u32);
    for id in catalog.iter() {
        let p = catalog.product(id);
        product_ident_idx.push(table.intern(&p.identifier));
        product_title_idx.push(table.intern(&p.title));
        descriptors.extend(catalog.descriptors(id).iter().map(|d| d.index() as u32));
        descriptor_offsets.push(descriptors.len() as u32);
    }

    // The standing extraction view, flattened to CSR arenas over the table.
    let n_view = view.len();
    let mut view_uri_idx = Vec::with_capacity(n_view);
    let (mut trust_off, mut trust_idx, mut trust_w) = (vec![0u32], Vec::new(), Vec::new());
    let (mut rate_off, mut rate_idx, mut rate_v) = (vec![0u32], Vec::new(), Vec::new());
    let (mut knows_off, mut knows_idx) = (vec![0u32], Vec::new());
    let (mut see_off, mut see_idx) = (vec![0u32], Vec::new());
    for agent in view {
        view_uri_idx.push(table.intern(&agent.uri));
        for (who, w) in &agent.trust {
            trust_idx.push(table.intern(who));
            trust_w.push(*w);
        }
        trust_off.push(trust_idx.len() as u32);
        for (what, v) in &agent.ratings {
            rate_idx.push(table.intern(what));
            rate_v.push(*v);
        }
        rate_off.push(rate_idx.len() as u32);
        for k in &agent.knows {
            knows_idx.push(table.intern(k));
        }
        knows_off.push(knows_idx.len() as u32);
        for s in &agent.see_also {
            see_idx.push(table.intern(s));
        }
        see_off.push(see_idx.len() as u32);
    }

    let mut w = Writer::new();
    w.put_raw(SNAPSHOT_MAGIC);
    w.put_u32(SNAPSHOT_V2);
    w.put_u64(epoch);
    encode_health(&mut w, engine.source_health());
    encode_config(&mut w, engine.config());
    encode_taxonomy(&mut w, &community.taxonomy.to_parts());

    // String table.
    let mut offsets = Vec::with_capacity(table.strings.len() + 1);
    let mut blob_len = 0u32;
    offsets.push(0u32);
    for s in &table.strings {
        blob_len += s.len() as u32;
        offsets.push(blob_len);
    }
    w.put_u32_arena(&offsets);
    w.put_len(blob_len as usize);
    for s in &table.strings {
        w.put_raw(s.as_bytes());
    }

    // Products.
    w.put_len(catalog.len());
    w.put_u32_arena(&product_ident_idx);
    w.put_u32_arena(&product_title_idx);
    w.put_u32_arena(&descriptor_offsets);
    w.put_u32_arena(&descriptors);

    // Extraction view, as one byte-length-prefixed section: the length is
    // only known after writing, so a placeholder is patched afterwards. The
    // prefix lets the decoder hand the whole section to a helper thread and
    // move straight on to the model arenas.
    let view_len_at = w.offset();
    w.put_len(0);
    let view_start = w.offset();
    w.put_len(n_view);
    w.put_u32_arena(&view_uri_idx);
    w.put_u32_arena(&trust_off);
    w.put_u32_arena(&trust_idx);
    w.put_f64_arena(&trust_w);
    w.put_u32_arena(&rate_off);
    w.put_u32_arena(&rate_idx);
    w.put_f64_arena(&rate_v);
    w.put_u32_arena(&knows_off);
    w.put_u32_arena(&knows_idx);
    w.put_u32_arena(&see_off);
    w.put_u32_arena(&see_idx);
    w.patch_u64(view_len_at, (w.offset() - view_start) as u64);

    // Model arenas: agent URIs, trust CSR, rating CSR, profile slab —
    // written exactly as resident in memory.
    w.put_u32_arena(&agent_uri_idx);
    let csr = shared.trust_csr();
    let (out_off, out_tgt, out_w, in_off, in_src) = csr.arenas();
    w.put_u32_arena(out_off);
    w.put_u32_arena(out_tgt);
    w.put_f64_arena(out_w);
    w.put_u32_arena(in_off);
    w.put_u32_arena(in_src);
    let (r_off, r_prod, r_val) = community.rating_arenas();
    w.put_u32_arena(&r_off);
    w.put_u32_arena(&r_prod);
    w.put_f64_arena(&r_val);
    let (p_off, p_top, p_sco) = engine.profiles().slab().arenas();
    w.put_u32_arena(p_off);
    w.put_u32_arena(p_top);
    w.put_f64_arena(p_sco);

    let checksum = fnv1a64(w.as_bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// True when the host exposes more than one CPU. On a single CPU the
/// scoped-thread overlap in [`decode_v2`] only adds contention, so the
/// decoder falls back to a strictly serial pass (checksum first, exactly
/// like the v1 frame check).
fn parallel_host() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
}

fn corrupt(what: &'static str) -> Error {
    Error::Corrupt(what.into())
}

/// Looks a string reference up in the decoded table. The table borrows
/// straight from the snapshot's UTF-8 blob — nothing is copied until a
/// string lands in an owned model structure.
fn str_at<'t>(table: &[&'t str], idx: u32) -> Result<&'t str> {
    table.get(idx as usize).copied().ok_or_else(|| corrupt("string index out of table bounds"))
}

/// Validates a CSR offset arena against the arena it indexes.
fn check_offsets(offsets: &[u32], lists: usize, arena_len: usize) -> Result<()> {
    if offsets.len() != lists + 1 {
        return Err(corrupt("offset arena has wrong length"));
    }
    if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != arena_len {
        return Err(corrupt("offset arena does not span its arena"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("offset arena is not monotone"));
    }
    Ok(())
}

/// Rebuilds `Vec<Vec<(String, f64)>>` lists from CSR arenas.
fn scored_lists(
    table: &[&str],
    offsets: &[u32],
    indexes: &[u32],
    values: &[f64],
    lists: usize,
) -> Result<Vec<Vec<(String, f64)>>> {
    if indexes.len() != values.len() {
        return Err(corrupt("scored-list index and value arenas differ in length"));
    }
    check_offsets(offsets, lists, indexes.len())?;
    let mut out = Vec::with_capacity(lists);
    for w in offsets.windows(2) {
        let range = w[0] as usize..w[1] as usize;
        let mut list = Vec::with_capacity(range.len());
        for (&idx, &v) in indexes[range.clone()].iter().zip(&values[range]) {
            list.push((str_at(table, idx)?.to_owned(), v));
        }
        out.push(list);
    }
    Ok(out)
}

/// Rebuilds `Vec<Vec<String>>` lists from CSR arenas.
fn string_lists(
    table: &[&str],
    offsets: &[u32],
    indexes: &[u32],
    lists: usize,
) -> Result<Vec<Vec<String>>> {
    check_offsets(offsets, lists, indexes.len())?;
    let mut out = Vec::with_capacity(lists);
    for w in offsets.windows(2) {
        let mut list = Vec::with_capacity((w[1] - w[0]) as usize);
        for &idx in &indexes[w[0] as usize..w[1] as usize] {
            list.push(str_at(table, idx)?.to_owned());
        }
        out.push(list);
    }
    Ok(out)
}

/// Decodes the byte-length-prefixed view section into the standing
/// extraction view. On multi-CPU hosts this runs on a helper thread
/// during [`decode_v2`]: it is the one part of the load that still
/// materializes per-agent `String` lists, so it overlaps the arena
/// adoption on the main thread.
fn decode_view(bytes: &[u8], base: usize, table: &[&str]) -> Result<Vec<ExtractedAgent>> {
    let mut r = Reader::with_base(bytes, "snapshot-v2 view", base);
    let n_view = r.get_len()?;
    let view_uri_idx = r.get_u32_arena()?;
    let trust_off = r.get_u32_arena()?;
    let trust_idx = r.get_u32_arena()?;
    let trust_w = r.get_f64_arena()?;
    let rate_off = r.get_u32_arena()?;
    let rate_idx = r.get_u32_arena()?;
    let rate_v = r.get_f64_arena()?;
    let knows_off = r.get_u32_arena()?;
    let knows_idx = r.get_u32_arena()?;
    let see_off = r.get_u32_arena()?;
    let see_idx = r.get_u32_arena()?;
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes after snapshot-v2 view section"));
    }
    if view_uri_idx.len() != n_view {
        return Err(corrupt("view URI arena has wrong length"));
    }
    let trust_lists = scored_lists(table, &trust_off, &trust_idx, &trust_w, n_view)?;
    let rating_lists = scored_lists(table, &rate_off, &rate_idx, &rate_v, n_view)?;
    let knows_lists = string_lists(table, &knows_off, &knows_idx, n_view)?;
    let see_lists = string_lists(table, &see_off, &see_idx, n_view)?;
    let mut view = Vec::with_capacity(n_view);
    for ((((uri_idx, trust), ratings), knows), see_also) in view_uri_idx
        .iter()
        .zip(trust_lists)
        .zip(rating_lists)
        .zip(knows_lists)
        .zip(see_lists)
    {
        view.push(ExtractedAgent {
            uri: str_at(table, *uri_idx)?.to_owned(),
            trust,
            ratings,
            knows,
            see_also,
        });
    }
    Ok(view)
}

/// Rebuilds the taxonomy and catalog from their decoded arenas. On
/// multi-CPU hosts this runs on a helper thread during [`decode_v2`].
fn build_catalog(
    taxonomy_parts: semrec_taxonomy::TaxonomyParts,
    table: &[&str],
    n_products: usize,
    product_ident_idx: &[u32],
    product_title_idx: &[u32],
    descriptor_offsets: &[u32],
    descriptors: &[u32],
) -> Result<(Taxonomy, Catalog)> {
    let taxonomy =
        Taxonomy::from_parts(taxonomy_parts).map_err(|e| Error::Corrupt(e.to_string()))?;
    let mut catalog = Catalog::new();
    for i in 0..n_products {
        let range = descriptor_offsets[i] as usize..descriptor_offsets[i + 1] as usize;
        let descs = descriptors[range].iter().map(|&d| TopicId::from_index(d as usize)).collect();
        catalog
            .add_product(
                &taxonomy,
                str_at(table, product_ident_idx[i])?.to_owned(),
                str_at(table, product_title_idx[i])?.to_owned(),
                descs,
            )
            .map_err(|e| Error::Corrupt(e.to_string()))?;
    }
    Ok((taxonomy, catalog))
}

/// Reads and validates the model arenas — agent URIs, trust CSR, rating
/// CSR, profile slab — off the body reader. Pure bulk copies plus
/// structural validation; no float is re-derived and nothing is re-sorted.
#[allow(clippy::type_complexity)]
fn decode_model(
    r: &mut Reader<'_>,
    table: &[&str],
) -> Result<(Vec<String>, CsrGraph, ProfileSlab, Vec<u32>, Vec<u32>, Vec<f64>)> {
    let agent_uri_idx = r.get_u32_arena()?;
    let out_off = r.get_u32_arena()?;
    let out_tgt = r.get_u32_arena()?;
    let out_w = r.get_f64_arena()?;
    let in_off = r.get_u32_arena()?;
    let in_src = r.get_u32_arena()?;
    let r_off = r.get_u32_arena()?;
    let r_prod = r.get_u32_arena()?;
    let r_val = r.get_f64_arena()?;
    let p_off = r.get_u32_arena()?;
    let p_top = r.get_u32_arena()?;
    let p_sco = r.get_f64_arena()?;
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes after snapshot-v2 body"));
    }
    let mut uris = Vec::with_capacity(agent_uri_idx.len());
    for &idx in &agent_uri_idx {
        uris.push(str_at(table, idx)?.to_owned());
    }
    let csr = CsrGraph::from_parts(out_off, out_tgt, out_w, in_off, in_src)
        .map_err(|e| Error::Corrupt(e.to_string()))?;
    let slab = ProfileSlab::from_parts(p_off, p_top, p_sco)
        .map_err(|what| Error::Corrupt(format!("profile slab: {what}")))?;
    Ok((uris, csr, slab, r_off, r_prod, r_val))
}

/// Decodes a v2 snapshot straight into a live [`RestoredModel`].
///
/// The model arenas are adopted as-is after structural validation —
/// community and profiles are *not* re-derived from the extraction view,
/// which is what makes the v2 load path fast: `CommunityBuilder` and
/// `ProfileVector::from_pairs` never run. On hosts with more than one CPU,
/// three independent pieces of the load overlap on scoped threads: the
/// whole-file checksum, the catalog/taxonomy rebuild, and the
/// extraction-view `String` lists; a checksum mismatch takes precedence
/// over any structural decode error, so a bit-flipped snapshot always
/// reports [`Error::ChecksumMismatch`] exactly as v1 does. On a single
/// CPU the same steps run serially, checksum first.
pub fn decode_v2(bytes: &[u8]) -> Result<RestoredModel> {
    // The same frame gauntlet as `check_frame`; the checksum is either
    // verified up front (serial) or deferred onto a helper thread so it
    // overlaps body decoding (parallel).
    if bytes.len() < 8 {
        return Err(Error::Truncated { context: "snapshot-v2" });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(Error::BadMagic { expected: SNAPSHOT_MAGIC, found });
    }
    if bytes.len() < 8 + 4 + 8 {
        return Err(Error::Truncated { context: "snapshot-v2" });
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if found != SNAPSHOT_V2 {
        return Err(Error::BadVersion { expected: SNAPSHOT_V2, found });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));

    if parallel_host() {
        let (decoded, computed) = std::thread::scope(|s| {
            let checksum = s.spawn(|| fnv1a64(&bytes[..body_end]));
            (decode_body(&bytes[12..body_end], true), checksum.join().expect("checksum thread"))
        });
        if computed != stored {
            return Err(Error::ChecksumMismatch { computed, stored });
        }
        decoded
    } else {
        let computed = fnv1a64(&bytes[..body_end]);
        if computed != stored {
            return Err(Error::ChecksumMismatch { computed, stored });
        }
        decode_body(&bytes[12..body_end], false)
    }
}

/// The body decode behind [`decode_v2`], over the already-unframed
/// payload. With `overlap` the catalog rebuild and the view decode run on
/// scoped helper threads (the caller is concurrently checksumming);
/// without it the same steps run inline in the same order.
fn decode_body(payload: &[u8], overlap: bool) -> Result<RestoredModel> {
    let mut r = Reader::with_base(payload, "snapshot-v2 body", 12);
    let epoch = r.get_u64()?;
    let health = decode_health(&mut r)?;
    let config = decode_config(&mut r)?;
    let taxonomy_parts = decode_taxonomy(&mut r)?;

    // String table: one UTF-8 validation over the whole blob, then the
    // table borrows slices of it — no per-string copy.
    let str_offsets = r.get_u32_arena()?;
    let blob_len = r.get_len()?;
    let blob = std::str::from_utf8(r.take_raw(blob_len)?)
        .map_err(|_| corrupt("string table blob is not UTF-8"))?;
    if str_offsets.is_empty() {
        return Err(corrupt("string table offsets are empty"));
    }
    check_offsets(&str_offsets, str_offsets.len() - 1, blob.len())?;
    let mut table: Vec<&str> = Vec::with_capacity(str_offsets.len() - 1);
    for w in str_offsets.windows(2) {
        let s = blob
            .get(w[0] as usize..w[1] as usize)
            .ok_or_else(|| corrupt("string table offset splits a UTF-8 sequence"))?;
        table.push(s);
    }

    // Product arenas (cheap reads; catalog assembly may happen on a thread).
    let n_products = r.get_len()?;
    let product_ident_idx = r.get_u32_arena()?;
    let product_title_idx = r.get_u32_arena()?;
    let descriptor_offsets = r.get_u32_arena()?;
    let descriptors = r.get_u32_arena()?;
    if product_ident_idx.len() != n_products || product_title_idx.len() != n_products {
        return Err(corrupt("product index arenas have wrong length"));
    }
    check_offsets(&descriptor_offsets, n_products, descriptors.len())?;

    // View section: slice it out by its byte length so a helper thread can
    // decode it while this thread adopts the model arenas.
    let view_len = r.get_len()?;
    let view_base = 12 + r.position();
    let view_bytes = r.take_raw(view_len)?;

    let (catalog_res, view_res, model_res) = if overlap {
        std::thread::scope(|s| {
            let catalog_thread = s.spawn(|| {
                build_catalog(
                    taxonomy_parts,
                    &table,
                    n_products,
                    &product_ident_idx,
                    &product_title_idx,
                    &descriptor_offsets,
                    &descriptors,
                )
            });
            let view_thread = s.spawn(|| decode_view(view_bytes, view_base, &table));
            let model = decode_model(&mut r, &table);
            (
                catalog_thread.join().expect("catalog thread panicked"),
                view_thread.join().expect("view thread panicked"),
                model,
            )
        })
    } else {
        (
            build_catalog(
                taxonomy_parts,
                &table,
                n_products,
                &product_ident_idx,
                &product_title_idx,
                &descriptor_offsets,
                &descriptors,
            ),
            decode_view(view_bytes, view_base, &table),
            decode_model(&mut r, &table),
        )
    };
    let (taxonomy, catalog) = catalog_res?;
    let view = view_res?;
    let (uris, csr, slab, r_off, r_prod, r_val) = model_res?;

    let community =
        Community::from_arenas(taxonomy, catalog, uris, csr.to_graph(), &r_off, &r_prod, &r_val)
            .map_err(|e| Error::Corrupt(e.to_string()))?;
    if slab.len() != community.agent_count() {
        return Err(Error::Corrupt(format!(
            "{} profiles for {} agents",
            slab.len(),
            community.agent_count()
        )));
    }
    let profiles = ProfileStore::from_slab(slab, config.profile);
    // The decoded trust CSR *is* the resident one — hand it over instead
    // of re-deriving it from the adjacency graph.
    let model = SharedModel::from_parts_with_trust_csr(community, profiles, config, health, csr);
    Ok(RestoredModel { engine: Recommender::from_shared(std::sync::Arc::new(model)), view, epoch })
}

#[cfg(test)]
mod tests {
    use semrec_core::RecommenderConfig;
    use semrec_taxonomy::fixtures::example1;
    use semrec_web::crawler::CommunityBuilder;

    use super::*;
    use crate::snapshot::Checkpoint;

    fn agent(i: usize, trust: &[(usize, f64)], ratings: &[(&str, f64)]) -> ExtractedAgent {
        ExtractedAgent {
            uri: format!("http://ex.org/u{i}"),
            trust: trust.iter().map(|&(j, v)| (format!("http://ex.org/u{j}"), v)).collect(),
            ratings: ratings.iter().map(|&(p, v)| (p.to_owned(), v)).collect(),
            knows: trust.iter().map(|&(j, _)| format!("http://ex.org/u{j}")).collect(),
            see_also: vec![format!("http://ex.org/u{}", (i + 2) % 6)],
        }
    }

    fn world() -> (Recommender, Vec<ExtractedAgent>) {
        let e = example1();
        let ids: Vec<String> =
            e.catalog.iter().map(|p| e.catalog.product(p).identifier.clone()).collect();
        let view: Vec<ExtractedAgent> = (0..6)
            .map(|i| {
                agent(
                    i,
                    &[((i + 1) % 6, 0.9), ((i + 3) % 6, -0.4)],
                    &[(ids[i % ids.len()].as_str(), 1.0), (ids[(i + 1) % ids.len()].as_str(), -0.5)],
                )
            })
            .collect();
        let (community, _) = CommunityBuilder::new(&view).build(e.fig.taxonomy, e.catalog);
        (Recommender::new(community, RecommenderConfig::default()), view)
    }

    fn render(engine: &Recommender) -> String {
        let mut out = String::new();
        for a in engine.community().agents() {
            out.push_str(&format!("{a:?}:"));
            for rec in engine.recommend(a, 10).expect("recommendation succeeds") {
                out.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn v2_round_trip_is_byte_identical() {
        let (engine, view) = world();
        let bytes = encode_v2(&engine, &view, 7);
        assert_eq!(sniff_version(&bytes), Some(SNAPSHOT_V2));
        let restored = decode_v2(&bytes).expect("v2 decodes");
        assert_eq!(restored.epoch, 7);
        assert_eq!(restored.view, view);
        assert_eq!(render(&restored.engine), render(&engine));
    }

    #[test]
    fn v2_restore_matches_v1_restore_bit_for_bit() {
        let (engine, view) = world();
        let v1 = Checkpoint::capture(&engine, &view, 2).encode();
        let v2 = encode_v2(&engine, &view, 2);
        let from_v1 = Checkpoint::decode(&v1).unwrap().restore().unwrap();
        let from_v2 = decode_v2(&v2).unwrap();
        assert_eq!(from_v1.epoch, from_v2.epoch);
        assert_eq!(from_v1.view, from_v2.view);
        assert_eq!(render(&from_v1.engine), render(&from_v2.engine));
    }

    #[test]
    fn v2_encoding_is_deterministic() {
        let (engine, view) = world();
        assert_eq!(encode_v2(&engine, &view, 1), encode_v2(&engine, &view, 1));
    }

    #[test]
    fn every_single_byte_mutation_of_a_v2_snapshot_is_typed_never_a_panic() {
        let (engine, view) = world();
        let bytes = encode_v2(&engine, &view, 1);
        for cut in 0..bytes.len() {
            let _ = decode_v2(&bytes[..cut]);
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x04;
            assert!(decode_v2(&mutated).is_err(), "byte {i} flip went unnoticed");
        }
    }

    #[test]
    fn sniff_version_reads_the_header_only() {
        let (engine, view) = world();
        let v2 = encode_v2(&engine, &view, 1);
        let v1 = Checkpoint::capture(&engine, &view, 1).encode();
        assert_eq!(sniff_version(&v2), Some(SNAPSHOT_V2));
        assert_eq!(sniff_version(&v1), Some(crate::snapshot::SNAPSHOT_VERSION));
        assert_eq!(sniff_version(b"NOTMAGICxxxx"), None);
        assert_eq!(sniff_version(&v2[..11]), None);
    }

    #[test]
    fn arenas_are_eight_byte_aligned_in_the_file() {
        // The alignment contract is what would let a future reader cast
        // arenas in place; verify the padding math held for every arena by
        // decoding successfully (misaligned padding would shear every
        // subsequent field) and spot-check the first arena's offset.
        let (engine, view) = world();
        let bytes = encode_v2(&engine, &view, 1);
        assert!(decode_v2(&bytes).is_ok());
        assert_eq!(bytes.len() % 8, 0, "trailer leaves the file 8-byte aligned");
    }
}
