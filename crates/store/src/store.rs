//! The on-disk store: snapshot files, their companion WALs, recovery, and
//! compaction.
//!
//! A store directory holds numbered generations:
//!
//! ```text
//! store/
//!   snapshot-000001.bin   wal-000001.log
//!   snapshot-000002.bin   wal-000002.log   ← newest pair: the live one
//! ```
//!
//! [`Store::checkpoint`] cuts `snapshot-<seq+1>.bin` (written to a temp
//! file and renamed, so a crash mid-write never leaves a half snapshot
//! under the live name) plus a fresh empty `wal-<seq+1>.log`; refreshes
//! then [`Store::append_delta`] onto that WAL. [`Store::recover`] walks
//! snapshots newest-first, skipping corrupt ones with a typed error and a
//! `store.recovery.fallback` bump, then replays the surviving snapshot's
//! WAL through the exact live-refresh code path
//! (`CommunityBuilder::apply_delta` → `build` → `Recommender::advance`).
//! [`Store::compact_if_needed`] folds a WAL that outgrew the
//! [`CompactionPolicy`] into a fresh snapshot.
//!
//! Everything observable lands under the `store.*` metric namespace (see
//! the README's persistence metric table).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use semrec_core::Recommender;
use semrec_web::crawler::CommunityBuilder;
use semrec_web::delta::CrawlDelta;
use semrec_web::extract::ExtractedAgent;
use semrec_core::SourceHealth;

use crate::arena::{decode_v2, encode_v2, sniff_version, SNAPSHOT_V2};
use crate::error::{Error, Result};
use crate::snapshot::{Checkpoint, RestoredModel, SNAPSHOT_VERSION};
use crate::wal::{decode_wal, encode_record, wal_header, WalRecord};

/// When to fold the live WAL into a fresh snapshot.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Compact once the WAL exceeds this many bytes, regardless of the
    /// snapshot's size.
    pub max_wal_bytes: u64,
    /// Compact once `wal bytes / snapshot bytes` exceeds this ratio —
    /// past it, replay work rivals a snapshot load and the log has
    /// stopped paying for itself.
    pub max_wal_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { max_wal_bytes: 1 << 22, max_wal_ratio: 0.5 }
    }
}

/// Outcome of one [`Store::checkpoint`] (or compaction).
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// The generation number the snapshot was written as.
    pub seq: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Path of the snapshot file.
    pub path: PathBuf,
}

/// Outcome of one [`Store::recover`].
#[derive(Debug)]
pub struct Recovery {
    /// The recovered engine, advanced through every replayed WAL record.
    pub engine: Recommender,
    /// The standing extraction view after replay (feed to the next
    /// refresh).
    pub view: Vec<ExtractedAgent>,
    /// The serve epoch to warm-start at: the persisted epoch plus one per
    /// replayed record, since each appended refresh corresponds to one
    /// snapshot publish on the node that wrote the log.
    pub epoch: u64,
    /// Which snapshot generation answered.
    pub snapshot_seq: u64,
    /// The serve epoch stored in that snapshot (before replay).
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Snapshots that failed to load, newest first, with the typed reason.
    /// Non-empty means recovery fell back at least once.
    pub skipped: Vec<(u64, Error)>,
    /// Why WAL replay stopped early (torn tail, or header damage that
    /// dropped the whole log), if it did.
    pub wal_error: Option<Error>,
}

impl Recovery {
    /// True when recovery had to fall back past a corrupt snapshot or
    /// drop a corrupt WAL.
    pub fn degraded(&self) -> bool {
        !self.skipped.is_empty() || self.wal_error.is_some()
    }
}

/// A durable checkpoint + WAL store rooted at one directory.
#[derive(Clone, Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a generation's snapshot file.
    pub fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:06}.bin"))
    }

    /// Path of a generation's WAL file.
    pub fn wal_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("wal-{seq:06}.log"))
    }

    /// Every snapshot generation present, ascending.
    pub fn snapshot_seqs(&self) -> Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("snapshot-")
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// The newest snapshot generation, if any.
    pub fn latest_seq(&self) -> Result<Option<u64>> {
        Ok(self.snapshot_seqs()?.last().copied())
    }

    /// Captures and durably writes the model as the next snapshot
    /// generation, with a fresh empty WAL beside it.
    ///
    /// Writes snapshot format v2: the model's flat arenas verbatim (see
    /// [`crate::arena`]), so recovery adopts them with bulk copies instead
    /// of re-deriving the model per record. [`Store::recover`] still reads
    /// v1 snapshots written by earlier builds.
    ///
    /// Bumps `store.snapshot.write` / `store.snapshot.write.bytes` under a
    /// `store.snapshot.write` span.
    pub fn checkpoint(
        &self,
        engine: &Recommender,
        view: &[ExtractedAgent],
        epoch: u64,
    ) -> Result<CheckpointReport> {
        let _span = semrec_obs::span("store.snapshot.write");
        let seq = self.latest_seq()?.unwrap_or(0) + 1;
        let bytes = encode_v2(engine, view, epoch);

        let path = self.snapshot_path(seq);
        write_atomically(&path, &bytes)?;
        write_atomically(&self.wal_path(seq), &wal_header())?;

        semrec_obs::counter("store.snapshot.write").inc();
        semrec_obs::counter("store.snapshot.write.bytes").add(bytes.len() as u64);
        Ok(CheckpointReport { seq, snapshot_bytes: bytes.len() as u64, path })
    }

    /// Appends one refresh — its emitted [`CrawlDelta`] and post-refresh
    /// [`SourceHealth`] — to the newest generation's WAL. Returns the
    /// record's sequence number within the log.
    ///
    /// This is how the `semrec-web` refresh path persists its delta: the
    /// caller that ran `refresh`/`refresh_resilient` hands the
    /// `CrawlResult`'s delta and health straight here (see the CLI's
    /// `store-bench` and experiment E18). Bumps `store.wal.appended` /
    /// `store.wal.appended.bytes`.
    pub fn append_delta(&self, delta: &CrawlDelta, health: &SourceHealth) -> Result<u64> {
        let seq = self.latest_seq()?.ok_or(Error::NoSnapshot)?;
        let path = self.wal_path(seq);
        let existing = if path.exists() { count_records(&fs::read(&path)?)? } else { 0 };
        let record = WalRecord { seq: existing + 1, delta: delta.clone(), health: *health };
        let framed = encode_record(&record);
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&path)?;
        if existing == 0 && file.metadata()?.len() == 0 {
            file.write_all(&wal_header())?;
        }
        file.write_all(&framed)?;
        file.sync_all()?;
        semrec_obs::counter("store.wal.appended").inc();
        semrec_obs::counter("store.wal.appended.bytes").add(framed.len() as u64);
        Ok(record.seq)
    }

    /// Recovers the model: newest loadable snapshot + WAL replay.
    ///
    /// Snapshots that fail to read, decode, or restore are skipped with
    /// their typed error ([`Recovery::skipped`]) and a
    /// `store.recovery.fallback` bump. The surviving snapshot's WAL is
    /// replayed through the live refresh code path; a torn tail replays
    /// the valid prefix and a header-corrupt WAL replays nothing, either
    /// way surfacing the typed cause in [`Recovery::wal_error`] (the
    /// latter also counts as a fallback — snapshot+WAL degraded to
    /// snapshot-only). Errs with [`Error::NoSnapshot`] when no generation
    /// is loadable at all.
    ///
    /// Bumps `store.snapshot.load` / `store.snapshot.load.bytes` and one
    /// `store.wal.replayed` per replayed record, under `store.recovery`.
    pub fn recover(&self) -> Result<Recovery> {
        let _span = semrec_obs::span("store.recovery");
        let mut skipped = Vec::new();
        let mut seqs = self.snapshot_seqs()?;
        seqs.reverse();
        if seqs.is_empty() {
            return Err(Error::NoSnapshot);
        }
        for seq in seqs {
            match self.load_snapshot(seq) {
                Ok(restored) => return self.replay(seq, restored, skipped),
                Err(e) => {
                    semrec_obs::counter("store.recovery.fallback").inc();
                    skipped.push((seq, e));
                }
            }
        }
        Err(Error::NoSnapshot)
    }

    /// Loads one snapshot generation straight into a live model,
    /// dispatching on the format version in the frame header: v2 arenas
    /// decode directly ([`decode_v2`]), v1 goes through
    /// `Checkpoint::decode().restore()`. Unknown versions are a typed
    /// [`Error::BadVersion`]; bytes too damaged to carry a version fall
    /// through to the v1 decoder for its magic/truncation errors.
    fn load_snapshot(&self, seq: u64) -> Result<RestoredModel> {
        let _span = semrec_obs::span("store.snapshot.load");
        let bytes = fs::read(self.snapshot_path(seq))?;
        let restored = match sniff_version(&bytes) {
            Some(SNAPSHOT_V2) => decode_v2(&bytes)?,
            Some(SNAPSHOT_VERSION) | None => Checkpoint::decode(&bytes)?.restore()?,
            Some(found) => return Err(Error::BadVersion { expected: SNAPSHOT_V2, found }),
        };
        semrec_obs::counter("store.snapshot.load").inc();
        semrec_obs::counter("store.snapshot.load.bytes").add(bytes.len() as u64);
        Ok(restored)
    }

    fn replay(
        &self,
        seq: u64,
        restored: RestoredModel,
        skipped: Vec<(u64, Error)>,
    ) -> Result<Recovery> {
        let snapshot_epoch = restored.epoch;
        let mut engine = restored.engine;
        let mut view = restored.view;

        let wal_path = self.wal_path(seq);
        let (records, mut wal_error) = if wal_path.exists() {
            match decode_wal(&fs::read(&wal_path)?) {
                Ok(readout) => (readout.records, readout.torn),
                Err(fatal) => {
                    // The whole log is untrusted: snapshot-only recovery.
                    semrec_obs::counter("store.recovery.fallback").inc();
                    (Vec::new(), Some(fatal))
                }
            }
        } else {
            (Vec::new(), None)
        };

        let mut replayed = 0;
        for record in &records {
            let _span = semrec_obs::span("store.wal.replay");
            let mut builder = CommunityBuilder::new(&view);
            builder.apply_delta(&record.delta);
            let community = engine.community();
            let (next, _stats) =
                builder.build(community.taxonomy.clone(), community.catalog.clone());
            let (advanced, _stats) = engine.advance(next, &record.delta.model_delta(), record.health);
            engine = advanced;
            view = builder.agents().to_vec();
            replayed += 1;
            semrec_obs::counter("store.wal.replayed").inc();
        }
        // Surface out-of-order sequence numbers as corruption even when
        // every checksum passed (e.g. records spliced between logs).
        if wal_error.is_none() {
            if let Some(position) =
                records.iter().enumerate().find(|(i, r)| r.seq != *i as u64 + 1)
            {
                wal_error = Some(Error::Corrupt(format!(
                    "wal record {} carries sequence {}",
                    position.0 + 1,
                    position.1.seq
                )));
            }
        }

        Ok(Recovery {
            engine,
            view,
            epoch: snapshot_epoch + replayed as u64,
            snapshot_seq: seq,
            snapshot_epoch,
            replayed: replayed as usize,
            skipped,
            wal_error,
        })
    }

    /// Bytes of the newest generation's WAL (0 when absent).
    pub fn wal_bytes(&self) -> Result<u64> {
        match self.latest_seq()? {
            Some(seq) => file_len(&self.wal_path(seq)),
            None => Ok(0),
        }
    }

    /// Bytes of the newest snapshot (0 when absent).
    pub fn snapshot_bytes(&self) -> Result<u64> {
        match self.latest_seq()? {
            Some(seq) => file_len(&self.snapshot_path(seq)),
            None => Ok(0),
        }
    }

    /// True when the newest WAL has outgrown the policy.
    pub fn should_compact(&self, policy: &CompactionPolicy) -> Result<bool> {
        let wal = self.wal_bytes()?;
        if wal > policy.max_wal_bytes {
            return Ok(true);
        }
        let snapshot = self.snapshot_bytes()?;
        Ok(snapshot > 0 && wal as f64 / snapshot as f64 > policy.max_wal_ratio)
    }

    /// Folds the live state (the caller's current engine/view/epoch —
    /// i.e. the WAL already applied) into a fresh snapshot generation
    /// with an empty WAL, if the policy says the log has grown too long.
    ///
    /// Bumps `store.wal.compacted` when it compacts.
    pub fn compact_if_needed(
        &self,
        engine: &Recommender,
        view: &[ExtractedAgent],
        epoch: u64,
        policy: &CompactionPolicy,
    ) -> Result<Option<CheckpointReport>> {
        if !self.should_compact(policy)? {
            return Ok(None);
        }
        let report = self.checkpoint(engine, view, epoch)?;
        semrec_obs::counter("store.wal.compacted").inc();
        Ok(Some(report))
    }
}

fn file_len(path: &Path) -> Result<u64> {
    match fs::metadata(path) {
        Ok(meta) => Ok(meta.len()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e.into()),
    }
}

/// Counts intact records in WAL bytes (used to assign append sequence
/// numbers); torn tails and header damage surface as errors upstream, not
/// here — an append onto a torn log would hide the tear, so refuse it.
fn count_records(bytes: &[u8]) -> Result<u64> {
    let readout = decode_wal(bytes)?;
    match readout.torn {
        Some(e) => Err(e),
        None => Ok(readout.records.len() as u64),
    }
}

/// Writes via a temp file + rename, so the target name never holds a
/// partial file. (Same-directory rename keeps it on one filesystem.)
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}
