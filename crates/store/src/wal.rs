//! The append-only write-ahead log of [`CrawlDelta`] records.
//!
//! Between snapshots, every refresh appends one [`WalRecord`]: the typed
//! delta the crawl emitted plus the post-refresh [`SourceHealth`] (which
//! `Recommender::advance` needs to attach to the advanced model). Recovery
//! replays the log in order on top of the snapshot's standing view —
//! `CommunityBuilder::apply_delta` + `build` + `advance` — which is the
//! exact code path a live refresh takes, so a replayed model is
//! byte-identical to the model the appender had.
//!
//! On-disk layout:
//!
//! ```text
//! "SEMRECWL" | version: u32
//! repeated: payload_len: u32 | fnv1a64(payload): u64 | payload
//! ```
//!
//! Each record is independently checksummed, so a crash mid-append leaves
//! a *torn tail*: the valid prefix replays normally and the tail surfaces
//! as a typed error ([`WalReadout::torn`]) instead of poisoning the whole
//! log. Header-level damage (bad magic/version) is fatal for the log and
//! makes recovery fall back to an older snapshot.

use semrec_core::SourceHealth;
use semrec_web::delta::{AgentDiff, CrawlDelta};

use crate::codec::{fnv1a64, Reader, Writer};
use crate::error::{Error, Result};
use crate::snapshot::{
    decode_agent, decode_health, decode_scored_list, decode_string_list, encode_agent,
    encode_health, encode_scored_list, encode_string_list,
};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"SEMRECWL";
/// The WAL format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;

/// One appended refresh: its delta and the post-refresh source health.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Position in the log, starting at 1 after the owning snapshot.
    pub seq: u64,
    /// The typed crawl delta the refresh emitted.
    pub delta: CrawlDelta,
    /// Source health after the refresh (attached to the advanced model).
    pub health: SourceHealth,
}

/// The result of reading a WAL: every intact record in order, plus the
/// typed error describing the torn tail, if any.
#[derive(Debug, Default)]
pub struct WalReadout {
    /// Records whose framing and checksum were intact, in append order.
    pub records: Vec<WalRecord>,
    /// Why reading stopped early (`None` when the log ended cleanly).
    pub torn: Option<Error>,
}

/// The bytes of an empty WAL (header only).
pub fn wal_header() -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(WAL_MAGIC);
    w.put_u32(WAL_VERSION);
    w.into_bytes()
}

/// Serializes one record as a framed, checksummed entry ready to append.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.put_u64(record.seq);
    encode_health(&mut payload, &record.health);
    encode_delta(&mut payload, &record.delta);
    let payload = payload.into_bytes();
    let mut framed = Writer::new();
    framed.put_u32(payload.len() as u32);
    framed.put_u64(fnv1a64(&payload));
    framed.put_raw(&payload);
    framed.into_bytes()
}

/// Reads a whole WAL byte buffer.
///
/// Header damage (short file, bad magic, unsupported version) is a hard
/// `Err` — nothing in the log can be trusted. Record-level damage stops
/// the read at the last intact record, with the valid prefix in
/// [`WalReadout::records`] and the typed cause in [`WalReadout::torn`].
pub fn decode_wal(bytes: &[u8]) -> Result<WalReadout> {
    if bytes.len() < 8 {
        return Err(Error::Truncated { context: "wal header" });
    }
    if &bytes[..8] != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(Error::BadMagic { expected: WAL_MAGIC, found });
    }
    if bytes.len() < 12 {
        return Err(Error::Truncated { context: "wal header" });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(Error::BadVersion { expected: WAL_VERSION, found: version });
    }

    let mut readout = WalReadout::default();
    let mut rest = &bytes[12..];
    while !rest.is_empty() {
        if rest.len() < 12 {
            readout.torn = Some(Error::Truncated { context: "wal record frame" });
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        if rest.len() < 12 + len {
            readout.torn = Some(Error::Truncated { context: "wal record payload" });
            break;
        }
        let payload = &rest[12..12 + len];
        let computed = fnv1a64(payload);
        if computed != stored {
            readout.torn = Some(Error::ChecksumMismatch { computed, stored });
            break;
        }
        match decode_payload(payload) {
            Ok(record) => readout.records.push(record),
            Err(e) => {
                readout.torn = Some(e);
                break;
            }
        }
        rest = &rest[12 + len..];
    }
    Ok(readout)
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload, "wal record");
    let seq = r.get_u64()?;
    let health = decode_health(&mut r)?;
    let delta = decode_delta(&mut r)?;
    if !r.is_exhausted() {
        return Err(Error::Corrupt("trailing bytes after wal record".into()));
    }
    Ok(WalRecord { seq, delta, health })
}

fn put_opt_strings(w: &mut Writer, v: &Option<Vec<String>>) {
    match v {
        Some(list) => {
            w.put_bool(true);
            encode_string_list(w, list);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_strings(r: &mut Reader<'_>) -> Result<Option<Vec<String>>> {
    Ok(if r.get_bool()? { Some(decode_string_list(r)?) } else { None })
}

fn encode_delta(w: &mut Writer, delta: &CrawlDelta) {
    w.put_len(delta.added.len());
    for agent in &delta.added {
        encode_agent(w, agent);
    }
    w.put_len(delta.changed.len());
    for diff in &delta.changed {
        w.put_str(&diff.uri);
        encode_scored_list(w, &diff.trust_set);
        encode_string_list(w, &diff.trust_removed);
        encode_scored_list(w, &diff.ratings_set);
        encode_string_list(w, &diff.ratings_removed);
        put_opt_strings(w, &diff.knows);
        put_opt_strings(w, &diff.see_also);
    }
    encode_string_list(w, &delta.removed);
    w.put_len(delta.unchanged);
}

fn decode_delta(r: &mut Reader<'_>) -> Result<CrawlDelta> {
    let added_count = r.get_len()?;
    let mut added = Vec::with_capacity(added_count);
    for _ in 0..added_count {
        added.push(decode_agent(r)?);
    }
    let changed_count = r.get_len()?;
    let mut changed = Vec::with_capacity(changed_count);
    for _ in 0..changed_count {
        changed.push(AgentDiff {
            uri: r.get_str()?,
            trust_set: decode_scored_list(r)?,
            trust_removed: decode_string_list(r)?,
            ratings_set: decode_scored_list(r)?,
            ratings_removed: decode_string_list(r)?,
            knows: get_opt_strings(r)?,
            see_also: get_opt_strings(r)?,
        });
    }
    let removed = decode_string_list(r)?;
    let unchanged = r.get_u64()? as usize;
    Ok(CrawlDelta { added, changed, removed, unchanged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_web::extract::ExtractedAgent;

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            delta: CrawlDelta {
                added: vec![ExtractedAgent {
                    uri: format!("http://ex.org/new{seq}"),
                    trust: vec![("http://ex.org/a".into(), 0.75)],
                    ratings: vec![("isbn:1".into(), -0.5)],
                    knows: vec!["http://ex.org/a".into()],
                    see_also: vec![],
                }],
                changed: vec![AgentDiff {
                    uri: "http://ex.org/a".into(),
                    trust_set: vec![("http://ex.org/b".into(), 0.25)],
                    trust_removed: vec!["http://ex.org/c".into()],
                    ratings_set: vec![("isbn:2".into(), 1.0)],
                    ratings_removed: vec!["isbn:3".into()],
                    knows: Some(vec!["http://ex.org/b".into()]),
                    see_also: None,
                }],
                removed: vec!["http://ex.org/gone".into()],
                unchanged: 41,
            },
            health: SourceHealth { attempted: 9, fetched: 8, unreachable: 1, ..Default::default() },
        }
    }

    fn log(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = wal_header();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn records_round_trip_exactly() {
        let records = vec![record(1), record(2), record(3)];
        let readout = decode_wal(&log(&records)).unwrap();
        assert!(readout.torn.is_none());
        assert_eq!(readout.records, records);
    }

    #[test]
    fn empty_log_is_just_the_header() {
        let readout = decode_wal(&wal_header()).unwrap();
        assert!(readout.records.is_empty());
        assert!(readout.torn.is_none());
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let bytes = log(&[record(1), record(2)]);
        for cut in [bytes.len() - 1, bytes.len() - 10] {
            let readout = decode_wal(&bytes[..cut]).unwrap();
            assert_eq!(readout.records, vec![record(1)], "cut at {cut}");
            assert!(matches!(readout.torn, Some(Error::Truncated { .. })));
        }
    }

    #[test]
    fn bit_flip_in_a_record_stops_with_checksum_mismatch() {
        let mut bytes = log(&[record(1), record(2)]);
        let flip_at = bytes.len() - 3; // inside record 2's payload
        bytes[flip_at] ^= 0x40;
        let readout = decode_wal(&bytes).unwrap();
        assert_eq!(readout.records, vec![record(1)]);
        assert!(matches!(readout.torn, Some(Error::ChecksumMismatch { .. })));
    }

    #[test]
    fn header_damage_is_fatal() {
        let good = log(&[record(1)]);
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode_wal(&bad_magic), Err(Error::BadMagic { .. })));
        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(matches!(
            decode_wal(&bad_version),
            Err(Error::BadVersion { found: 99, .. })
        ));
        assert!(matches!(decode_wal(&good[..5]), Err(Error::Truncated { .. })));
    }

    #[test]
    fn no_mutation_of_a_small_log_panics() {
        // Exhaustive single-byte corruption: every truncation and every
        // bit-flip must come back as a typed result, never a panic.
        let bytes = log(&[record(1)]);
        for cut in 0..bytes.len() {
            let _ = decode_wal(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            let _ = decode_wal(&mutated);
        }
    }
}
