//! The versioned, checksummed binary snapshot of the full model.
//!
//! A [`Checkpoint`] captures everything a node needs to come back after a
//! restart and answer byte-identically to a node that never went down:
//!
//! * the **standing extraction view** (`Vec<ExtractedAgent>`) — the
//!   crawler-level truth the community is assembled from, so WAL replay
//!   can keep using `CommunityBuilder::apply_delta` with agent-id
//!   numbering preserved;
//! * the **taxonomy** as raw adjacency parts (exact child order — it
//!   feeds float summation order in profile generation) and the
//!   **catalog** (products + descriptors, rebuilt through `add_product`
//!   in id order, which is exact because descriptors are stored sorted);
//! * the **engine configuration** down to every leaf field;
//! * the **source health** of the crawl that produced the view;
//! * the materialized **profiles**, persisted as raw IEEE-754 bits per
//!   `(topic, score)` entry so no float is ever re-derived on load;
//! * the **serve epoch**, so a warm-started server resumes its
//!   epoch-keyed cache semantics instead of restarting at 1.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! "SEMRECSN" | version: u32 | body | fnv1a64(everything preceding): u64
//! ```
//!
//! Decoding checks magic, version, and checksum before touching the body,
//! and every body read is bounds-checked — corrupted input yields a typed
//! [`Error`], never a panic.

use semrec_core::{
    Community, ProfileStore, Recommender, RecommenderConfig, SharedModel, SimilarityMeasure,
    SourceHealth, SynthesisStrategy,
};
use semrec_profiles::ProfileVector;
use semrec_taxonomy::{Catalog, Taxonomy, TaxonomyParts, TopicId};
use semrec_web::crawler::CommunityBuilder;
use semrec_web::extract::ExtractedAgent;

use crate::codec::{fnv1a64, Reader, Writer};
use crate::error::{Error, Result};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SEMRECSN";
/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One serializable capture of the full model state.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The serve epoch the model had reached when captured.
    pub epoch: u64,
    /// Health of the crawl the standing view came from.
    pub health: SourceHealth,
    /// Engine configuration, every leaf field.
    pub config: RecommenderConfig,
    /// Raw taxonomy adjacency (exact stored order).
    pub taxonomy: TaxonomyParts,
    /// Catalog rows: `(identifier, title, descriptor topic indices)`.
    pub products: Vec<(String, String, Vec<u32>)>,
    /// The standing extraction view the community assembles from.
    pub view: Vec<ExtractedAgent>,
    /// Per-agent profiles in agent-id order, entries as
    /// `(topic index, f64 bits)`.
    pub profiles: Vec<Vec<(u32, u64)>>,
}

/// What [`Checkpoint::restore`] hands back: a live engine plus the
/// standing view and serve epoch needed to keep refreshing and serving.
#[derive(Clone, Debug)]
pub struct RestoredModel {
    /// The reassembled engine, answering byte-identically to the captured
    /// one.
    pub engine: Recommender,
    /// The standing extraction view (feed to `CommunityBuilder` on the
    /// next refresh).
    pub view: Vec<ExtractedAgent>,
    /// The serve epoch to warm-start at (`Server::start_at`).
    pub epoch: u64,
}

impl Checkpoint {
    /// Captures the model behind `engine`, its standing extraction
    /// `view`, and the serve `epoch` it is published at.
    pub fn capture(engine: &Recommender, view: &[ExtractedAgent], epoch: u64) -> Checkpoint {
        let community = engine.community();
        let catalog = &community.catalog;
        let products = catalog
            .iter()
            .map(|id| {
                let p = catalog.product(id);
                let descriptors =
                    catalog.descriptors(id).iter().map(|d| d.index() as u32).collect();
                (p.identifier.clone(), p.title.clone(), descriptors)
            })
            .collect();
        let profiles = engine
            .profiles()
            .iter()
            .map(|v| v.iter().map(|(t, s)| (t.index() as u32, s.to_bits())).collect())
            .collect();
        Checkpoint {
            epoch,
            health: *engine.source_health(),
            config: *engine.config(),
            taxonomy: community.taxonomy.to_parts(),
            products,
            view: view.to_vec(),
            profiles,
        }
    }

    /// Serializes to the framed, checksummed byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u64(self.epoch);
        encode_health(&mut w, &self.health);
        encode_config(&mut w, &self.config);
        encode_taxonomy(&mut w, &self.taxonomy);
        w.put_len(self.products.len());
        for (identifier, title, descriptors) in &self.products {
            w.put_str(identifier);
            w.put_str(title);
            w.put_len(descriptors.len());
            for &d in descriptors {
                w.put_u32(d);
            }
        }
        w.put_len(self.view.len());
        for agent in &self.view {
            encode_agent(&mut w, agent);
        }
        w.put_len(self.profiles.len());
        for profile in &self.profiles {
            w.put_len(profile.len());
            for &(topic, bits) in profile {
                w.put_u32(topic);
                w.put_u64(bits);
            }
        }
        let checksum = fnv1a64(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Deserializes bytes produced by [`Checkpoint::encode`], verifying
    /// magic, version, and checksum first.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        let payload = check_frame(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION, "snapshot")?;
        let mut r = Reader::new(payload, "snapshot body");
        let epoch = r.get_u64()?;
        let health = decode_health(&mut r)?;
        let config = decode_config(&mut r)?;
        let taxonomy = decode_taxonomy(&mut r)?;
        let product_count = r.get_len()?;
        let mut products = Vec::with_capacity(product_count);
        for _ in 0..product_count {
            let identifier = r.get_str()?;
            let title = r.get_str()?;
            let descriptor_count = r.get_len()?;
            let mut descriptors = Vec::with_capacity(descriptor_count);
            for _ in 0..descriptor_count {
                descriptors.push(r.get_u32()?);
            }
            products.push((identifier, title, descriptors));
        }
        let agent_count = r.get_len()?;
        let mut view = Vec::with_capacity(agent_count);
        for _ in 0..agent_count {
            view.push(decode_agent(&mut r)?);
        }
        let profile_count = r.get_len()?;
        let mut profiles = Vec::with_capacity(profile_count);
        for _ in 0..profile_count {
            let entry_count = r.get_len()?;
            let mut profile = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let topic = r.get_u32()?;
                let bits = r.get_u64()?;
                profile.push((topic, bits));
            }
            profiles.push(profile);
        }
        if !r.is_exhausted() {
            return Err(Error::Corrupt("trailing bytes after snapshot body".into()));
        }
        Ok(Checkpoint { epoch, health, config, taxonomy, products, view, profiles })
    }

    /// Reassembles the live model: taxonomy from parts, catalog through
    /// `add_product` in id order, community through `CommunityBuilder`
    /// (agent-id numbering identical to the capture), profiles installed
    /// bit-for-bit. Semantic inconsistencies (malformed taxonomy,
    /// out-of-range descriptor, profile count not matching the
    /// reassembled community) surface as [`Error::Corrupt`].
    pub fn restore(&self) -> Result<RestoredModel> {
        let taxonomy =
            Taxonomy::from_parts(self.taxonomy.clone()).map_err(|e| Error::Corrupt(e.to_string()))?;
        let mut catalog = Catalog::new();
        for (identifier, title, descriptors) in &self.products {
            let descriptors =
                descriptors.iter().map(|&d| TopicId::from_index(d as usize)).collect();
            catalog
                .add_product(&taxonomy, identifier.clone(), title.clone(), descriptors)
                .map_err(|e| Error::Corrupt(e.to_string()))?;
        }
        let builder = CommunityBuilder::new(&self.view);
        let (community, _stats) = builder.build(taxonomy, catalog);
        self.install(community)
    }

    /// Installs the profiles/config/health of this checkpoint onto an
    /// already-reassembled community (shared with [`Checkpoint::restore`]).
    fn install(&self, community: Community) -> Result<RestoredModel> {
        if self.profiles.len() != community.agent_count() {
            return Err(Error::Corrupt(format!(
                "{} profiles for {} assembled agents",
                self.profiles.len(),
                community.agent_count()
            )));
        }
        let vectors = self.profiles.iter().map(|entries| {
            ProfileVector::from_pairs(
                entries
                    .iter()
                    .map(|&(topic, bits)| (TopicId::from_index(topic as usize), f64::from_bits(bits))),
            )
        });
        let profiles = ProfileStore::from_profiles(vectors, self.config.profile);
        let model = SharedModel::from_parts(community, profiles, self.config, self.health);
        Ok(RestoredModel {
            engine: Recommender::from_shared(std::sync::Arc::new(model)),
            view: self.view.clone(),
            epoch: self.epoch,
        })
    }
}

/// Validates the `magic | version | payload | checksum` frame shared by
/// snapshot and WAL files, returning the payload slice.
pub fn check_frame<'a>(
    bytes: &'a [u8],
    magic: &'static [u8; 8],
    version: u32,
    context: &'static str,
) -> Result<&'a [u8]> {
    if bytes.len() < 8 {
        return Err(Error::Truncated { context });
    }
    if &bytes[..8] != magic {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(Error::BadMagic { expected: magic, found });
    }
    if bytes.len() < 8 + 4 + 8 {
        return Err(Error::Truncated { context });
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if found != version {
        return Err(Error::BadVersion { expected: version, found });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[..body_end]);
    if stored != computed {
        return Err(Error::ChecksumMismatch { computed, stored });
    }
    Ok(&bytes[12..body_end])
}

pub(crate) fn encode_health(w: &mut Writer, h: &SourceHealth) {
    w.put_len(h.attempted);
    w.put_len(h.fetched);
    w.put_len(h.unreachable);
    w.put_len(h.gave_up);
    w.put_len(h.corrupted);
    w.put_len(h.parse_errors);
}

pub(crate) fn decode_health(r: &mut Reader<'_>) -> Result<SourceHealth> {
    Ok(SourceHealth {
        attempted: r.get_u64()? as usize,
        fetched: r.get_u64()? as usize,
        unreachable: r.get_u64()? as usize,
        gave_up: r.get_u64()? as usize,
        corrupted: r.get_u64()? as usize,
        parse_errors: r.get_u64()? as usize,
    })
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(v) => {
            w.put_bool(true);
            w.put_u64(v);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>> {
    Ok(if r.get_bool()? { Some(r.get_u64()?) } else { None })
}

pub(crate) fn encode_config(w: &mut Writer, c: &RecommenderConfig) {
    let a = &c.neighborhood.appleseed;
    w.put_f64(a.injection);
    w.put_f64(a.spreading_factor);
    w.put_f64(a.convergence);
    w.put_f64(a.backward_weight);
    w.put_len(a.max_iterations);
    put_opt_u64(w, a.max_range.map(u64::from));
    put_opt_u64(w, a.max_nodes.map(|v| v as u64));
    w.put_bool(a.distrust);
    w.put_f64(a.spreading_power);
    w.put_len(c.neighborhood.max_peers);
    w.put_f64(c.neighborhood.min_rank);
    w.put_f64(c.profile.total_score);
    w.put_f64(c.profile.min_rating);
    w.put_bool(c.profile.rating_weighted);
    w.put_u8(match c.similarity {
        SimilarityMeasure::Pearson => 0,
        SimilarityMeasure::Cosine => 1,
    });
    match c.synthesis {
        SynthesisStrategy::LinearBlend { xi } => {
            w.put_u8(0);
            w.put_f64(xi);
        }
        SynthesisStrategy::BordaMerge => w.put_u8(1),
        SynthesisStrategy::TrustFilter => w.put_u8(2),
    }
    w.put_f64(c.voting.min_rating);
    w.put_bool(c.voting.rating_weighted_votes);
    w.put_len(c.voting.min_voters);
    w.put_bool(c.novel_categories_only);
}

pub(crate) fn decode_config(r: &mut Reader<'_>) -> Result<RecommenderConfig> {
    let mut config = RecommenderConfig::default();
    let a = &mut config.neighborhood.appleseed;
    a.injection = r.get_f64()?;
    a.spreading_factor = r.get_f64()?;
    a.convergence = r.get_f64()?;
    a.backward_weight = r.get_f64()?;
    a.max_iterations = r.get_u64()? as usize;
    a.max_range = get_opt_u64(r)?.map(|v| v as u32);
    a.max_nodes = get_opt_u64(r)?.map(|v| v as usize);
    a.distrust = r.get_bool()?;
    a.spreading_power = r.get_f64()?;
    config.neighborhood.max_peers = r.get_u64()? as usize;
    config.neighborhood.min_rank = r.get_f64()?;
    config.profile.total_score = r.get_f64()?;
    config.profile.min_rating = r.get_f64()?;
    config.profile.rating_weighted = r.get_bool()?;
    config.similarity = match r.get_u8()? {
        0 => SimilarityMeasure::Pearson,
        1 => SimilarityMeasure::Cosine,
        other => return Err(Error::Corrupt(format!("similarity tag {other}"))),
    };
    config.synthesis = match r.get_u8()? {
        0 => SynthesisStrategy::LinearBlend { xi: r.get_f64()? },
        1 => SynthesisStrategy::BordaMerge,
        2 => SynthesisStrategy::TrustFilter,
        other => return Err(Error::Corrupt(format!("synthesis tag {other}"))),
    };
    config.voting.min_rating = r.get_f64()?;
    config.voting.rating_weighted_votes = r.get_bool()?;
    config.voting.min_voters = r.get_u64()? as usize;
    config.novel_categories_only = r.get_bool()?;
    Ok(config)
}

pub(crate) fn encode_taxonomy(w: &mut Writer, t: &TaxonomyParts) {
    w.put_len(t.labels.len());
    for label in &t.labels {
        w.put_str(label);
    }
    for lists in [&t.parents, &t.children] {
        w.put_len(lists.len());
        for list in lists {
            w.put_len(list.len());
            for id in list {
                w.put_u32(id.index() as u32);
            }
        }
    }
    w.put_len(t.depth.len());
    for &d in &t.depth {
        w.put_u32(d);
    }
}

pub(crate) fn decode_taxonomy(r: &mut Reader<'_>) -> Result<TaxonomyParts> {
    let label_count = r.get_len()?;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(r.get_str()?);
    }
    let mut adjacency = [Vec::new(), Vec::new()];
    for lists in &mut adjacency {
        let list_count = r.get_len()?;
        lists.reserve(list_count);
        for _ in 0..list_count {
            let id_count = r.get_len()?;
            let mut list = Vec::with_capacity(id_count);
            for _ in 0..id_count {
                list.push(TopicId::from_index(r.get_u32()? as usize));
            }
            lists.push(list);
        }
    }
    let [parents, children] = adjacency;
    let depth_count = r.get_len()?;
    let mut depth = Vec::with_capacity(depth_count);
    for _ in 0..depth_count {
        depth.push(r.get_u32()?);
    }
    Ok(TaxonomyParts { labels, parents, children, depth })
}

pub(crate) fn encode_string_list(w: &mut Writer, list: &[String]) {
    w.put_len(list.len());
    for s in list {
        w.put_str(s);
    }
}

pub(crate) fn decode_string_list(r: &mut Reader<'_>) -> Result<Vec<String>> {
    let count = r.get_len()?;
    let mut list = Vec::with_capacity(count);
    for _ in 0..count {
        list.push(r.get_str()?);
    }
    Ok(list)
}

pub(crate) fn encode_scored_list(w: &mut Writer, list: &[(String, f64)]) {
    w.put_len(list.len());
    for (key, score) in list {
        w.put_str(key);
        w.put_f64(*score);
    }
}

pub(crate) fn decode_scored_list(r: &mut Reader<'_>) -> Result<Vec<(String, f64)>> {
    let count = r.get_len()?;
    let mut list = Vec::with_capacity(count);
    for _ in 0..count {
        let key = r.get_str()?;
        let score = r.get_f64()?;
        list.push((key, score));
    }
    Ok(list)
}

pub(crate) fn encode_agent(w: &mut Writer, agent: &ExtractedAgent) {
    w.put_str(&agent.uri);
    encode_scored_list(w, &agent.trust);
    encode_scored_list(w, &agent.ratings);
    encode_string_list(w, &agent.knows);
    encode_string_list(w, &agent.see_also);
}

pub(crate) fn decode_agent(r: &mut Reader<'_>) -> Result<ExtractedAgent> {
    Ok(ExtractedAgent {
        uri: r.get_str()?,
        trust: decode_scored_list(r)?,
        ratings: decode_scored_list(r)?,
        knows: decode_string_list(r)?,
        see_also: decode_string_list(r)?,
    })
}
