//! Typed persistence errors.
//!
//! Every way serialized bytes can be wrong has its own variant, because
//! the recovery path branches on *why* a snapshot or WAL failed: a bad
//! magic or version means the file is not ours (or from a future format)
//! and the previous snapshot should be tried; a truncated or
//! checksum-failing WAL tail means the process died mid-append and the
//! valid prefix is still good. Nothing in this crate panics on corrupted
//! input — that is the corruption-injection test suite's contract.

use std::fmt;
use std::io;

/// Result alias for persistence operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from snapshot/WAL encoding, decoding, and recovery.
#[derive(Debug)]
pub enum Error {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The magic this file should have carried.
        expected: &'static [u8; 8],
        /// What the first bytes actually were (zero-padded when short).
        found: [u8; 8],
    },
    /// The format version is not one this build can read.
    BadVersion {
        /// The version this build writes and reads.
        expected: u32,
        /// The version the file claims.
        found: u32,
    },
    /// The bytes end mid-structure (torn write or truncated file).
    Truncated {
        /// Which structure the reader was decoding when bytes ran out.
        context: &'static str,
    },
    /// The trailing/record checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum recomputed over the bytes read.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
    /// The bytes decoded, but violate a semantic invariant of the model
    /// (e.g. malformed taxonomy parts, or a profile count that does not
    /// match the reassembled community).
    Corrupt(String),
    /// Recovery found no snapshot to load (empty or missing store
    /// directory, or every candidate failed).
    NoSnapshot,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "store I/O error: {e}"),
            Error::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(*expected),
                String::from_utf8_lossy(found),
            ),
            Error::BadVersion { expected, found } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            Error::Truncated { context } => write!(f, "truncated input while reading {context}"),
            Error::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            Error::Corrupt(what) => write!(f, "corrupt model state: {what}"),
            Error::NoSnapshot => write!(f, "no loadable snapshot in the store"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::BadMagic { expected: b"SEMRECSN", found: *b"XXXXXXXX" }
            .to_string()
            .contains("SEMRECSN"));
        assert!(Error::BadVersion { expected: 1, found: 9 }.to_string().contains('9'));
        assert!(Error::Truncated { context: "wal record" }.to_string().contains("wal record"));
        assert!(Error::ChecksumMismatch { computed: 1, stored: 2 }
            .to_string()
            .contains("mismatch"));
        assert!(Error::Corrupt("profile count".into()).to_string().contains("profile count"));
        assert!(Error::NoSnapshot.to_string().contains("snapshot"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
