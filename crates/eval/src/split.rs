//! Train/test splitting for offline evaluation.
//!
//! The standard protocol for implicit-rating recommenders: hide `n` positive
//! ratings per eligible user (leave-n-out), train on the rest, and check how
//! many hidden products the recommender recovers in its top-N list.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::Community;
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

/// A leave-n-out split.
#[derive(Clone, Debug)]
pub struct Split {
    /// The community with held-out ratings removed.
    pub train: Community,
    /// Held-out positive products per evaluated agent.
    pub held_out: Vec<(AgentId, Vec<ProductId>)>,
}

/// Configuration of the split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitConfig {
    /// Positives to hide per user.
    pub hold_out: usize,
    /// Users must retain at least this many ratings after the split.
    pub min_remaining: usize,
    /// Cap on evaluated users (0 = all eligible).
    pub max_users: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig { hold_out: 5, min_remaining: 2, max_users: 0, seed: 0 }
    }
}

/// Builds a leave-n-out split of the community.
///
/// Only *positive* ratings are hidden (they are what recommendation recovery
/// measures); users without enough positives are skipped.
pub fn leave_n_out(community: &Community, config: &SplitConfig) -> Split {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut train = community.clone();
    let mut held_out = Vec::new();

    for agent in community.agents() {
        if config.max_users > 0 && held_out.len() >= config.max_users {
            break;
        }
        let positives: Vec<ProductId> = community
            .ratings_of(agent)
            .iter()
            .filter(|&&(_, r)| r > 0.0)
            .map(|&(p, _)| p)
            .collect();
        if positives.len() < config.hold_out + config.min_remaining {
            continue;
        }
        // Sample hold_out distinct positives.
        let mut pool = positives;
        let mut hidden = Vec::with_capacity(config.hold_out);
        for _ in 0..config.hold_out {
            let idx = rng.random_range(0..pool.len());
            hidden.push(pool.swap_remove(idx));
        }
        for &p in &hidden {
            train.remove_rating(agent, p);
        }
        hidden.sort_unstable();
        held_out.push((agent, hidden));
    }
    Split { train, held_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn community(ratings_per_agent: usize) -> Community {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        for i in 0..6 {
            let a = c.add_agent(format!("http://ex.org/u{i}")).unwrap();
            for j in 0..ratings_per_agent {
                c.set_rating(a, products[j % 4], 1.0).unwrap();
            }
        }
        c
    }

    #[test]
    fn hides_exactly_n_positives() {
        let c = community(4);
        let split = leave_n_out(&c, &SplitConfig { hold_out: 2, min_remaining: 1, ..Default::default() });
        assert_eq!(split.held_out.len(), 6);
        for (agent, hidden) in &split.held_out {
            assert_eq!(hidden.len(), 2);
            for &p in hidden {
                assert_eq!(split.train.rating(*agent, p), None);
                assert!(c.rating(*agent, p).is_some());
            }
            assert_eq!(split.train.ratings_of(*agent).len(), 2);
        }
    }

    #[test]
    fn skips_users_with_too_few_positives() {
        let c = community(2);
        let split = leave_n_out(&c, &SplitConfig { hold_out: 2, min_remaining: 2, ..Default::default() });
        assert!(split.held_out.is_empty());
        // Nothing removed from train.
        assert_eq!(split.train.rating_count(), c.rating_count());
    }

    #[test]
    fn negative_ratings_are_never_hidden() {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let a = c.add_agent("http://ex.org/a").unwrap();
        for &p in &products[..3] {
            c.set_rating(a, p, 1.0).unwrap();
        }
        c.set_rating(a, products[3], -1.0).unwrap();
        let split = leave_n_out(&c, &SplitConfig { hold_out: 1, min_remaining: 2, ..Default::default() });
        assert_eq!(split.held_out.len(), 1);
        assert_ne!(split.held_out[0].1[0], products[3]);
        assert_eq!(split.train.rating(a, products[3]), Some(-1.0));
    }

    #[test]
    fn deterministic_and_capped() {
        let c = community(5);
        let cfg = SplitConfig { hold_out: 2, min_remaining: 1, max_users: 3, seed: 9 };
        let a = leave_n_out(&c, &cfg);
        let b = leave_n_out(&c, &cfg);
        assert_eq!(a.held_out, b.held_out);
        assert_eq!(a.held_out.len(), 3);
    }
}
