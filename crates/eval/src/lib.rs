//! # semrec-eval — evaluation substrate
//!
//! §1 promises "empirical analysis and performance evaluations … at all
//! stages"; this crate is the shared machinery: leave-n-out splits
//! ([`split`]), ranking metrics ([`metrics`]), sample statistics
//! ([`stats`]), the baseline recommenders every experiment compares against
//! ([`baselines`], [`content`], [`itemcf`]), the evaluation loop
//! ([`runner`]) and ASCII tables
//! ([`table`]) so every experiment prints reproducible rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bootstrap;
pub mod content;
pub mod itemcf;
pub mod metrics;
pub mod runner;
pub mod split;
pub mod stats;
pub mod table;

pub use metrics::{aggregate, breese_score, ndcg, precision_recall, AggregateMetrics, PrecisionRecall};
pub use bootstrap::{paired_bootstrap, BootstrapComparison};
pub use runner::evaluate;
pub use split::{leave_n_out, Split, SplitConfig};
pub use stats::{correlation, histogram, summarize, welch_t, Summary};
pub use table::Table;
