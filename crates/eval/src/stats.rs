//! Sample statistics for experiment reporting: means with confidence
//! intervals, correlation, Welch's t, and text histograms.

/// Mean, standard deviation and a 95% normal-approximation confidence
/// half-width of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// 95% CI half-width (`1.96 · σ/√n`).
    pub ci95: f64,
}

/// Summarizes a sample.
pub fn summarize(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary::default();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary { n, mean, std_dev: 0.0, ci95: 0.0 };
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();
    Summary { n, mean, std_dev, ci95: 1.96 * std_dev / (n as f64).sqrt() }
}

/// Pearson correlation of two paired samples; `None` if undefined.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples must align");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some((cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0))
}

/// Welch's t statistic for the difference of two sample means.
///
/// Values above ≈2 indicate a significant difference at the 5% level for
/// reasonably sized samples. Returns 0 for degenerate inputs.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    let sa = summarize(a);
    let sb = summarize(b);
    if sa.n < 2 || sb.n < 2 {
        return 0.0;
    }
    let se = (sa.std_dev * sa.std_dev / sa.n as f64 + sb.std_dev * sb.std_dev / sb.n as f64)
        .sqrt();
    if se == 0.0 {
        return 0.0;
    }
    (sa.mean - sb.mean) / se
}

/// A fixed-width text histogram of a sample over `bins` equal-width buckets.
pub fn histogram(values: &[f64], bins: usize, width: usize) -> String {
    if values.is_empty() || bins == 0 {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::EPSILON);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let mut idx = ((v - min) / span * bins as f64) as usize;
        if idx >= bins {
            idx = bins - 1;
        }
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &count) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let hi = min + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat(count * width / peak);
        out.push_str(&format!("[{lo:>9.3}, {hi:>9.3}) |{bar:<width$}| {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 0.01);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn degenerate_summaries() {
        assert_eq!(summarize(&[]), Summary::default());
        let one = summarize(&[3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn correlation_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((correlation(&xs, &[2.0, 4.0, 6.0, 8.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &[8.0, 6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[5.0, 5.0, 5.0, 5.0]), None);
        assert_eq!(correlation(&[1.0], &[1.0]), None);
    }

    #[test]
    fn welch_detects_separated_means() {
        let a = [10.0, 11.0, 9.5, 10.5, 10.2, 9.8];
        let b = [5.0, 5.5, 4.5, 5.2, 4.8, 5.1];
        assert!(welch_t(&a, &b) > 5.0);
        assert!(welch_t(&b, &a) < -5.0);
        assert!(welch_t(&a, &a).abs() < 1e-12);
        assert_eq!(welch_t(&[1.0], &b), 0.0);
    }

    #[test]
    fn histogram_shape() {
        let values = [1.0, 1.1, 1.2, 5.0, 9.0, 9.1, 9.2, 9.3];
        let h = histogram(&values, 4, 20);
        let lines: Vec<_> = h.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("| 3"));
        assert!(lines[3].ends_with("| 4"));
        assert_eq!(histogram(&[], 4, 20), "");
    }
}
