//! Baseline recommenders the paper's framework is evaluated against.
//!
//! * **k-NN product-vector CF** — the generic centralized approach of §2:
//!   Pearson over co-rated products, across the *whole* community (no trust
//!   prefiltering — the scalability and security strawman).
//! * **k-NN taxonomy CF** — similarity-only over Eq. 3 profiles (ablates
//!   trust out of the hybrid).
//! * **k-NN flat-category CF** — ref \[14\]'s representation (ablates the
//!   taxonomy propagation).
//! * **Trust-only** — Appleseed weights alone (ablates similarity).
//! * **Random** — the floor.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::{Community, ProfileStore, SimilarityMeasure};
use semrec_profiles::flat::generate_flat_profile;
use semrec_profiles::generation::ProfileParams;
use semrec_profiles::{ProductVector, ProfileVector};
use semrec_taxonomy::ProductId;
use semrec_trust::neighborhood::{form_neighborhood, NeighborhoodParams};
use semrec_trust::AgentId;

/// Weighted voting shared by the k-NN baselines: peers vote for their
/// positively rated products with their similarity weight.
fn vote_top_n(
    community: &Community,
    target: AgentId,
    peers: &[(AgentId, f64)],
    n: usize,
) -> Vec<ProductId> {
    let mut scores: std::collections::HashMap<ProductId, f64> = std::collections::HashMap::new();
    for &(peer, weight) in peers {
        if weight <= 0.0 {
            continue;
        }
        for &(product, rating) in community.ratings_of(peer) {
            if rating > 0.0 && community.rating(target, product).is_none() {
                *scores.entry(product).or_insert(0.0) += weight * rating;
            }
        }
    }
    let mut ranked: Vec<(ProductId, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    ranked.into_iter().map(|(p, _)| p).collect()
}

/// Top-k most similar peers under a per-pair similarity function, scanning
/// the entire community (the centralized CF neighborhood search).
fn top_k_peers<F>(community: &Community, target: AgentId, k: usize, similarity: F) -> Vec<(AgentId, f64)>
where
    F: Fn(AgentId) -> Option<f64>,
{
    let mut sims: Vec<(AgentId, f64)> = community
        .agents()
        .filter(|&a| a != target)
        .filter_map(|a| similarity(a).map(|s| (a, s)))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    sims.truncate(k);
    sims
}

/// Classic k-NN collaborative filtering over plain product-rating vectors.
pub fn knn_product_cf(
    community: &Community,
    target: AgentId,
    k: usize,
    n: usize,
) -> Vec<ProductId> {
    let mine = ProductVector::from_ratings(community.ratings_of(target));
    let peers = top_k_peers(community, target, k, |a| {
        let theirs = ProductVector::from_ratings(community.ratings_of(a));
        // Pearson over co-rated items; cosine fallback mirrors practical CF
        // systems when overlap is too small for correlation.
        mine.pearson(&theirs).or_else(|| mine.cosine(&theirs))
    });
    vote_top_n(community, target, &peers, n)
}

/// k-NN CF over taxonomy-based (Eq. 3) profiles — similarity-only hybrid
/// ablation; uses a prebuilt [`ProfileStore`].
pub fn knn_taxonomy_cf(
    community: &Community,
    profiles: &ProfileStore,
    target: AgentId,
    k: usize,
    n: usize,
) -> Vec<ProductId> {
    let peers = top_k_peers(community, target, k, |a| {
        profiles.similarity(SimilarityMeasure::Cosine, target, a)
    });
    vote_top_n(community, target, &peers, n)
}

/// k-NN CF over flat category profiles (ref \[14\] baseline).
pub fn knn_flat_cf(
    community: &Community,
    flat_profiles: &[ProfileVector],
    target: AgentId,
    k: usize,
    n: usize,
) -> Vec<ProductId> {
    let mine = &flat_profiles[target.index()];
    let peers = top_k_peers(community, target, k, |a| {
        semrec_profiles::similarity::cosine(mine, &flat_profiles[a.index()])
    });
    vote_top_n(community, target, &peers, n)
}

/// Materializes flat category profiles for every agent.
pub fn build_flat_profiles(community: &Community, params: &ProfileParams) -> Vec<ProfileVector> {
    community
        .agents()
        .map(|a| generate_flat_profile(&community.catalog, community.ratings_of(a), params))
        .collect()
}

/// Trust-only recommender: Appleseed neighborhood weights, no similarity.
pub fn trust_only(
    community: &Community,
    target: AgentId,
    params: &NeighborhoodParams,
    n: usize,
) -> Vec<ProductId> {
    let Ok(neighborhood) = form_neighborhood(&community.trust, target, params) else {
        return Vec::new();
    };
    vote_top_n(community, target, &neighborhood.normalized(), n)
}

/// Random unrated products — the evaluation floor.
pub fn random_recommender(
    community: &Community,
    target: AgentId,
    n: usize,
    seed: u64,
) -> Vec<ProductId> {
    let mut rng = StdRng::seed_from_u64(seed ^ target.index() as u64);
    let mut candidates: Vec<ProductId> = community
        .catalog
        .iter()
        .filter(|&p| community.rating(target, p).is_none())
        .collect();
    for i in (1..candidates.len()).rev() {
        let j = rng.random_range(0..=i);
        candidates.swap(i, j);
    }
    candidates.truncate(n);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    /// target shares taste with peer1; peer2 likes something else.
    fn setup() -> (Community, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let target = c.add_agent("http://ex.org/t").unwrap();
        let peer1 = c.add_agent("http://ex.org/p1").unwrap();
        let peer2 = c.add_agent("http://ex.org/p2").unwrap();
        // Shared taste: both like snow crash & neuromancer.
        c.set_rating(target, products[2], 1.0).unwrap();
        c.set_rating(target, products[3], 0.9).unwrap();
        c.set_rating(peer1, products[2], 1.0).unwrap();
        c.set_rating(peer1, products[3], 0.8).unwrap();
        c.set_rating(peer1, products[0], 1.0).unwrap(); // novel for target
        c.set_rating(peer2, products[1], 1.0).unwrap();
        (c, vec![target, peer1, peer2], products)
    }

    #[test]
    fn product_cf_recovers_the_similar_peer_item() {
        let (c, agents, products) = setup();
        let recs = knn_product_cf(&c, agents[0], 5, 3);
        assert_eq!(recs.first(), Some(&products[0]));
        // target's own products never recommended.
        assert!(!recs.contains(&products[2]));
    }

    #[test]
    fn taxonomy_cf_works_without_co_rated_products() {
        let (mut c, agents, products) = setup();
        // Remove co-ratings: peer1 now likes a *different* cyberpunk book.
        c.remove_rating(agents[1], products[2]);
        c.remove_rating(agents[1], products[3]);
        c.set_rating(agents[1], products[2], 0.0).ok();
        c.remove_rating(agents[1], products[2]);
        let profiles = ProfileStore::build(&c, &ProfileParams::default());
        let recs = knn_taxonomy_cf(&c, &profiles, agents[0], 5, 3);
        // peer1 still has products[0] (Matrix Analysis); with no co-rated
        // products the plain CF has pearson=⊥/cosine=0 for peer1 …
        let plain = knn_product_cf(&c, agents[0], 5, 3);
        assert!(plain.is_empty(), "plain CF should find nothing: {plain:?}");
        // … while taxonomy CF can still relate them through branch overlap
        // only if branches overlap; here they don't, so both may be empty.
        // The decisive case is covered in the E5/E8 experiments; this test
        // just pins the ⊥ behaviour of plain CF.
        let _ = recs;
    }

    #[test]
    fn flat_cf_runs() {
        let (c, agents, _) = setup();
        let flat = build_flat_profiles(&c, &ProfileParams::default());
        assert_eq!(flat.len(), 3);
        let recs = knn_flat_cf(&c, &flat, agents[0], 5, 3);
        assert!(!recs.is_empty());
    }

    #[test]
    fn trust_only_votes_by_trust() {
        let (mut c, agents, products) = setup();
        c.trust.set_trust(agents[0], agents[2], 0.9).unwrap();
        let recs = trust_only(&c, agents[0], &NeighborhoodParams::default(), 3);
        assert_eq!(recs, vec![products[1]]);
    }

    #[test]
    fn random_is_deterministic_and_excludes_rated() {
        let (c, agents, products) = setup();
        let a = random_recommender(&c, agents[0], 2, 7);
        let b = random_recommender(&c, agents[0], 2, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(!a.contains(&products[2]) && !a.contains(&products[3]));
    }
}
