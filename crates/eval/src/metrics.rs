//! Ranking quality metrics.
//!
//! Precision/recall/F1 at N for held-out recovery, Breese's half-life
//! utility (R-score) for position-sensitive credit, and coverage.

use semrec_taxonomy::ProductId;

/// Precision@N, recall@N and F1 of one recommendation list against a
/// held-out relevant set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of recommended items that are relevant.
    pub precision: f64,
    /// Fraction of relevant items that were recommended.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of relevant items recovered.
    pub hits: usize,
}

/// Computes precision/recall of `recommended` (already truncated to N)
/// against `relevant` (must be sorted).
pub fn precision_recall(recommended: &[ProductId], relevant: &[ProductId]) -> PrecisionRecall {
    debug_assert!(relevant.windows(2).all(|w| w[0] <= w[1]), "relevant must be sorted");
    if recommended.is_empty() || relevant.is_empty() {
        return PrecisionRecall::default();
    }
    let hits = recommended
        .iter()
        .filter(|p| relevant.binary_search(p).is_ok())
        .count();
    let precision = hits as f64 / recommended.len() as f64;
    let recall = hits as f64 / relevant.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecall { precision, recall, f1, hits }
}

/// Breese half-life utility: positional credit `Σ 2^(-(pos)/(α-1))` over hit
/// positions, normalized by the maximum achievable credit.
///
/// `half_life` (α) is the rank at which an item has a 50% chance of being
/// seen; Breese et al. use 5.
pub fn breese_score(
    recommended: &[ProductId],
    relevant: &[ProductId],
    half_life: f64,
) -> f64 {
    if recommended.is_empty() || relevant.is_empty() {
        return 0.0;
    }
    let credit = |pos: usize| 0.5f64.powf(pos as f64 / (half_life - 1.0));
    let gained: f64 = recommended
        .iter()
        .enumerate()
        .filter(|(_, p)| relevant.binary_search(p).is_ok())
        .map(|(pos, _)| credit(pos))
        .sum();
    let max: f64 = (0..relevant.len().min(recommended.len())).map(credit).sum();
    if max > 0.0 {
        gained / max
    } else {
        0.0
    }
}

/// Normalized discounted cumulative gain at the list's length: binary
/// relevance, `log2` position discount, normalized by the ideal ordering.
pub fn ndcg(recommended: &[ProductId], relevant: &[ProductId]) -> f64 {
    if recommended.is_empty() || relevant.is_empty() {
        return 0.0;
    }
    let discount = |pos: usize| 1.0 / ((pos + 2) as f64).log2();
    let dcg: f64 = recommended
        .iter()
        .enumerate()
        .filter(|(_, p)| relevant.binary_search(p).is_ok())
        .map(|(pos, _)| discount(pos))
        .sum();
    let ideal: f64 = (0..relevant.len().min(recommended.len())).map(discount).sum();
    if ideal > 0.0 {
        dcg / ideal
    } else {
        0.0
    }
}

/// Aggregated evaluation over many users.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AggregateMetrics {
    /// Mean precision over evaluated users.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Mean F1.
    pub f1: f64,
    /// Mean Breese score (half-life 5).
    pub breese: f64,
    /// Mean nDCG.
    pub ndcg: f64,
    /// Fraction of users who received at least one recommendation.
    pub coverage: f64,
    /// Users evaluated.
    pub users: usize,
}

/// Averages per-user metrics; `lists` pairs each user's recommendations with
/// their (sorted) held-out relevant set.
pub fn aggregate(lists: &[(Vec<ProductId>, Vec<ProductId>)]) -> AggregateMetrics {
    if lists.is_empty() {
        return AggregateMetrics::default();
    }
    let mut agg = AggregateMetrics { users: lists.len(), ..Default::default() };
    for (recommended, relevant) in lists {
        let pr = precision_recall(recommended, relevant);
        agg.precision += pr.precision;
        agg.recall += pr.recall;
        agg.f1 += pr.f1;
        agg.breese += breese_score(recommended, relevant, 5.0);
        agg.ndcg += ndcg(recommended, relevant);
        if !recommended.is_empty() {
            agg.coverage += 1.0;
        }
    }
    let n = lists.len() as f64;
    agg.precision /= n;
    agg.recall /= n;
    agg.f1 /= n;
    agg.breese /= n;
    agg.ndcg /= n;
    agg.coverage /= n;
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProductId {
        ProductId::from_index(i)
    }

    #[test]
    fn perfect_list() {
        let rec = vec![p(1), p(2), p(3)];
        let rel = vec![p(1), p(2), p(3)];
        let pr = precision_recall(&rec, &rel);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1, 1.0);
        assert_eq!(pr.hits, 3);
        assert!((breese_score(&rec, &rel, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_list() {
        let pr = precision_recall(&[p(1)], &[p(2)]);
        assert_eq!(pr, PrecisionRecall::default());
        assert_eq!(breese_score(&[p(1)], &[p(2)], 5.0), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // 2 of 4 recommended are relevant; 2 of 3 relevant recovered.
        let rec = vec![p(1), p(9), p(2), p(8)];
        let rel = vec![p(1), p(2), p(3)];
        let pr = precision_recall(&rec, &rel);
        assert_eq!(pr.precision, 0.5);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pr.hits, 2);
        assert!(pr.f1 > 0.5 && pr.f1 < 0.67);
    }

    #[test]
    fn ndcg_rewards_early_hits_and_normalizes() {
        let rel = vec![p(1), p(2)];
        assert!((ndcg(&[p(1), p(2)], &rel) - 1.0).abs() < 1e-12);
        let early = ndcg(&[p(1), p(9), p(8)], &rel);
        let late = ndcg(&[p(9), p(8), p(1)], &rel);
        assert!(early > late);
        assert_eq!(ndcg(&[p(9)], &rel), 0.0);
        assert_eq!(ndcg(&[], &rel), 0.0);
        // A short perfect list is still perfect relative to its length.
        assert!((ndcg(&[p(1)], &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breese_rewards_early_hits() {
        let rel = vec![p(1)];
        let early = breese_score(&[p(1), p(9), p(8)], &rel, 5.0);
        let late = breese_score(&[p(9), p(8), p(1)], &rel, 5.0);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(precision_recall(&[], &[p(1)]), PrecisionRecall::default());
        assert_eq!(precision_recall(&[p(1)], &[]), PrecisionRecall::default());
        assert_eq!(aggregate(&[]), AggregateMetrics::default());
    }

    #[test]
    fn aggregate_averages_and_coverage() {
        let lists = vec![
            (vec![p(1), p(2)], vec![p(1), p(2)]), // perfect
            (vec![], vec![p(3)]),                 // no recommendations
        ];
        let agg = aggregate(&lists);
        assert_eq!(agg.users, 2);
        assert_eq!(agg.precision, 0.5);
        assert_eq!(agg.recall, 0.5);
        assert_eq!(agg.coverage, 0.5);
    }
}
