//! Content-based filtering (§5): "Content-based filtering only takes into
//! account the content of products, based upon metadata and extracted
//! features." With taxonomy descriptors as the metadata, a content-based
//! recommender scores every unrated product by the similarity of its topic
//! profile to the user's interest profile — no peers involved at all.
//!
//! "Modern recommender systems are hybrid, combining both content-based and
//! collaborative filtering" — this module is the pure content half that the
//! paper's framework hybridizes away from; E8 compares it directly.

use semrec_core::{Community, ProfileStore};
use semrec_profiles::generation::descriptor_scores;
use semrec_profiles::{similarity, ProfileVector};
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

/// Precomputed taxonomy profiles for every product (unit mass each).
#[derive(Clone, Debug)]
pub struct ProductProfiles {
    profiles: Vec<ProfileVector>,
}

impl ProductProfiles {
    /// Builds profiles for the whole catalog.
    pub fn build(community: &Community) -> Self {
        let profiles = community
            .catalog
            .iter()
            .map(|p| {
                let descriptors = community.catalog.descriptors(p);
                let per = 1.0 / descriptors.len() as f64;
                let mut v = ProfileVector::new();
                for &d in descriptors {
                    for (topic, score) in descriptor_scores(&community.taxonomy, d, per) {
                        v.add(topic, score);
                    }
                }
                v
            })
            .collect();
        ProductProfiles { profiles }
    }

    /// The profile of one product.
    pub fn profile(&self, product: ProductId) -> &ProfileVector {
        &self.profiles[product.index()]
    }

    /// Number of profiled products.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if the catalog was empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Pure content-based recommendation: rank unrated products by cosine
/// similarity between their topic profile and the user's interest profile.
pub fn content_based(
    community: &Community,
    product_profiles: &ProductProfiles,
    user_profiles: &ProfileStore,
    target: AgentId,
    n: usize,
) -> Vec<ProductId> {
    let mine = user_profiles.profile(target);
    if mine.is_empty() {
        return Vec::new();
    }
    let mut scored: Vec<(ProductId, f64)> = community
        .catalog
        .iter()
        .filter(|&p| community.rating(target, p).is_none())
        .filter_map(|p| {
            similarity::cosine_view(mine, product_profiles.profile(p).as_view()).map(|s| (p, s))
        })
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(n);
    scored.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_profiles::generation::ProfileParams;
    use semrec_taxonomy::fixtures::example1;

    fn setup() -> (Community, AgentId, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        // Alice reads math: Fermat's Enigma.
        c.set_rating(alice, products[1], 1.0).unwrap();
        (c, alice, products)
    }

    #[test]
    fn recommends_same_branch_products_first() {
        let (c, alice, products) = setup();
        let pp = ProductProfiles::build(&c);
        let up = ProfileStore::build(&c, &ProfileParams::default());
        let recs = content_based(&c, &pp, &up, alice, 3);
        // Matrix Analysis (Mathematics branch) must beat the cyberpunk books.
        assert_eq!(recs.first(), Some(&products[0]));
        assert!(!recs.contains(&products[1]), "own ratings excluded");
    }

    #[test]
    fn empty_profile_yields_nothing() {
        let (mut c, _, products) = setup();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        c.set_rating(bob, products[2], -1.0).unwrap(); // dislikes only
        let pp = ProductProfiles::build(&c);
        let up = ProfileStore::build(&c, &ProfileParams::default());
        assert!(content_based(&c, &pp, &up, bob, 5).is_empty());
    }

    #[test]
    fn product_profiles_have_unit_mass() {
        let (c, _, _) = setup();
        let pp = ProductProfiles::build(&c);
        assert_eq!(pp.len(), 4);
        for p in c.catalog.iter() {
            assert!((pp.profile(p).total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn needs_no_peers_at_all() {
        // A one-user community still gets content recommendations.
        let (c, alice, _) = setup();
        assert_eq!(c.agent_count(), 1);
        let pp = ProductProfiles::build(&c);
        let up = ProfileStore::build(&c, &ProfileParams::default());
        assert!(!content_based(&c, &pp, &up, alice, 5).is_empty());
    }
}
