//! Item-based collaborative filtering — the industrial-strength centralized
//! baseline (the approach behind Amazon's own recommender, contemporaneous
//! with the paper).
//!
//! Builds an item–item cosine model over co-rating vectors once, then scores
//! candidates by similarity-weighted sums over the target's rated items.
//! Included in E8 because any credible evaluation of a 2004 recommender
//! framework must compare against it.

use std::collections::HashMap;

use semrec_core::Community;
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

/// A precomputed item–item similarity model (top-`k` neighbors per item).
#[derive(Clone, Debug)]
pub struct ItemItemModel {
    /// Per product: its `k` most similar products with cosine weights.
    neighbors: Vec<Vec<(ProductId, f64)>>,
}

impl ItemItemModel {
    /// Builds the model: cosine over the user-rating vectors of each item.
    ///
    /// Complexity is `O(Σ_u |r_u|²)` — quadratic in per-user history length,
    /// linear in users, the standard item-CF construction.
    pub fn build(community: &Community, k: usize) -> Self {
        let m = community.catalog.len();
        // Accumulate dot products between co-rated items and norms per item.
        let mut dots: HashMap<(u32, u32), f64> = HashMap::new();
        let mut norms = vec![0.0f64; m];
        for user in community.agents() {
            let ratings = community.ratings_of(user);
            for (i, &(pa, ra)) in ratings.iter().enumerate() {
                norms[pa.index()] += ra * ra;
                for &(pb, rb) in &ratings[i + 1..] {
                    let key = (pa.index() as u32, pb.index() as u32);
                    *dots.entry(key).or_insert(0.0) += ra * rb;
                }
            }
        }
        let mut neighbors: Vec<Vec<(ProductId, f64)>> = vec![Vec::new(); m];
        for ((a, b), dot) in dots {
            let denominator = (norms[a as usize] * norms[b as usize]).sqrt();
            if denominator <= 0.0 {
                continue;
            }
            let sim = dot / denominator;
            if sim > 0.0 {
                neighbors[a as usize].push((ProductId::from_index(b as usize), sim));
                neighbors[b as usize].push((ProductId::from_index(a as usize), sim));
            }
        }
        for list in &mut neighbors {
            list.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then(x.0.cmp(&y.0)));
            list.truncate(k);
        }
        ItemItemModel { neighbors }
    }

    /// The top-k similar items of a product.
    pub fn neighbors(&self, product: ProductId) -> &[(ProductId, f64)] {
        &self.neighbors[product.index()]
    }

    /// Recommends top-`n` unrated products for a user: each rated item votes
    /// for its neighbors with `similarity × rating`.
    pub fn recommend(
        &self,
        community: &Community,
        target: AgentId,
        n: usize,
    ) -> Vec<ProductId> {
        let mut scores: HashMap<ProductId, f64> = HashMap::new();
        for &(rated, rating) in community.ratings_of(target) {
            if rating <= 0.0 {
                continue;
            }
            for &(neighbor, sim) in self.neighbors(rated) {
                if community.rating(target, neighbor).is_none() {
                    *scores.entry(neighbor).or_insert(0.0) += sim * rating;
                }
            }
        }
        let mut ranked: Vec<(ProductId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked.into_iter().map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    /// Snow Crash and Neuromancer are co-liked by two readers.
    fn setup() -> (Community, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<_> =
            (0..3).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        c.set_rating(agents[0], products[2], 1.0).unwrap();
        c.set_rating(agents[0], products[3], 1.0).unwrap();
        c.set_rating(agents[1], products[2], 1.0).unwrap();
        c.set_rating(agents[1], products[3], 0.8).unwrap();
        // A third reader who only rated snow crash.
        c.set_rating(agents[2], products[2], 1.0).unwrap();
        (c, agents, products)
    }

    #[test]
    fn co_rated_items_become_neighbors() {
        let (c, _, products) = setup();
        let model = ItemItemModel::build(&c, 5);
        let nb = model.neighbors(products[2]);
        assert_eq!(nb.first().map(|&(p, _)| p), Some(products[3]));
        assert!(nb[0].1 > 0.5);
        // The never-co-rated math books have no neighbors.
        assert!(model.neighbors(products[0]).is_empty());
    }

    #[test]
    fn recommends_the_companion_item() {
        let (c, agents, products) = setup();
        let model = ItemItemModel::build(&c, 5);
        let recs = model.recommend(&c, agents[2], 3);
        assert_eq!(recs, vec![products[3]]);
    }

    #[test]
    fn never_recommends_rated_items() {
        let (c, agents, products) = setup();
        let model = ItemItemModel::build(&c, 5);
        let recs = model.recommend(&c, agents[0], 5);
        assert!(!recs.contains(&products[2]) && !recs.contains(&products[3]));
    }

    #[test]
    fn k_truncates_neighbor_lists() {
        let (mut c, agents, products) = setup();
        c.set_rating(agents[0], products[0], 1.0).unwrap();
        c.set_rating(agents[0], products[1], 1.0).unwrap();
        let model = ItemItemModel::build(&c, 1);
        for p in c.catalog.iter() {
            assert!(model.neighbors(p).len() <= 1);
        }
    }

    #[test]
    fn negative_ratings_do_not_vote() {
        let (mut c, agents, products) = setup();
        let hater = c.add_agent("http://ex.org/hater").unwrap();
        c.set_rating(hater, products[2], -1.0).unwrap();
        let model = ItemItemModel::build(&c, 5);
        let recs = model.recommend(&c, hater, 5);
        assert!(recs.is_empty(), "a pure disliker gets no item-CF votes");
        let _ = agents;
    }
}
