//! ASCII table rendering for experiment output.
//!
//! Every experiment prints its reproduced "table" through this module, so
//! EXPERIMENTS.md entries and terminal output stay identical in shape.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with `|` separators and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, &w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(cell);
                for _ in cell.chars().count()..w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        out.push('|');
        for &w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with 3 decimals (the experiments' standard cell format).
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats an optional float, rendering `⊥` for `None` (undefined values,
/// matching the paper's notation for partial functions).
pub fn fmt_opt(value: Option<f64>) -> String {
    match value {
        Some(v) => fmt(v),
        None => "⊥".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["metric", "value"]);
        t.row(["precision", "0.123"]);
        t.row(["recall-at-10", "0.9"]);
        let out = t.render();
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{out}");
        assert!(lines[0].contains("metric"));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let out = t.render();
        assert!(out.lines().count() == 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formats() {
        assert_eq!(fmt(0.12345), "0.123");
        assert_eq!(fmt_opt(Some(1.0)), "1.000");
        assert_eq!(fmt_opt(None), "⊥");
    }

    #[test]
    fn unicode_width_alignment() {
        let mut t = Table::new(["sim"]);
        t.row(["⊥"]);
        t.row(["0.5"]);
        let out = t.render();
        let w = out.lines().next().unwrap().chars().count();
        assert!(out.lines().all(|l| l.chars().count() == w));
    }
}
