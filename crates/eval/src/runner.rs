//! The evaluation loop: run any recommender over a split, aggregate metrics.

use semrec_core::Community;
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

use crate::metrics::{aggregate, AggregateMetrics};
use crate::split::Split;

/// Evaluates a recommender function over a split: for each held-out user,
/// `recommend(train, user)` produces a top-N list which is scored against
/// the user's hidden positives.
pub fn evaluate<F>(split: &Split, mut recommend: F) -> AggregateMetrics
where
    F: FnMut(&Community, AgentId) -> Vec<ProductId>,
{
    let lists: Vec<(Vec<ProductId>, Vec<ProductId>)> = split
        .held_out
        .iter()
        .map(|(agent, hidden)| (recommend(&split.train, *agent), hidden.clone()))
        .collect();
    aggregate(&lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{leave_n_out, SplitConfig};
    use semrec_taxonomy::fixtures::example1;

    fn community() -> Community {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        for i in 0..4 {
            let a = c.add_agent(format!("http://ex.org/u{i}")).unwrap();
            for &p in &products {
                c.set_rating(a, p, 1.0).unwrap();
            }
        }
        c
    }

    #[test]
    fn oracle_recommender_scores_perfectly() {
        let c = community();
        let split = leave_n_out(&c, &SplitConfig { hold_out: 2, min_remaining: 1, ..Default::default() });
        assert!(!split.held_out.is_empty());
        // Oracle: recommend everything the user has NOT rated in train.
        let metrics = evaluate(&split, |train, agent| {
            train
                .catalog
                .iter()
                .filter(|&p| train.rating(agent, p).is_none())
                .collect()
        });
        assert_eq!(metrics.recall, 1.0);
        assert_eq!(metrics.precision, 1.0); // only the 2 hidden are unrated
        assert_eq!(metrics.coverage, 1.0);
    }

    #[test]
    fn empty_recommender_scores_zero() {
        let c = community();
        let split = leave_n_out(&c, &SplitConfig { hold_out: 1, min_remaining: 1, ..Default::default() });
        let metrics = evaluate(&split, |_, _| Vec::new());
        assert_eq!(metrics.recall, 0.0);
        assert_eq!(metrics.coverage, 0.0);
        assert_eq!(metrics.users, split.held_out.len());
    }
}
