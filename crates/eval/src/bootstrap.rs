//! Paired bootstrap significance testing for recommender comparisons.
//!
//! Offline recommender evaluations compare per-user metric vectors of two
//! systems on the *same* split; the paired bootstrap is the standard way to
//! attach confidence to "A beats B" claims (users are resampled with
//! replacement, the mean difference recomputed per resample).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a paired bootstrap comparison of per-user scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapComparison {
    /// Observed mean difference `mean(a) − mean(b)`.
    pub mean_difference: f64,
    /// Bootstrap 95% confidence interval of the difference.
    pub ci_low: f64,
    /// Upper bound of the 95% CI.
    pub ci_high: f64,
    /// Fraction of resamples where A's mean strictly exceeds B's — the
    /// bootstrap probability that A is the better system.
    pub probability_a_better: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

impl BootstrapComparison {
    /// True when the 95% CI excludes zero.
    pub fn significant(&self) -> bool {
        self.ci_low > 0.0 || self.ci_high < 0.0
    }
}

/// Runs a paired bootstrap over per-user scores of systems A and B.
///
/// # Panics
/// Panics if the slices have different lengths or are empty, or if
/// `resamples` is zero — caller errors, not data conditions.
pub fn paired_bootstrap(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    seed: u64,
) -> BootstrapComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    assert!(!a.is_empty(), "paired bootstrap needs at least one user");
    assert!(resamples > 0, "at least one resample required");

    let n = a.len();
    let observed =
        a.iter().sum::<f64>() / n as f64 - b.iter().sum::<f64>() / n as f64;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut differences = Vec::with_capacity(resamples);
    let mut a_wins = 0usize;
    for _ in 0..resamples {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for _ in 0..n {
            let i = rng.random_range(0..n);
            sum_a += a[i];
            sum_b += b[i];
        }
        let diff = (sum_a - sum_b) / n as f64;
        if diff > 0.0 {
            a_wins += 1;
        }
        differences.push(diff);
    }
    differences.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let pick = |q: f64| {
        let idx = ((resamples as f64 - 1.0) * q).round() as usize;
        differences[idx.min(resamples - 1)]
    };

    BootstrapComparison {
        mean_difference: observed,
        ci_low: pick(0.025),
        ci_high: pick(0.975),
        probability_a_better: a_wins as f64 / resamples as f64,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_systems_are_significant() {
        let a: Vec<f64> = (0..100).map(|i| 0.5 + 0.001 * (i % 7) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 0.2 + 0.001 * (i % 5) as f64).collect();
        let cmp = paired_bootstrap(&a, &b, 2000, 1);
        assert!(cmp.mean_difference > 0.25);
        assert!(cmp.significant(), "{cmp:?}");
        assert!(cmp.ci_low > 0.0);
        assert!(cmp.probability_a_better > 0.99);
    }

    #[test]
    fn identical_systems_are_not_significant() {
        let a: Vec<f64> = (0..80).map(|i| (i % 10) as f64 / 10.0).collect();
        let cmp = paired_bootstrap(&a, &a, 1000, 2);
        assert_eq!(cmp.mean_difference, 0.0);
        assert!(!cmp.significant());
        assert_eq!(cmp.probability_a_better, 0.0); // ties never count as wins
    }

    #[test]
    fn noisy_overlapping_systems_are_usually_insignificant() {
        // Same distribution, different per-user noise: CI should straddle 0.
        let a: Vec<f64> = (0..60).map(|i| ((i * 13) % 17) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| ((i * 7 + 3) % 17) as f64).collect();
        let cmp = paired_bootstrap(&a, &b, 2000, 3);
        assert!(cmp.ci_low < cmp.ci_high);
        assert!(cmp.mean_difference.abs() < 2.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 2.5, 2.0, 4.5];
        let x = paired_bootstrap(&a, &b, 500, 9);
        let y = paired_bootstrap(&a, &b, 500, 9);
        assert_eq!(x, y);
        // Different seeds shift the win count (the CI bounds may coincide on
        // tiny samples since few distinct resample means exist).
        let z = paired_bootstrap(&a, &b, 500, 10);
        assert_ne!(x.probability_a_better, z.probability_a_better);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0);
    }
}
