//! # semrec-core — the unified Semantic Web recommender framework
//!
//! The paper's primary contribution (§3): one coherent framework combining
//! *trust networks* and *taxonomy-based profile generation* for
//! recommendation making in decentralized scenarios, where "all user and
//! rating data \[is\] distributed throughout the Semantic Web" and every
//! computation runs locally for one given user.
//!
//! Pipeline (see [`engine::Recommender`]):
//!
//! 1. **Trust neighborhood formation** (§3.2) — Appleseed ranks the peers
//!    the target subjectively deems trustworthy (`semrec-trust`);
//! 2. **Similarity-based filtering** (§3.3) — taxonomy-driven profiles are
//!    compared with Pearson/cosine (`semrec-profiles`);
//! 3. **Rank synthesization** (§3.4) — trust and similarity ranks merge
//!    into one weight per peer behind the pluggable [`rank::Ranker`] trait
//!    ([`synthesis`] holds the strategy ablation the paper calls for;
//!    [`rank::SpreadingActivationRanker`] closes the §5 future-work gap
//!    with two-phase spreading activation over the merged trust +
//!    taxonomy graph);
//! 4. **Recommendation generation** (§3.4) — weighted peer voting, plus the
//!    content-driven "untouched categories" novelty scheme ([`recommend`])
//!    and the topic-diversification extension ([`diversify`]).
//!
//! ```
//! use semrec_core::{Community, Recommender, RecommenderConfig};
//! use semrec_taxonomy::fixtures::example1;
//!
//! let e = example1();
//! let products: Vec<_> = e.catalog.iter().collect();
//! let mut community = Community::new(e.fig.taxonomy, e.catalog);
//! let alice = community.add_agent("http://example.org/alice").unwrap();
//! let bob = community.add_agent("http://example.org/bob").unwrap();
//! community.trust.set_trust(alice, bob, 0.9).unwrap();
//! community.set_rating(bob, products[0], 1.0).unwrap();
//!
//! let engine = Recommender::new(community, RecommenderConfig::default());
//! let recs = engine.recommend(alice, 10).unwrap();
//! assert_eq!(recs[0].product, products[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod delta;
pub mod diversify;
pub mod engine;
pub mod explain;
pub mod error;
pub mod health;
pub mod model;
pub mod profiles;
pub mod rank;
pub mod recommend;
pub mod synthesis;

pub use batch::recommend_batch;
pub use delta::{AdvanceStats, ModelDelta, SwapPlan};
pub use engine::{PipelineTrace, Recommender, RecommenderConfig, SharedModel};
pub use explain::{Explanation, Voter};
pub use error::{CoreError, Result};
pub use health::SourceHealth;
pub use model::{AgentInfo, Community};
pub use profiles::{ProfileStore, SimilarityMeasure};
pub use rank::{
    BlendWeights, RankContext, RankedPeer, Ranker, ScoreComponents, SharedRanker,
    SimilarityRanker, SpreadResult, SpreadingActivationRanker, SpreadingParams,
};
pub use recommend::{Recommendation, VotingParams};
pub use synthesis::{PeerScores, SynthesisStrategy};

// Re-export the substrate id types so downstream users need only this crate.
pub use semrec_taxonomy::{ProductId, TopicId};
pub use semrec_trust::AgentId;
