//! Source health: how much of the decentralized web a community was
//! actually assembled from.
//!
//! §2's environment is unreliable by construction — peers go down,
//! documents truncate, crawls run out of budget. The engine still
//! recommends from whatever subset was reachable (graceful degradation),
//! but the run must *say so*: a [`SourceHealth`] travels from the crawl
//! into the [`Recommender`](crate::Recommender) and out through
//! [`Explanation`](crate::Explanation) provenance, so no consumer can
//! mistake a partial view of the community for the whole one.

/// Accounting of the crawl (or other assembly process) that produced a
/// community: what was attempted, what arrived, and what was lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceHealth {
    /// Documents the assembly tried to obtain (fetched + missing + lost).
    pub attempted: usize,
    /// Documents fetched *and* parsed successfully.
    pub fetched: usize,
    /// Documents never fetched: dead peers, open circuit breakers, or
    /// frontier abandoned at a deadline.
    pub unreachable: usize,
    /// Documents abandoned after exhausting their retry budget.
    pub gave_up: usize,
    /// Corrupted (truncated) responses observed along the way, including
    /// ones later recovered by a retry.
    pub corrupted: usize,
    /// Documents fetched but unparseable.
    pub parse_errors: usize,
}

impl SourceHealth {
    /// A perfectly healthy source that attempted and fetched `n` documents.
    pub fn complete(n: usize) -> Self {
        SourceHealth { attempted: n, fetched: n, ..SourceHealth::default() }
    }

    /// Documents lost: attempted but neither fetched-and-parsed nor merely
    /// missing (dangling links are not degradation — the web answered).
    pub fn lost(&self) -> usize {
        self.unreachable + self.gave_up + self.parse_errors
    }

    /// Whether the assembled community is a degraded view of its source:
    /// anything was unreachable, given up on, or unparseable. Dangling
    /// links (`missing`) and recovered corruption do not count.
    pub fn is_degraded(&self) -> bool {
        self.lost() > 0
    }

    /// Fraction of attempted documents that arrived intact, in `[0, 1]`
    /// (1.0 for an empty attempt: nothing was lost).
    pub fn coverage(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.fetched as f64 / self.attempted as f64
        }
    }
}

impl std::fmt::Display for SourceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} fetched ({} unreachable, {} gave up, {} parse errors)",
            self.fetched, self.attempted, self.unreachable, self.gave_up, self.parse_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sources_are_healthy() {
        let h = SourceHealth::complete(10);
        assert!(!h.is_degraded());
        assert_eq!(h.coverage(), 1.0);
        assert_eq!(h.lost(), 0);
        // The degenerate empty source is healthy too.
        assert!(!SourceHealth::default().is_degraded());
        assert_eq!(SourceHealth::default().coverage(), 1.0);
    }

    #[test]
    fn losses_mark_degradation() {
        let h = SourceHealth {
            attempted: 10,
            fetched: 7,
            unreachable: 1,
            gave_up: 1,
            corrupted: 4,
            parse_errors: 1,
        };
        assert!(h.is_degraded());
        assert_eq!(h.lost(), 3);
        assert!((h.coverage() - 0.7).abs() < 1e-12);
        let text = h.to_string();
        assert!(text.contains("7/10"));
        assert!(text.contains("1 unreachable"));
    }

    #[test]
    fn recovered_corruption_alone_is_not_degradation() {
        let h = SourceHealth { attempted: 5, fetched: 5, corrupted: 3, ..Default::default() };
        assert!(!h.is_degraded(), "retries recovered everything");
    }
}
