//! Model-level deltas and dirty-set planning for incremental refresh.
//!
//! The crawl layer (`semrec-web`) diffs two crawls into a typed delta and
//! projects it down to a [`ModelDelta`]: which agents' *rating inputs*
//! changed (their taxonomy profile is stale) and which agents' *outgoing
//! trust statements* changed (their profile is clean but neighborhoods that
//! reach them are stale). From that, [`SwapPlan`] computes a **sound dirty
//! set** for the serving layer: every agent whose recommendations could
//! differ on the next model generation.
//!
//! Soundness argument: a target's recommendations are a pure function of
//! the data inside its trust neighborhood, and neighborhood formation
//! explores at most `appleseed.max_range` hops from the target (§3.2's
//! bounded exploration). So if agent `y` changed in any way, only targets
//! that can reach `y` within that horizon can be affected — the *reverse*
//! trust closure of the changed set, walked in both the old and the new
//! graph (an edge removal only exists in the old one). Everything outside
//! that closure provably recomputes byte-identically, which is what lets
//! the serving cache carry those entries across a snapshot swap.

use std::collections::HashSet;

use semrec_trust::AgentId;

use crate::model::Community;

/// The model-level projection of a crawl delta: which agent URIs changed,
/// split by what the change invalidates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModelDelta {
    /// URIs whose rating set changed (or who appeared/disappeared): their
    /// taxonomy profile must be recomputed.
    pub ratings_changed: Vec<String>,
    /// URIs whose outgoing trust statements changed (or who
    /// appeared/disappeared): their profile is untouched, but neighborhoods
    /// reaching them are stale.
    pub trust_changed: Vec<String>,
}

impl ModelDelta {
    /// True when nothing model-relevant changed.
    pub fn is_empty(&self) -> bool {
        self.ratings_changed.is_empty() && self.trust_changed.is_empty()
    }

    /// Every URI the delta touches, deduplicated.
    pub fn seed_uris(&self) -> HashSet<&str> {
        self.ratings_changed
            .iter()
            .chain(self.trust_changed.iter())
            .map(String::as_str)
            .collect()
    }
}

/// Outcome counters of one [`crate::SharedModel::advance`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Profiles recomputed because their inputs changed (∝ delta size).
    pub recomputed: usize,
    /// Profiles carried over from the previous generation by `Arc` clone.
    pub reused: usize,
}

impl AdvanceStats {
    /// Fraction of profiles reused (1.0 for an empty delta).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.recomputed + self.reused;
        if total == 0 {
            return 1.0;
        }
        self.reused as f64 / total as f64
    }
}

/// The swap plan for a serving layer publishing `old → next`: per-agent
/// dirtiness and whether clean cache entries may be carried across.
///
/// Carrying is only sound when agent-id assignment is stable between the
/// generations (both communities register the same URI at every index) —
/// otherwise a cached answer for id `i` would be served to a different
/// agent. Membership instability therefore forces wholesale invalidation,
/// as does a dirty fraction above the configured threshold (past that
/// point the carry bookkeeping costs more than it saves).
#[derive(Clone, Debug)]
pub struct SwapPlan {
    /// Per next-community agent index: recommendations may have changed.
    dirty: Vec<bool>,
    /// Per next-community agent index: cached answers may be carried.
    carryable: Vec<bool>,
    /// Number of dirty agents.
    dirty_count: usize,
    /// Whether the URI↔id mapping is identical across the generations.
    membership_stable: bool,
    /// Whether the serving cache must be invalidated wholesale.
    wholesale: bool,
}

impl SwapPlan {
    /// Default dirty-fraction threshold beyond which a plan falls back to
    /// wholesale invalidation.
    pub const DEFAULT_MAX_DIRTY_FRACTION: f64 = 0.5;

    /// Computes the plan for publishing `next` over `old`.
    ///
    /// `horizon` is the neighborhood exploration bound (hops); pass the
    /// engine's `neighborhood.appleseed.max_range` — `None` means
    /// unbounded exploration, so the closure walks the whole reverse
    /// component.
    pub fn compute(
        old: &Community,
        next: &Community,
        delta: &ModelDelta,
        horizon: Option<u32>,
        max_dirty_fraction: f64,
    ) -> SwapPlan {
        let _span = semrec_obs::span("model.swap_plan");
        let membership_stable = old.agent_count() == next.agent_count()
            && next
                .agents()
                .all(|a| {
                    let uri = &next.agent(a).expect("iterated id").uri;
                    old.agent_by_uri(uri) == Some(a)
                });

        // Seed URIs: everything the delta touches, plus membership changes
        // at the community level (dangling trustees appearing/disappearing
        // are visible here even when the crawl never fetched them).
        let mut seeds: HashSet<String> =
            delta.seed_uris().into_iter().map(str::to_owned).collect();
        if !membership_stable {
            for (a, b) in [(old, next), (next, old)] {
                for agent in a.agents() {
                    let uri = &a.agent(agent).expect("iterated id").uri;
                    if b.agent_by_uri(uri).is_none() {
                        seeds.insert(uri.clone());
                    }
                }
            }
        }

        // Reverse trust closure out to the horizon, in both generations:
        // an affected target must reach a seed along forward edges that
        // exist in the old or the new graph.
        let mut dirty_uris = seeds.clone();
        for community in [old, next] {
            let ids: Vec<AgentId> =
                seeds.iter().filter_map(|uri| community.agent_by_uri(uri)).collect();
            for id in reverse_closure(community, &ids, horizon) {
                dirty_uris.insert(community.agent(id).expect("closure id").uri.clone());
            }
        }

        let mut dirty = vec![false; next.agent_count()];
        let mut dirty_count = 0;
        for agent in next.agents() {
            if dirty_uris.contains(&next.agent(agent).expect("iterated id").uri) {
                dirty[agent.index()] = true;
                dirty_count += 1;
            }
        }
        let dirty_fraction =
            dirty_count as f64 / next.agent_count().max(1) as f64;
        let wholesale = !membership_stable || dirty_fraction > max_dirty_fraction;
        let carryable = dirty
            .iter()
            .map(|&d| !wholesale && !d)
            .collect();
        SwapPlan { dirty, carryable, dirty_count, membership_stable, wholesale }
    }

    /// True when this agent's recommendations may differ on the next
    /// generation (ids are next-community ids).
    pub fn is_dirty(&self, agent: AgentId) -> bool {
        self.dirty.get(agent.index()).copied().unwrap_or(true)
    }

    /// True when cached answers for this agent may be carried across the
    /// swap (ids are next-community ids).
    pub fn carryable(&self, agent: AgentId) -> bool {
        self.carryable.get(agent.index()).copied().unwrap_or(false)
    }

    /// Number of dirty agents.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Fraction of next-generation agents that are dirty.
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty_count as f64 / self.dirty.len().max(1) as f64
    }

    /// Whether the URI↔id mapping is identical across the generations.
    pub fn membership_stable(&self) -> bool {
        self.membership_stable
    }

    /// Whether the serving cache must drop everything instead of carrying.
    pub fn wholesale(&self) -> bool {
        self.wholesale
    }
}

/// All agents that can reach any of `seeds` along forward trust edges in at
/// most `horizon` hops — computed as a BFS over *incoming* edges.
fn reverse_closure(
    community: &Community,
    seeds: &[AgentId],
    horizon: Option<u32>,
) -> HashSet<AgentId> {
    let horizon = horizon.map_or(usize::MAX, |h| h as usize);
    let mut seen: HashSet<AgentId> = seeds.iter().copied().collect();
    let mut frontier: Vec<AgentId> = seeds.to_vec();
    let mut depth = 0;
    while !frontier.is_empty() && depth < horizon {
        let mut next_frontier = Vec::new();
        for &agent in &frontier {
            for &truster in community.trust.trusters_of(agent) {
                if seen.insert(truster) {
                    next_frontier.push(truster);
                }
            }
        }
        frontier = next_frontier;
        depth += 1;
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    /// A trust chain u0 → u1 → … → u{n-1}, each rating one product.
    fn chain(n: usize) -> Community {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> =
            (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
        for w in agents.windows(2) {
            c.trust.set_trust(w[0], w[1], 0.8).unwrap();
        }
        for (i, &a) in agents.iter().enumerate() {
            c.set_rating(a, products[i % 4], 1.0).unwrap();
        }
        c
    }

    #[test]
    fn empty_delta_keeps_everything_clean_and_carryable() {
        let c = chain(5);
        let plan = SwapPlan::compute(&c, &c.clone(), &ModelDelta::default(), Some(6), 0.5);
        assert!(plan.membership_stable());
        assert!(!plan.wholesale());
        assert_eq!(plan.dirty_count(), 0);
        for agent in c.agents() {
            assert!(!plan.is_dirty(agent));
            assert!(plan.carryable(agent));
        }
    }

    #[test]
    fn dirty_set_is_the_reverse_closure_up_to_the_horizon() {
        let c = chain(6);
        let changed = "http://ex.org/u4";
        let delta = ModelDelta {
            ratings_changed: vec![changed.to_owned()],
            trust_changed: Vec::new(),
        };
        // Horizon 2: u4 itself plus the two agents that reach it in ≤ 2
        // hops (u3, u2); u0 and u1 stay clean, u5 is downstream.
        let plan = SwapPlan::compute(&c, &c.clone(), &delta, Some(2), 1.0);
        let id = |i: usize| c.agent_by_uri(&format!("http://ex.org/u{i}")).unwrap();
        assert!(plan.is_dirty(id(4)));
        assert!(plan.is_dirty(id(3)));
        assert!(plan.is_dirty(id(2)));
        assert!(!plan.is_dirty(id(1)));
        assert!(!plan.is_dirty(id(0)));
        assert!(!plan.is_dirty(id(5)), "downstream of the change is unaffected");
        assert_eq!(plan.dirty_count(), 3);
        assert!(plan.carryable(id(0)));
        assert!(!plan.carryable(id(3)));
    }

    #[test]
    fn high_dirty_fraction_falls_back_to_wholesale() {
        let c = chain(4);
        let delta = ModelDelta {
            ratings_changed: vec!["http://ex.org/u3".to_owned()],
            trust_changed: Vec::new(),
        };
        // Horizon 6 dirties the whole chain upstream: 4/4 dirty > 0.5.
        let plan = SwapPlan::compute(&c, &c.clone(), &delta, Some(6), 0.5);
        assert!(plan.wholesale());
        for agent in c.agents() {
            assert!(!plan.carryable(agent), "wholesale plans carry nothing");
        }
    }

    #[test]
    fn membership_change_forces_wholesale() {
        let old = chain(4);
        let next = chain(5);
        let plan = SwapPlan::compute(&old, &next, &ModelDelta::default(), Some(6), 1.0);
        assert!(!plan.membership_stable());
        assert!(plan.wholesale());
    }

    #[test]
    fn edge_removal_dirties_via_the_old_graph() {
        let old = chain(4);
        let mut next = old.clone();
        // u2 retracts trust in u3: the edge only exists in the old graph.
        let u2 = next.agent_by_uri("http://ex.org/u2").unwrap();
        let u3 = next.agent_by_uri("http://ex.org/u3").unwrap();
        assert!(next.trust.remove_trust(u2, u3));
        let delta = ModelDelta {
            ratings_changed: Vec::new(),
            trust_changed: vec!["http://ex.org/u2".to_owned()],
        };
        let plan = SwapPlan::compute(&old, &next, &delta, Some(6), 1.0);
        // Everyone upstream of u2 (u0, u1) plus u2 itself is dirty; u3 was
        // only reachable *from* u2, and anyone who reaches u2 is covered.
        assert!(plan.is_dirty(u2));
        assert!(plan.is_dirty(next.agent_by_uri("http://ex.org/u1").unwrap()));
        assert!(plan.is_dirty(next.agent_by_uri("http://ex.org/u0").unwrap()));
        assert!(!plan.is_dirty(u3), "u3's own view never contained the edge");
    }
}
