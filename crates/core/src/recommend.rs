//! Recommendation generation (§3.4).
//!
//! Given synthesized peer weights, products are scored by weighted voting:
//! "every a_j voting for all its appreciated products b_k ∈ r_j with its own
//! rank weight. Products positively mentioned within several rating
//! histories of high weighted peers thus have greater chance of being
//! recommended." A second, content-driven scheme proposes products "from
//! categories that a_i has left untouched until now" — creating an
//! "incentive for trying new product groups".

use std::collections::HashMap;

use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

use crate::model::Community;

/// A recommended product with its aggregated vote score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The recommended product.
    pub product: ProductId,
    /// Aggregated (weighted) vote score; higher is better.
    pub score: f64,
    /// Number of peers that voted for the product.
    pub voters: usize,
}

/// Parameters of the voting scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VotingParams {
    /// Minimum peer rating for a product to count as "appreciated".
    pub min_rating: f64,
    /// Weight votes by the peer's rating value (not just their rank weight).
    pub rating_weighted_votes: bool,
    /// Require at least this many distinct voters per product.
    pub min_voters: usize,
}

impl Default for VotingParams {
    fn default() -> Self {
        VotingParams { min_rating: 0.0, rating_weighted_votes: true, min_voters: 1 }
    }
}

/// Scores products by weighted peer voting, excluding those the target agent
/// already rated. Returns recommendations sorted by descending score.
pub fn vote(
    community: &Community,
    target: AgentId,
    weighted_peers: &[(AgentId, f64)],
    params: &VotingParams,
) -> Vec<Recommendation> {
    let mut scores: HashMap<ProductId, (f64, usize)> = HashMap::new();
    for &(peer, weight) in weighted_peers {
        if weight <= 0.0 {
            continue;
        }
        for &(product, rating) in community.ratings_of(peer) {
            if rating <= params.min_rating {
                continue;
            }
            if community.rating(target, product).is_some() {
                continue; // never recommend what the user already rated
            }
            let vote = if params.rating_weighted_votes { weight * rating } else { weight };
            let entry = scores.entry(product).or_insert((0.0, 0));
            entry.0 += vote;
            entry.1 += 1;
        }
    }
    let mut out: Vec<Recommendation> = scores
        .into_iter()
        .filter(|&(_, (_, voters))| voters >= params.min_voters)
        .map(|(product, (score, voters))| Recommendation { product, score, voters })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.product.cmp(&b.product))
    });
    out
}

/// Restricts recommendations to products from categories the target has left
/// untouched: none of the product's descriptors (nor their ancestors below
/// ⊤) carry score in the target's profile.
///
/// This implements §3.4's content-driven novelty scheme.
pub fn novel_only(
    community: &Community,
    target_profile: semrec_profiles::ProfileView<'_>,
    recommendations: Vec<Recommendation>,
) -> Vec<Recommendation> {
    let taxonomy = &community.taxonomy;
    recommendations
        .into_iter()
        .filter(|rec| {
            community.catalog.descriptors(rec.product).iter().all(|&d| {
                // Untouched: the descriptor and all its proper ancestors
                // except ⊤ have zero profile score.
                target_profile.get(d) == 0.0
                    && taxonomy
                        .ancestors(d)
                        .iter()
                        .filter(|&&a| a != semrec_taxonomy::TopicId::TOP)
                        .all(|&a| target_profile.get(a) == 0.0)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_profiles::generation::{generate_profile, ProfileParams};
    use semrec_taxonomy::fixtures::example1;

    /// Alice rated nothing; Bob and Carol are her (weighted) peers.
    fn setup() -> (Community, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        let carol = c.add_agent("http://ex.org/carol").unwrap();
        // Bob: matrix analysis (1.0), snow crash (0.5).
        c.set_rating(bob, products[0], 1.0).unwrap();
        c.set_rating(bob, products[2], 0.5).unwrap();
        // Carol: snow crash (1.0), neuromancer (0.8), dislikes fermat (-0.5).
        c.set_rating(carol, products[2], 1.0).unwrap();
        c.set_rating(carol, products[3], 0.8).unwrap();
        c.set_rating(carol, products[1], -0.5).unwrap();
        (c, vec![alice, bob, carol], products)
    }

    #[test]
    fn products_backed_by_many_peers_win() {
        let (c, agents, products) = setup();
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &VotingParams::default(),
        );
        // Snow crash: 0.5 + 1.0 = 1.5 beats matrix analysis 1.0 and neuromancer 0.8.
        assert_eq!(recs[0].product, products[2]);
        assert_eq!(recs[0].voters, 2);
        assert!((recs[0].score - 1.5).abs() < 1e-12);
        assert_eq!(recs.len(), 3); // the disliked product never appears
    }

    #[test]
    fn already_rated_products_are_excluded() {
        let (mut c, agents, products) = setup();
        c.set_rating(agents[0], products[2], 0.1).unwrap();
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &VotingParams::default(),
        );
        assert!(recs.iter().all(|r| r.product != products[2]));
    }

    #[test]
    fn peer_weight_scales_votes() {
        let (c, agents, products) = setup();
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 0.1)],
            &VotingParams::default(),
        );
        // Bob's matrix analysis (1.0) now beats snow crash (0.5 + 0.1).
        assert_eq!(recs[0].product, products[0]);
    }

    #[test]
    fn min_voters_filters_singletons() {
        let (c, agents, products) = setup();
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &VotingParams { min_voters: 2, ..Default::default() },
        );
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].product, products[2]);
    }

    #[test]
    fn unweighted_votes_count_heads() {
        let (c, agents, products) = setup();
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &VotingParams { rating_weighted_votes: false, ..Default::default() },
        );
        let snow = recs.iter().find(|r| r.product == products[2]).unwrap();
        assert!((snow.score - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_peers_are_ignored() {
        let (c, agents, _) = setup();
        let recs = vote(&c, agents[0], &[(agents[1], 0.0)], &VotingParams::default());
        assert!(recs.is_empty());
    }

    #[test]
    fn novel_only_drops_familiar_branches() {
        let (mut c, agents, products) = setup();
        // Alice has read a math book: the Mathematics branch is familiar.
        c.set_rating(agents[0], products[1], 1.0).unwrap();
        let profile = generate_profile(
            &c.taxonomy,
            &c.catalog,
            c.ratings_of(agents[0]),
            &ProfileParams::default(),
        );
        let recs = vote(
            &c,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &VotingParams::default(),
        );
        let novel = novel_only(&c, profile.as_view(), recs.clone());
        // Matrix analysis shares the Mathematics branch → filtered; the
        // cyberpunk novels are genuinely new territory.
        assert!(novel.iter().all(|r| r.product != products[0]));
        assert!(novel.iter().any(|r| r.product == products[2]));
        assert!(novel.len() < recs.len());
    }
}
