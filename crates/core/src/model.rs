//! The information model of §3.1: agents `A`, products `B`, partial trust
//! functions `T`, partial rating functions `R`, taxonomy `C` and descriptor
//! assignment `f` — assembled into one [`Community`].
//!
//! Agent and rating data is conceptually *distributed* across machine-
//! readable homepages (the `semrec-web` crate simulates exactly that);
//! taxonomy, product set and descriptor assignment "must hold globally and
//! therefore offer public accessibility". A `Community` is the merged local
//! view a recommender works on after crawling.

use std::collections::HashMap;

use semrec_taxonomy::{Catalog, ProductId, Taxonomy};
use semrec_trust::{AgentId, TrustGraph};

use crate::error::{CoreError, Result};

/// Per-agent metadata: the URI that globally identifies the agent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgentInfo {
    /// Globally unique identifier ("assigned through URIs", §3.1).
    pub uri: String,
}

/// The §3.1 information model: a community of agents with trust statements
/// and product ratings over a shared taxonomy and catalog.
#[derive(Clone, Debug)]
pub struct Community {
    agents: Vec<AgentInfo>,
    by_uri: HashMap<String, AgentId>,
    /// The set `T` of partial trust functions.
    pub trust: TrustGraph,
    /// Partial rating functions `r_i: B → [-1, +1]⊥`, sorted by product id.
    ratings: Vec<Vec<(ProductId, f64)>>,
    /// The globally published taxonomy `C`.
    pub taxonomy: Taxonomy,
    /// The globally published product set `B` with descriptor assignment `f`.
    pub catalog: Catalog,
}

impl Community {
    /// Creates an empty community over the given global taxonomy and catalog.
    pub fn new(taxonomy: Taxonomy, catalog: Catalog) -> Self {
        Community {
            agents: Vec::new(),
            by_uri: HashMap::new(),
            trust: TrustGraph::new(),
            ratings: Vec::new(),
            taxonomy,
            catalog,
        }
    }

    /// Registers an agent by URI, returning its dense id.
    pub fn add_agent(&mut self, uri: impl Into<String>) -> Result<AgentId> {
        let uri = uri.into();
        if self.by_uri.contains_key(&uri) {
            return Err(CoreError::DuplicateAgent(uri));
        }
        let id = self.trust.add_agent();
        debug_assert_eq!(id.index(), self.agents.len());
        self.by_uri.insert(uri.clone(), id);
        self.agents.push(AgentInfo { uri });
        self.ratings.push(Vec::new());
        Ok(id)
    }

    /// Number of agents `n = |A|`.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Iterates all agent ids.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        (0..self.agents.len()).map(AgentId::from_index)
    }

    /// The agent's metadata.
    pub fn agent(&self, id: AgentId) -> Result<&AgentInfo> {
        self.agents.get(id.index()).ok_or(CoreError::UnknownAgent(id.index()))
    }

    /// Looks an agent up by URI.
    pub fn agent_by_uri(&self, uri: &str) -> Option<AgentId> {
        self.by_uri.get(uri).copied()
    }

    /// Sets `r_i(b_j) = rating`, replacing any previous rating.
    ///
    /// Ratings must lie in `[-1, +1]`; the product must be catalogued.
    pub fn set_rating(&mut self, agent: AgentId, product: ProductId, rating: f64) -> Result<()> {
        if agent.index() >= self.agents.len() {
            return Err(CoreError::UnknownAgent(agent.index()));
        }
        if product.index() >= self.catalog.len() {
            return Err(CoreError::UnknownProduct(product.index()));
        }
        if !(-1.0..=1.0).contains(&rating) || rating.is_nan() {
            return Err(CoreError::InvalidRating(rating));
        }
        let ratings = &mut self.ratings[agent.index()];
        match ratings.binary_search_by_key(&product, |&(p, _)| p) {
            Ok(pos) => ratings[pos].1 = rating,
            Err(pos) => ratings.insert(pos, (product, rating)),
        }
        Ok(())
    }

    /// `r_i(b_j)`: the rating, or `None` for `⊥`.
    pub fn rating(&self, agent: AgentId, product: ProductId) -> Option<f64> {
        let ratings = self.ratings.get(agent.index())?;
        ratings
            .binary_search_by_key(&product, |&(p, _)| p)
            .ok()
            .map(|pos| ratings[pos].1)
    }

    /// All ratings of an agent, sorted by product id.
    pub fn ratings_of(&self, agent: AgentId) -> &[(ProductId, f64)] {
        &self.ratings[agent.index()]
    }

    /// Removes a rating; returns `true` if one existed.
    pub fn remove_rating(&mut self, agent: AgentId, product: ProductId) -> bool {
        let Some(ratings) = self.ratings.get_mut(agent.index()) else { return false };
        match ratings.binary_search_by_key(&product, |&(p, _)| p) {
            Ok(pos) => {
                ratings.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Total number of rating statements across all agents.
    pub fn rating_count(&self) -> usize {
        self.ratings.iter().map(Vec::len).sum()
    }

    /// Flattens all rating lists into CSR arenas
    /// `(offsets, product ids, rating values)` — the snapshot-v2 body
    /// layout. `offsets` has `agent_count() + 1` entries.
    pub fn rating_arenas(&self) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let total = self.rating_count();
        let mut offsets = Vec::with_capacity(self.agents.len() + 1);
        let mut products = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        offsets.push(0u32);
        for list in &self.ratings {
            for &(p, v) in list {
                products.push(p.index() as u32);
                values.push(v);
            }
            offsets.push(products.len() as u32);
        }
        (offsets, products, values)
    }

    /// Reassembles a community from flat arenas, bypassing the incremental
    /// `add_agent`/`set_rating` path: the trust graph arrives whole (e.g.
    /// via `CsrGraph::to_graph`) and ratings arrive as the CSR arenas
    /// produced by [`Community::rating_arenas`]. Every structural invariant
    /// the mutating API maintains is validated here instead, so a corrupt
    /// snapshot yields a typed error rather than a malformed model.
    pub fn from_arenas(
        taxonomy: Taxonomy,
        catalog: Catalog,
        uris: Vec<String>,
        trust: TrustGraph,
        rating_offsets: &[u32],
        rating_products: &[u32],
        rating_values: &[f64],
    ) -> Result<Self> {
        if trust.agent_count() != uris.len() {
            return Err(CoreError::InvalidArena("trust graph and URI list disagree on agent count"));
        }
        if rating_products.len() != rating_values.len() {
            return Err(CoreError::InvalidArena("rating product and value arenas differ in length"));
        }
        if rating_offsets.len() != uris.len() + 1 {
            return Err(CoreError::InvalidArena("rating offset arena has wrong length"));
        }
        if rating_offsets.first() != Some(&0)
            || *rating_offsets.last().expect("length checked") as usize != rating_products.len()
        {
            return Err(CoreError::InvalidArena("rating offsets do not span the arena"));
        }
        // Monotonicity must hold for the WHOLE arena before any window is
        // sliced: a single spike ([0, huge, len]) would otherwise index out
        // of bounds in the window that precedes the violation.
        if rating_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(CoreError::InvalidArena("rating offset arena is not monotone"));
        }
        let mut by_uri = HashMap::with_capacity(uris.len());
        for (i, uri) in uris.iter().enumerate() {
            if by_uri.insert(uri.clone(), AgentId::from_index(i)).is_some() {
                return Err(CoreError::DuplicateAgent(uri.clone()));
            }
        }
        let mut ratings = Vec::with_capacity(uris.len());
        for w in rating_offsets.windows(2) {
            let range = w[0] as usize..w[1] as usize;
            let products = &rating_products[range.clone()];
            if !products.windows(2).all(|p| p[0] < p[1]) {
                return Err(CoreError::InvalidArena("agent ratings are not strictly sorted"));
            }
            let mut list = Vec::with_capacity(products.len());
            for (&p, &v) in products.iter().zip(&rating_values[range]) {
                if p as usize >= catalog.len() {
                    return Err(CoreError::UnknownProduct(p as usize));
                }
                if !(-1.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(CoreError::InvalidRating(v));
                }
                list.push((ProductId::from_index(p as usize), v));
            }
            ratings.push(list);
        }
        Ok(Community {
            agents: uris.into_iter().map(|uri| AgentInfo { uri }).collect(),
            by_uri,
            trust,
            ratings,
            taxonomy,
            catalog,
        })
    }

    /// Mean ratings per agent.
    pub fn mean_ratings_per_agent(&self) -> f64 {
        if self.agents.is_empty() {
            return 0.0;
        }
        self.rating_count() as f64 / self.agents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn community() -> (Community, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        (Community::new(e.fig.taxonomy, e.catalog), products)
    }

    #[test]
    fn agents_register_by_uri() {
        let (mut c, _) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        let bob = c.add_agent("http://example.org/bob").unwrap();
        assert_eq!(c.agent_count(), 2);
        assert_eq!(c.agent_by_uri("http://example.org/alice"), Some(alice));
        assert_eq!(c.agent(bob).unwrap().uri, "http://example.org/bob");
        assert_eq!(c.agent_by_uri("http://example.org/carol"), None);
        assert!(matches!(
            c.add_agent("http://example.org/alice"),
            Err(CoreError::DuplicateAgent(_))
        ));
    }

    #[test]
    fn trust_graph_stays_in_sync() {
        let (mut c, _) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        let bob = c.add_agent("http://example.org/bob").unwrap();
        c.trust.set_trust(alice, bob, 0.9).unwrap();
        assert_eq!(c.trust.trust(alice, bob), Some(0.9));
        assert_eq!(c.trust.agent_count(), c.agent_count());
    }

    #[test]
    fn ratings_are_partial_functions() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        c.set_rating(alice, products[0], 0.8).unwrap();
        c.set_rating(alice, products[1], -0.5).unwrap();
        assert_eq!(c.rating(alice, products[0]), Some(0.8));
        assert_eq!(c.rating(alice, products[2]), None); // ⊥
        assert_eq!(c.ratings_of(alice).len(), 2);
        c.set_rating(alice, products[0], 1.0).unwrap();
        assert_eq!(c.rating(alice, products[0]), Some(1.0));
        assert_eq!(c.rating_count(), 2);
    }

    #[test]
    fn rating_validation() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        assert!(matches!(
            c.set_rating(alice, products[0], 1.5),
            Err(CoreError::InvalidRating(_))
        ));
        assert!(matches!(
            c.set_rating(alice, ProductId::from_index(999), 0.5),
            Err(CoreError::UnknownProduct(999))
        ));
        let ghost = AgentId::from_index(42);
        assert!(matches!(
            c.set_rating(ghost, products[0], 0.5),
            Err(CoreError::UnknownAgent(42))
        ));
    }

    #[test]
    fn remove_rating() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        c.set_rating(alice, products[0], 0.8).unwrap();
        assert!(c.remove_rating(alice, products[0]));
        assert!(!c.remove_rating(alice, products[0]));
        assert_eq!(c.rating(alice, products[0]), None);
    }

    #[test]
    fn arena_round_trip_preserves_the_model() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        let bob = c.add_agent("http://example.org/bob").unwrap();
        c.trust.set_trust(alice, bob, 0.7).unwrap();
        c.set_rating(alice, products[0], 0.8).unwrap();
        c.set_rating(alice, products[2], -0.25).unwrap();
        c.set_rating(bob, products[1], 1.0).unwrap();
        let (offsets, prods, values) = c.rating_arenas();
        let rebuilt = Community::from_arenas(
            c.taxonomy.clone(),
            c.catalog.clone(),
            vec!["http://example.org/alice".into(), "http://example.org/bob".into()],
            c.trust.clone(),
            &offsets,
            &prods,
            &values,
        )
        .unwrap();
        assert_eq!(rebuilt.agent_count(), 2);
        assert_eq!(rebuilt.agent_by_uri("http://example.org/bob"), Some(bob));
        for a in c.agents() {
            assert_eq!(rebuilt.ratings_of(a), c.ratings_of(a));
        }
        assert_eq!(rebuilt.trust.trust(alice, bob), Some(0.7));
    }

    #[test]
    fn corrupt_arenas_are_rejected() {
        let (c, _) = community();
        let uris = vec!["http://example.org/a".to_string(), "http://example.org/b".to_string()];
        let trust = {
            let mut t = TrustGraph::new();
            t.add_agent();
            t.add_agent();
            t
        };
        let tax = || c.taxonomy.clone();
        let cat = || c.catalog.clone();
        // Wrong offset length.
        assert!(matches!(
            Community::from_arenas(tax(), cat(), uris.clone(), trust.clone(), &[0, 0], &[], &[]),
            Err(CoreError::InvalidArena(_))
        ));
        // Duplicate URI.
        assert!(matches!(
            Community::from_arenas(
                tax(),
                cat(),
                vec!["http://x".into(), "http://x".into()],
                trust.clone(),
                &[0, 0, 0],
                &[],
                &[],
            ),
            Err(CoreError::DuplicateAgent(_))
        ));
        // Out-of-range product and out-of-range rating.
        assert!(matches!(
            Community::from_arenas(
                tax(),
                cat(),
                uris.clone(),
                trust.clone(),
                &[0, 1, 1],
                &[999],
                &[0.5],
            ),
            Err(CoreError::UnknownProduct(999))
        ));
        assert!(matches!(
            Community::from_arenas(tax(), cat(), uris.clone(), trust.clone(), &[0, 1, 1], &[0], &[7.0]),
            Err(CoreError::InvalidRating(_))
        ));
        // Unsorted ratings.
        assert!(matches!(
            Community::from_arenas(
                tax(),
                cat(),
                uris,
                trust,
                &[0, 2, 2],
                &[1, 0],
                &[0.5, 0.5],
            ),
            Err(CoreError::InvalidArena(_))
        ));
    }

    #[test]
    fn statistics() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/a").unwrap();
        let _bob = c.add_agent("http://example.org/b").unwrap();
        c.set_rating(alice, products[0], 1.0).unwrap();
        assert_eq!(c.mean_ratings_per_agent(), 0.5);
    }
}
