//! The information model of §3.1: agents `A`, products `B`, partial trust
//! functions `T`, partial rating functions `R`, taxonomy `C` and descriptor
//! assignment `f` — assembled into one [`Community`].
//!
//! Agent and rating data is conceptually *distributed* across machine-
//! readable homepages (the `semrec-web` crate simulates exactly that);
//! taxonomy, product set and descriptor assignment "must hold globally and
//! therefore offer public accessibility". A `Community` is the merged local
//! view a recommender works on after crawling.

use std::collections::HashMap;

use semrec_taxonomy::{Catalog, ProductId, Taxonomy};
use semrec_trust::{AgentId, TrustGraph};

use crate::error::{CoreError, Result};

/// Per-agent metadata: the URI that globally identifies the agent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgentInfo {
    /// Globally unique identifier ("assigned through URIs", §3.1).
    pub uri: String,
}

/// The §3.1 information model: a community of agents with trust statements
/// and product ratings over a shared taxonomy and catalog.
#[derive(Clone, Debug)]
pub struct Community {
    agents: Vec<AgentInfo>,
    by_uri: HashMap<String, AgentId>,
    /// The set `T` of partial trust functions.
    pub trust: TrustGraph,
    /// Partial rating functions `r_i: B → [-1, +1]⊥`, sorted by product id.
    ratings: Vec<Vec<(ProductId, f64)>>,
    /// The globally published taxonomy `C`.
    pub taxonomy: Taxonomy,
    /// The globally published product set `B` with descriptor assignment `f`.
    pub catalog: Catalog,
}

impl Community {
    /// Creates an empty community over the given global taxonomy and catalog.
    pub fn new(taxonomy: Taxonomy, catalog: Catalog) -> Self {
        Community {
            agents: Vec::new(),
            by_uri: HashMap::new(),
            trust: TrustGraph::new(),
            ratings: Vec::new(),
            taxonomy,
            catalog,
        }
    }

    /// Registers an agent by URI, returning its dense id.
    pub fn add_agent(&mut self, uri: impl Into<String>) -> Result<AgentId> {
        let uri = uri.into();
        if self.by_uri.contains_key(&uri) {
            return Err(CoreError::DuplicateAgent(uri));
        }
        let id = self.trust.add_agent();
        debug_assert_eq!(id.index(), self.agents.len());
        self.by_uri.insert(uri.clone(), id);
        self.agents.push(AgentInfo { uri });
        self.ratings.push(Vec::new());
        Ok(id)
    }

    /// Number of agents `n = |A|`.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Iterates all agent ids.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        (0..self.agents.len()).map(AgentId::from_index)
    }

    /// The agent's metadata.
    pub fn agent(&self, id: AgentId) -> Result<&AgentInfo> {
        self.agents.get(id.index()).ok_or(CoreError::UnknownAgent(id.index()))
    }

    /// Looks an agent up by URI.
    pub fn agent_by_uri(&self, uri: &str) -> Option<AgentId> {
        self.by_uri.get(uri).copied()
    }

    /// Sets `r_i(b_j) = rating`, replacing any previous rating.
    ///
    /// Ratings must lie in `[-1, +1]`; the product must be catalogued.
    pub fn set_rating(&mut self, agent: AgentId, product: ProductId, rating: f64) -> Result<()> {
        if agent.index() >= self.agents.len() {
            return Err(CoreError::UnknownAgent(agent.index()));
        }
        if product.index() >= self.catalog.len() {
            return Err(CoreError::UnknownProduct(product.index()));
        }
        if !(-1.0..=1.0).contains(&rating) || rating.is_nan() {
            return Err(CoreError::InvalidRating(rating));
        }
        let ratings = &mut self.ratings[agent.index()];
        match ratings.binary_search_by_key(&product, |&(p, _)| p) {
            Ok(pos) => ratings[pos].1 = rating,
            Err(pos) => ratings.insert(pos, (product, rating)),
        }
        Ok(())
    }

    /// `r_i(b_j)`: the rating, or `None` for `⊥`.
    pub fn rating(&self, agent: AgentId, product: ProductId) -> Option<f64> {
        let ratings = self.ratings.get(agent.index())?;
        ratings
            .binary_search_by_key(&product, |&(p, _)| p)
            .ok()
            .map(|pos| ratings[pos].1)
    }

    /// All ratings of an agent, sorted by product id.
    pub fn ratings_of(&self, agent: AgentId) -> &[(ProductId, f64)] {
        &self.ratings[agent.index()]
    }

    /// Removes a rating; returns `true` if one existed.
    pub fn remove_rating(&mut self, agent: AgentId, product: ProductId) -> bool {
        let Some(ratings) = self.ratings.get_mut(agent.index()) else { return false };
        match ratings.binary_search_by_key(&product, |&(p, _)| p) {
            Ok(pos) => {
                ratings.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Total number of rating statements across all agents.
    pub fn rating_count(&self) -> usize {
        self.ratings.iter().map(Vec::len).sum()
    }

    /// Mean ratings per agent.
    pub fn mean_ratings_per_agent(&self) -> f64 {
        if self.agents.is_empty() {
            return 0.0;
        }
        self.rating_count() as f64 / self.agents.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn community() -> (Community, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        (Community::new(e.fig.taxonomy, e.catalog), products)
    }

    #[test]
    fn agents_register_by_uri() {
        let (mut c, _) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        let bob = c.add_agent("http://example.org/bob").unwrap();
        assert_eq!(c.agent_count(), 2);
        assert_eq!(c.agent_by_uri("http://example.org/alice"), Some(alice));
        assert_eq!(c.agent(bob).unwrap().uri, "http://example.org/bob");
        assert_eq!(c.agent_by_uri("http://example.org/carol"), None);
        assert!(matches!(
            c.add_agent("http://example.org/alice"),
            Err(CoreError::DuplicateAgent(_))
        ));
    }

    #[test]
    fn trust_graph_stays_in_sync() {
        let (mut c, _) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        let bob = c.add_agent("http://example.org/bob").unwrap();
        c.trust.set_trust(alice, bob, 0.9).unwrap();
        assert_eq!(c.trust.trust(alice, bob), Some(0.9));
        assert_eq!(c.trust.agent_count(), c.agent_count());
    }

    #[test]
    fn ratings_are_partial_functions() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        c.set_rating(alice, products[0], 0.8).unwrap();
        c.set_rating(alice, products[1], -0.5).unwrap();
        assert_eq!(c.rating(alice, products[0]), Some(0.8));
        assert_eq!(c.rating(alice, products[2]), None); // ⊥
        assert_eq!(c.ratings_of(alice).len(), 2);
        c.set_rating(alice, products[0], 1.0).unwrap();
        assert_eq!(c.rating(alice, products[0]), Some(1.0));
        assert_eq!(c.rating_count(), 2);
    }

    #[test]
    fn rating_validation() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        assert!(matches!(
            c.set_rating(alice, products[0], 1.5),
            Err(CoreError::InvalidRating(_))
        ));
        assert!(matches!(
            c.set_rating(alice, ProductId::from_index(999), 0.5),
            Err(CoreError::UnknownProduct(999))
        ));
        let ghost = AgentId::from_index(42);
        assert!(matches!(
            c.set_rating(ghost, products[0], 0.5),
            Err(CoreError::UnknownAgent(42))
        ));
    }

    #[test]
    fn remove_rating() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/alice").unwrap();
        c.set_rating(alice, products[0], 0.8).unwrap();
        assert!(c.remove_rating(alice, products[0]));
        assert!(!c.remove_rating(alice, products[0]));
        assert_eq!(c.rating(alice, products[0]), None);
    }

    #[test]
    fn statistics() {
        let (mut c, products) = community();
        let alice = c.add_agent("http://example.org/a").unwrap();
        let _bob = c.add_agent("http://example.org/b").unwrap();
        c.set_rating(alice, products[0], 1.0).unwrap();
        assert_eq!(c.mean_ratings_per_agent(), 0.5);
    }
}
