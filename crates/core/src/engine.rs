//! The unified recommender pipeline (§3): trust neighborhood formation →
//! similarity-based filtering → rank synthesization → recommendation
//! generation.
//!
//! All computation is *local to one given user* (§2): the engine never
//! compares the target against the whole community, only against the
//! bounded trust neighborhood — the scalability answer of §3.2.

use std::sync::Arc;

use semrec_profiles::generation::ProfileParams;
use semrec_trust::neighborhood::{form_neighborhood_csr, NeighborhoodParams};
use semrec_trust::{AgentId, CsrGraph};

use crate::error::Result;
use crate::health::SourceHealth;
use crate::model::Community;
use crate::profiles::{ProfileStore, SimilarityMeasure};
use crate::rank::{RankContext, RankedPeer, SharedRanker, SimilarityRanker};
use crate::recommend::{novel_only, vote, Recommendation, VotingParams};
use crate::synthesis::{PeerScores, SynthesisStrategy};

/// Full configuration of the recommendation pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecommenderConfig {
    /// Trust neighborhood formation (§3.2).
    pub neighborhood: NeighborhoodParams,
    /// Profile generation (§3.3, Eq. 3).
    pub profile: ProfileParams,
    /// Similarity measure over profiles (§3.3).
    pub similarity: SimilarityMeasure,
    /// Rank synthesization strategy (§3.4).
    pub synthesis: SynthesisStrategy,
    /// Voting scheme (§3.4).
    pub voting: VotingParams,
    /// Restrict output to §3.4's novelty scheme (untouched categories only).
    pub novel_categories_only: bool,
}

/// Diagnostic detail of one pipeline run.
///
/// The engine's primary record of a run now lives in the global metrics
/// registry (`engine.*` and `appleseed.*` names, see `semrec-obs`); the
/// public fields here are kept as a compatibility shim, populated with the
/// same values the registry receives. [`PipelineTrace::from_registry`]
/// rebuilds the trace of the most recent run from the registry alone.
#[derive(Clone, Debug)]
pub struct PipelineTrace {
    /// Neighborhood size after trust filtering.
    pub neighborhood_size: usize,
    /// Trust metric iterations.
    pub trust_iterations: usize,
    /// Nodes the trust metric explored.
    pub nodes_explored: usize,
    /// Peers surviving rank synthesization with positive weight.
    pub effective_peers: usize,
}

impl PipelineTrace {
    /// Reads the most recent run's trace back out of a metrics registry
    /// (the `engine.last.*` gauges). Under concurrent batch evaluation the
    /// gauges hold whichever run finished last; per-run traces should come
    /// from [`Recommender::recommend_traced`] directly.
    pub fn from_registry(registry: &semrec_obs::MetricsRegistry) -> PipelineTrace {
        let read = |name: &str| registry.gauge(name).get() as usize;
        PipelineTrace {
            neighborhood_size: read("engine.last.neighborhood_size"),
            trust_iterations: read("engine.last.trust_iterations"),
            nodes_explored: read("engine.last.nodes_explored"),
            effective_peers: read("engine.last.effective_peers"),
        }
    }

    /// Publishes this trace to a registry: cumulative counters
    /// (`engine.trust_iterations`, `engine.nodes_explored`,
    /// `engine.effective_peers`) plus the `engine.last.*` gauges backing
    /// [`PipelineTrace::from_registry`].
    fn publish(&self, registry: &semrec_obs::MetricsRegistry) {
        registry.counter("engine.runs").inc();
        registry.counter("engine.trust_iterations").add(self.trust_iterations as u64);
        registry.counter("engine.nodes_explored").add(self.nodes_explored as u64);
        registry.counter("engine.effective_peers").add(self.effective_peers as u64);
        registry.gauge("engine.last.neighborhood_size").set(self.neighborhood_size as f64);
        registry.gauge("engine.last.trust_iterations").set(self.trust_iterations as f64);
        registry.gauge("engine.last.nodes_explored").set(self.nodes_explored as f64);
        registry.gauge("engine.last.effective_peers").set(self.effective_peers as f64);
    }
}

/// The immutable model state behind a [`Recommender`]: community,
/// materialized profiles, configuration, and source health, bundled in one
/// allocation so serving layers can share it across worker threads via a
/// cheap `Arc` clone (see `semrec-serve`).
///
/// Once built the struct is never mutated — every pipeline stage reads it
/// through `&self` — which is what makes a hot snapshot swap safe: readers
/// pin the `Arc` they started with and the old model drops when the last
/// reader finishes.
#[derive(Clone, Debug)]
pub struct SharedModel {
    community: Community,
    /// Flat CSR mirror of `community.trust`, built once per model
    /// generation so every query's Appleseed walk runs over contiguous
    /// arenas instead of per-agent adjacency `Vec`s.
    trust_csr: CsrGraph,
    profiles: ProfileStore,
    config: RecommenderConfig,
    source_health: SourceHealth,
    ranker: SharedRanker,
}

impl SharedModel {
    /// Builds the model state, materializing every agent's profile once.
    /// Ranking uses the default [`SimilarityRanker`]; see
    /// [`SharedModel::with_ranker`] for a custom rank synthesization stage.
    pub fn new(community: Community, config: RecommenderConfig) -> Self {
        SharedModel::with_ranker(community, config, Arc::new(SimilarityRanker))
    }

    /// Like [`SharedModel::new`], with an explicit rank synthesization
    /// stage. The ranker travels with the model, so serving layers swap it
    /// with the same epoch publish that swaps models.
    pub fn with_ranker(
        community: Community,
        config: RecommenderConfig,
        ranker: SharedRanker,
    ) -> Self {
        let profiles = ProfileStore::build(&community, &config.profile);
        let trust_csr = CsrGraph::from_graph(&community.trust);
        let model = SharedModel {
            community,
            trust_csr,
            profiles,
            config,
            source_health: SourceHealth::default(),
            ranker,
        };
        model.publish_resident_bytes();
        model
    }

    /// Publishes the `model.bytes*` gauges: resident bytes of the flat
    /// model arenas (trust CSR + profile slab), refreshed on every model
    /// build or advance.
    fn publish_resident_bytes(&self) {
        let trust = self.trust_csr.resident_bytes();
        let profiles = self.profiles.resident_bytes();
        semrec_obs::gauge("model.bytes.trust_csr").set(trust as f64);
        semrec_obs::gauge("model.bytes.profile_slab").set(profiles as f64);
        semrec_obs::gauge("model.bytes").set((trust + profiles) as f64);
    }

    /// The flat CSR mirror of the community's trust graph.
    pub fn trust_csr(&self) -> &CsrGraph {
        &self.trust_csr
    }

    /// Bytes of resident flat-arena model storage (trust CSR plus profile
    /// slab).
    pub fn resident_bytes(&self) -> usize {
        self.trust_csr.resident_bytes() + self.profiles.resident_bytes()
    }

    /// The underlying community.
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// The materialized profile store.
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// The active configuration.
    pub fn config(&self) -> &RecommenderConfig {
        &self.config
    }

    /// The health of the source this community was assembled from.
    pub fn source_health(&self) -> &SourceHealth {
        &self.source_health
    }

    /// The active rank synthesization stage.
    pub fn ranker(&self) -> &SharedRanker {
        &self.ranker
    }

    /// Reassembles a model from explicitly supplied parts, e.g. as
    /// deserialized from a durable checkpoint (see `semrec-store`).
    ///
    /// Unlike [`SharedModel::new`] the profile store is *not* recomputed —
    /// the caller asserts that `profiles` is exactly what
    /// [`ProfileStore::build`] would produce for `community` under
    /// `config.profile`. Persistence round-trip tests prove that a model
    /// rebuilt this way answers every query byte-identically to the model
    /// it was captured from.
    ///
    /// Rankers are code, not data — checkpoints do not carry them — so the
    /// reassembled model ranks with the default [`SimilarityRanker`];
    /// attach a custom stage afterwards via [`Recommender::using_ranker`].
    pub fn from_parts(
        community: Community,
        profiles: ProfileStore,
        config: RecommenderConfig,
        source_health: SourceHealth,
    ) -> Self {
        debug_assert_eq!(
            profiles.len(),
            community.agent_count(),
            "one profile per agent, in agent-id order"
        );
        let trust_csr = CsrGraph::from_graph(&community.trust);
        SharedModel::from_parts_with_trust_csr(community, profiles, config, source_health, trust_csr)
    }

    /// [`SharedModel::from_parts`] for callers that already hold the trust
    /// CSR (the snapshot-v2 loader decodes it straight off disk), skipping
    /// the re-derivation from the adjacency graph.
    ///
    /// The caller asserts `trust_csr` is exactly what
    /// [`CsrGraph::from_graph`] would produce for `community.trust` —
    /// checked in debug builds.
    pub fn from_parts_with_trust_csr(
        community: Community,
        profiles: ProfileStore,
        config: RecommenderConfig,
        source_health: SourceHealth,
        trust_csr: CsrGraph,
    ) -> Self {
        debug_assert_eq!(
            profiles.len(),
            community.agent_count(),
            "one profile per agent, in agent-id order"
        );
        debug_assert!(
            {
                let derived = CsrGraph::from_graph(&community.trust);
                trust_csr.arenas() == derived.arenas()
            },
            "trust CSR must match the community's adjacency graph"
        );
        let model = SharedModel {
            community,
            trust_csr,
            profiles,
            config,
            source_health,
            ranker: Arc::new(SimilarityRanker),
        };
        model.publish_resident_bytes();
        model
    }

    /// Produces the next model generation from `next` incrementally:
    /// profiles of agents outside `delta` are shared with this generation
    /// by `Arc` clone, only dirty ones are recomputed — O(delta) profile
    /// work instead of a full [`SharedModel::new`] rebuild.
    ///
    /// Byte-identity contract: given a sound `delta` (every URI whose
    /// rating set differs is listed in `ratings_changed`), the returned
    /// model answers every query byte-identically to
    /// `SharedModel::new(next, *self.config())` with the same health
    /// attached — which is what lets the serving layer carry clean cache
    /// entries across the swap.
    ///
    /// Bumps the `model.profiles.reused` / `model.profiles.recomputed`
    /// counters.
    pub fn advance(
        &self,
        next: Community,
        delta: &crate::delta::ModelDelta,
        source_health: SourceHealth,
    ) -> (SharedModel, crate::delta::AdvanceStats) {
        let _span = semrec_obs::span("model.advance");
        let dirty: std::collections::HashSet<&str> =
            delta.ratings_changed.iter().map(String::as_str).collect();
        let (profiles, stats) = self.profiles.advance(&self.community, &next, &dirty);
        semrec_obs::counter("model.profiles.reused").add(stats.reused as u64);
        semrec_obs::counter("model.profiles.recomputed").add(stats.recomputed as u64);
        let trust_csr = CsrGraph::from_graph(&next.trust);
        let model = SharedModel {
            community: next,
            trust_csr,
            profiles,
            config: self.config,
            source_health,
            ranker: Arc::clone(&self.ranker),
        };
        model.publish_resident_bytes();
        (model, stats)
    }
}

/// The recommender engine: a community plus materialized profiles.
///
/// Internally just an `Arc<SharedModel>`, so cloning a `Recommender` (or
/// sharing one across threads) costs a reference count, not a profile
/// rebuild. All query methods take `&self` and never mutate the model.
#[derive(Clone, Debug)]
pub struct Recommender {
    model: Arc<SharedModel>,
}

impl Recommender {
    /// Builds the engine, materializing every agent's profile once. The
    /// community is assumed fully sourced; use
    /// [`Recommender::with_source_health`] when it came from a crawl that
    /// lost documents.
    pub fn new(community: Community, config: RecommenderConfig) -> Self {
        Recommender { model: Arc::new(SharedModel::new(community, config)) }
    }

    /// Like [`Recommender::new`], with an explicit rank synthesization
    /// stage (see [`crate::rank::Ranker`]).
    pub fn with_ranker(
        community: Community,
        config: RecommenderConfig,
        ranker: SharedRanker,
    ) -> Self {
        Recommender { model: Arc::new(SharedModel::with_ranker(community, config, ranker)) }
    }

    /// Wraps an already-shared model without copying it.
    pub fn from_shared(model: Arc<SharedModel>) -> Self {
        Recommender { model }
    }

    /// A shared handle to the immutable model state (cheap `Arc` clone).
    pub fn shared(&self) -> Arc<SharedModel> {
        Arc::clone(&self.model)
    }

    /// Attaches the [`SourceHealth`] of the crawl that assembled this
    /// community, so degraded runs are flagged in traces and explanations.
    /// Copy-on-write: if the model is currently shared, it is cloned first.
    pub fn with_source_health(mut self, health: SourceHealth) -> Self {
        Arc::make_mut(&mut self.model).source_health = health;
        self
    }

    /// Replaces the rank synthesization stage. Copy-on-write like
    /// [`Recommender::with_source_health`]: a shared model is cloned first,
    /// so other owners keep ranking with the stage they pinned. Profiles
    /// are *not* rebuilt — the ranker is downstream of them.
    pub fn using_ranker(mut self, ranker: SharedRanker) -> Self {
        Arc::make_mut(&mut self.model).ranker = ranker;
        self
    }

    /// The active rank synthesization stage.
    pub fn ranker(&self) -> &SharedRanker {
        self.model.ranker()
    }

    /// The health of the source this community was assembled from.
    pub fn source_health(&self) -> &SourceHealth {
        self.model.source_health()
    }

    /// The underlying community.
    pub fn community(&self) -> &Community {
        self.model.community()
    }

    /// The materialized profile store.
    pub fn profiles(&self) -> &ProfileStore {
        self.model.profiles()
    }

    /// The active configuration.
    pub fn config(&self) -> &RecommenderConfig {
        self.model.config()
    }

    /// Incrementally derives the engine for the next community generation —
    /// see [`SharedModel::advance`].
    pub fn advance(
        &self,
        next: Community,
        delta: &crate::delta::ModelDelta,
        source_health: SourceHealth,
    ) -> (Recommender, crate::delta::AdvanceStats) {
        let (model, stats) = self.model.advance(next, delta, source_health);
        (Recommender { model: Arc::new(model) }, stats)
    }

    /// Runs the §3.2 + §3.3 + §3.4 front half of the pipeline through the
    /// model's [`crate::rank::Ranker`], returning each peer's final weight together with
    /// its per-component decomposition.
    pub fn rank_peers(&self, target: AgentId) -> Result<(Vec<RankedPeer>, PipelineTrace)> {
        let model = &*self.model;
        let neighborhood = {
            let _stage = semrec_obs::span("engine.stage.neighborhood");
            form_neighborhood_csr(&model.trust_csr, target, &model.config.neighborhood)?
        };
        let peers: Vec<PeerScores> = {
            let _stage = semrec_obs::span("engine.stage.profiles");
            let target_profile = model.profiles.profile(target);
            neighborhood
                .normalized()
                .into_iter()
                .map(|(agent, trust)| PeerScores {
                    agent,
                    trust,
                    similarity: model
                        .config
                        .similarity
                        .apply(target_profile, model.profiles.profile(agent)),
                })
                .collect()
        };
        let ranked = {
            let _stage = semrec_obs::span("engine.stage.synthesis");
            let ctx = RankContext {
                target,
                neighborhood: &neighborhood,
                peers: &peers,
                community: &model.community,
                profiles: &model.profiles,
                config: &model.config,
            };
            model.ranker.rank(&ctx)
        };
        let trace = PipelineTrace {
            neighborhood_size: neighborhood.peers.len(),
            trust_iterations: neighborhood.iterations,
            nodes_explored: neighborhood.nodes_explored,
            effective_peers: ranked.len(),
        };
        trace.publish(semrec_obs::global());
        Ok((ranked, trace))
    }

    /// Computes the synthesized peer weights for a target agent — the
    /// weight-only view of [`Recommender::rank_peers`].
    pub fn peer_weights(&self, target: AgentId) -> Result<(Vec<(AgentId, f64)>, PipelineTrace)> {
        let (ranked, trace) = self.rank_peers(target)?;
        Ok((ranked.into_iter().map(|p| (p.agent, p.weight)).collect(), trace))
    }

    /// Produces the top-`n` recommendations for a target agent.
    pub fn recommend(&self, target: AgentId, n: usize) -> Result<Vec<Recommendation>> {
        Ok(self.recommend_traced(target, n)?.0)
    }

    /// Like [`Recommender::recommend`], also returning pipeline diagnostics.
    pub fn recommend_traced(
        &self,
        target: AgentId,
        n: usize,
    ) -> Result<(Vec<Recommendation>, PipelineTrace)> {
        if self.model.source_health.is_degraded() {
            // The run proceeds on the reachable subset; the registry keeps
            // score so `--metrics` dumps surface it.
            semrec_obs::counter("engine.degraded_runs").inc();
        }
        let (weighted, trace) = self.peer_weights(target)?;
        let model = &*self.model;
        let recs = {
            let _stage = semrec_obs::span("engine.stage.voting");
            let mut recs = vote(&model.community, target, &weighted, &model.config.voting);
            if model.config.novel_categories_only {
                recs = novel_only(&model.community, model.profiles.profile(target), recs);
            }
            recs.truncate(n);
            recs
        };
        Ok((recs, trace))
    }
}

// Compile-time guarantee that serving workers can share the model state
// across threads: if a non-Send/Sync field ever sneaks into the model, this
// fails to build rather than failing at a `thread::spawn` call site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedModel>();
    assert_send_sync::<Recommender>();
    assert_send_sync::<Arc<SharedModel>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;
    use semrec_taxonomy::ProductId;

    /// A small community where trust and taste align:
    /// alice trusts bob (math reader) and dave (sci-fi reader); alice reads math.
    fn setup() -> (Recommender, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        let dave = c.add_agent("http://ex.org/dave").unwrap();
        let eve = c.add_agent("http://ex.org/eve").unwrap();

        c.trust.set_trust(alice, bob, 0.9).unwrap();
        c.trust.set_trust(alice, dave, 0.8).unwrap();
        // Eve is not trusted by anyone alice knows.
        c.trust.set_trust(eve, alice, 1.0).unwrap();

        // Alice reads number theory.
        c.set_rating(alice, products[1], 1.0).unwrap();
        // Bob reads math: matrix analysis.
        c.set_rating(bob, products[0], 1.0).unwrap();
        // Dave reads cyberpunk.
        c.set_rating(dave, products[2], 1.0).unwrap();
        c.set_rating(dave, products[3], 0.9).unwrap();
        // Eve pushes neuromancer hard (but is outside the trust neighborhood).
        c.set_rating(eve, products[3], 1.0).unwrap();

        let rec = Recommender::new(c, RecommenderConfig::default());
        (rec, vec![alice, bob, dave, eve], products)
    }

    #[test]
    fn recommends_only_from_the_trust_neighborhood() {
        let (rec, agents, _) = setup();
        let (weights, trace) = rec.peer_weights(agents[0]).unwrap();
        assert!(weights.iter().all(|&(p, _)| p != agents[3]), "eve must be excluded");
        assert_eq!(trace.neighborhood_size, 2);
        assert!(trace.trust_iterations > 0);
    }

    #[test]
    fn similar_taste_peers_get_heavier_votes() {
        let (rec, agents, _) = setup();
        let (weights, _) = rec.peer_weights(agents[0]).unwrap();
        let w = |a: AgentId| weights.iter().find(|&&(p, _)| p == a).map_or(0.0, |&(_, w)| w);
        // Bob shares the Mathematics branch with alice; dave does not.
        assert!(w(agents[1]) > w(agents[2]), "bob {} vs dave {}", w(agents[1]), w(agents[2]));
    }

    #[test]
    fn top_recommendation_comes_from_trusted_similar_peer() {
        let (rec, agents, products) = setup();
        let recs = rec.recommend(agents[0], 3).unwrap();
        assert!(!recs.is_empty());
        assert_eq!(recs[0].product, products[0], "matrix analysis should lead");
        // Alice's own book never appears.
        assert!(recs.iter().all(|r| r.product != products[1]));
    }

    #[test]
    fn truncation_to_n() {
        let (rec, agents, _) = setup();
        assert_eq!(rec.recommend(agents[0], 1).unwrap().len(), 1);
        assert!(rec.recommend(agents[0], 100).unwrap().len() <= 3);
    }

    #[test]
    fn novelty_mode_filters_known_branches() {
        let (rec, agents, products) = setup();
        let config = RecommenderConfig { novel_categories_only: true, ..Default::default() };
        let rec = Recommender::new(rec.community().clone(), config);
        let recs = rec.recommend(agents[0], 10).unwrap();
        // Alice knows the Mathematics branch; only sci-fi is novel.
        assert!(recs.iter().all(|r| r.product != products[0]));
        assert!(recs.iter().any(|r| r.product == products[2] || r.product == products[3]));
    }

    #[test]
    fn isolated_agent_gets_no_recommendations() {
        let (rec, _, _) = setup();
        let mut c = rec.community().clone();
        let loner = c.add_agent("http://ex.org/loner").unwrap();
        let rec = Recommender::new(c, RecommenderConfig::default());
        let (recs, trace) = rec.recommend_traced(loner, 10).unwrap();
        assert!(recs.is_empty());
        assert_eq!(trace.neighborhood_size, 0);
    }

    #[test]
    fn clones_share_the_model_allocation() {
        let (rec, agents, _) = setup();
        let clone = rec.clone();
        assert!(Arc::ptr_eq(&rec.shared(), &clone.shared()));
        // A recommender rebuilt from the shared handle answers identically.
        let rebuilt = Recommender::from_shared(rec.shared());
        assert_eq!(
            rec.recommend(agents[0], 10).unwrap(),
            rebuilt.recommend(agents[0], 10).unwrap()
        );
    }

    #[test]
    fn with_source_health_copies_on_write_when_shared() {
        let (rec, _, _) = setup();
        let shared_before = rec.shared(); // second owner forces the copy
        let degraded = rec.clone().with_source_health(SourceHealth {
            attempted: 10,
            fetched: 5,
            unreachable: 5,
            ..SourceHealth::default()
        });
        assert!(degraded.source_health().is_degraded());
        assert!(
            !shared_before.source_health().is_degraded(),
            "mutating a shared model must not leak into other owners"
        );
    }

    #[test]
    fn advance_is_byte_identical_to_a_full_rebuild() {
        let (rec, agents, products) = setup();
        let mut next = rec.community().clone();
        next.set_rating(agents[1], products[2], 0.4).unwrap();
        let delta = crate::delta::ModelDelta {
            ratings_changed: vec!["http://ex.org/bob".to_owned()],
            trust_changed: Vec::new(),
        };
        let (incremental, stats) = rec.advance(next.clone(), &delta, SourceHealth::default());
        assert_eq!(stats.recomputed, 1);
        assert_eq!(stats.reused, 3);
        let full = Recommender::new(next, *rec.config());
        for &a in &agents {
            assert_eq!(
                incremental.recommend(a, 10).unwrap(),
                full.recommend(a, 10).unwrap(),
                "incremental and full rebuild must answer identically"
            );
        }
    }

    #[test]
    fn trace_reports_effective_peers() {
        let (rec, agents, _) = setup();
        let (_, trace) = rec.recommend_traced(agents[0], 10).unwrap();
        assert!(trace.effective_peers <= trace.neighborhood_size);
        assert!(trace.effective_peers >= 1);
    }
}
