//! Pluggable rank synthesization (§3.4 / §5): the last pipeline stage as a
//! trait, with the paper's open future-work gap closed by a two-phase
//! spreading-activation ranker.
//!
//! §5 of the paper explicitly leaves rank synthesization open. The
//! [`Ranker`] trait makes the stage pluggable: given the target's trust
//! neighborhood and the per-peer trust/similarity scores, a ranker produces
//! the final peer weights recommendation voting runs on.
//!
//! Two implementations ship:
//!
//! * [`SimilarityRanker`] — the original pipeline behavior, delegating to
//!   the configured [`crate::synthesis::SynthesisStrategy`]. Extracting it
//!   behind the trait
//!   is provably behavior-preserving (golden equivalence tests pin the
//!   refactor bit-for-bit).
//! * [`SpreadingActivationRanker`] — a two-phase ranker in the spirit of
//!   associative-memory retrieval (Collins & Loftus 1975; *The Universal
//!   Recommender*'s scoring over heterogeneous semantic networks): phase 1
//!   anchors candidate activations from the taxonomy-similarity-anchored
//!   score of the current neighborhood; phase 2 spreads activation over the
//!   merged trust + taxonomy graph with per-hop decay, fan-out
//!   normalization, and a bounded horizon. The final weight is a
//!   configurable blend ([`BlendWeights`]) of similarity, accumulated
//!   activation, and structural centrality.
//!
//! Every ranker must uphold the stage contract: output sorted by descending
//! weight (ties by ascending agent id), strictly positive finite weights,
//! candidates drawn only from the supplied neighborhood, and per-peer
//! [`ScoreComponents`] that sum exactly to the final weight — the
//! invariants `tests/proptest_ranking.rs` enforces for any impl.

use std::collections::BTreeMap;
use std::sync::Arc;

use semrec_trust::neighborhood::TrustNeighborhood;
use semrec_trust::AgentId;

use crate::engine::RecommenderConfig;
use crate::model::Community;
use crate::profiles::{ProfileStore, SimilarityMeasure};
use crate::synthesis::{synthesize, PeerScores};

/// Blend weights over the spreading-activation ranker's three score
/// components. Weights are relative: they are normalized by their sum, so
/// `{ 2, 0, 0 }` and `{ 1, 0, 0 }` describe the same ranking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlendWeights {
    /// Weight of the phase-1 similarity score (the synthesized
    /// trust × taxonomy-similarity rank of the neighborhood).
    pub similarity: f64,
    /// Weight of the accumulated phase-2 activation.
    pub activation: f64,
    /// Weight of structural centrality (normalized positive trust
    /// in-degree — how broadly the community vouches for the peer).
    pub centrality: f64,
}

impl BlendWeights {
    /// Similarity-only weights: the spreading ranker degenerates to
    /// [`SimilarityRanker`] (byte-identical output, not merely rank-order).
    pub const SIMILARITY_ONLY: BlendWeights =
        BlendWeights { similarity: 1.0, activation: 0.0, centrality: 0.0 };

    /// Sum of the raw weights.
    pub fn total(&self) -> f64 {
        self.similarity + self.activation + self.centrality
    }

    /// Weights scaled to sum to 1, or [`BlendWeights::SIMILARITY_ONLY`]
    /// when the sum is not positive (nothing meaningful to blend).
    pub fn normalized(&self) -> BlendWeights {
        let total = self.total();
        if !total.is_finite() || total <= 0.0 {
            return BlendWeights::SIMILARITY_ONLY;
        }
        BlendWeights {
            similarity: self.similarity / total,
            activation: self.activation / total,
            centrality: self.centrality / total,
        }
    }
}

impl Default for BlendWeights {
    /// The Ethos retrieval defaults: similarity still dominates, activation
    /// and structure refine.
    fn default() -> Self {
        BlendWeights { similarity: 0.5, activation: 0.3, centrality: 0.2 }
    }
}

/// Per-component decomposition of one peer's final rank weight.
///
/// The invariant every ranker upholds: the components sum (in field order)
/// to exactly the peer's published weight, so explanations can attribute
/// *why* a peer ranked where it did without re-running the ranker.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScoreComponents {
    /// Contribution of the (synthesized) similarity score.
    pub similarity: f64,
    /// Contribution of accumulated spreading activation.
    pub activation: f64,
    /// Contribution of structural centrality.
    pub centrality: f64,
}

impl ScoreComponents {
    /// A similarity-only decomposition.
    pub fn similarity_only(weight: f64) -> Self {
        ScoreComponents { similarity: weight, activation: 0.0, centrality: 0.0 }
    }

    /// The components summed in field order — bit-identical to the weight
    /// computed by [`RankedPeer::new`].
    pub fn total(&self) -> f64 {
        self.similarity + self.activation + self.centrality
    }

    /// Every component scaled by `factor` (e.g. a vote's rating).
    pub fn scaled(&self, factor: f64) -> ScoreComponents {
        ScoreComponents {
            similarity: self.similarity * factor,
            activation: self.activation * factor,
            centrality: self.centrality * factor,
        }
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &ScoreComponents) {
        self.similarity += other.similarity;
        self.activation += other.activation;
        self.centrality += other.centrality;
    }
}

/// One ranked peer: the final weight recommendation voting uses, plus its
/// decomposition into score components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedPeer {
    /// The peer.
    pub agent: AgentId,
    /// Final rank weight (strictly positive for emitted peers).
    pub weight: f64,
    /// Decomposition summing exactly to `weight`.
    pub components: ScoreComponents,
}

impl RankedPeer {
    /// Builds a peer whose weight is exactly the component sum.
    pub fn new(agent: AgentId, components: ScoreComponents) -> Self {
        RankedPeer { agent, weight: components.total(), components }
    }
}

/// Everything a [`Ranker`] may consult: the §3.2 neighborhood, the per-peer
/// trust/similarity scores the profile stage computed, and read access to
/// the full immutable model for graph- or content-aware ranking.
#[derive(Clone, Copy, Debug)]
pub struct RankContext<'a> {
    /// The agent being recommended to.
    pub target: AgentId,
    /// The trust neighborhood of the target (§3.2).
    pub neighborhood: &'a TrustNeighborhood,
    /// Per-peer normalized trust rank and profile similarity (§3.3).
    pub peers: &'a [PeerScores],
    /// The community (trust graph, ratings, taxonomy, catalog).
    pub community: &'a Community,
    /// Materialized taxonomy profiles of every agent.
    pub profiles: &'a ProfileStore,
    /// The active engine configuration.
    pub config: &'a RecommenderConfig,
}

/// A pluggable rank synthesization stage.
///
/// Implementations must be deterministic pure functions of the context
/// (byte-identical output across runs and thread counts — the property
/// suite enforces this) and must emit peers sorted by descending weight
/// with ascending agent id as the tie-break, the same total order
/// [`synthesize`] uses.
pub trait Ranker: Send + Sync + std::fmt::Debug {
    /// A short stable name for metrics and display.
    fn name(&self) -> &'static str;

    /// Ranks the neighborhood peers of `ctx.target`.
    fn rank(&self, ctx: &RankContext<'_>) -> Vec<RankedPeer>;
}

/// A shared, snapshot-safe handle to a ranker. Lives inside
/// `SharedModel`, so serving layers swap rankers with the same epoch
/// publish that swaps models.
pub type SharedRanker = Arc<dyn Ranker>;

/// The original pipeline ranking as a [`Ranker`]: delegates to the
/// configured [`crate::synthesis::SynthesisStrategy`] — the pre-trait
/// behavior, bit-for-bit (golden equivalence tests hold that line).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimilarityRanker;

impl Ranker for SimilarityRanker {
    fn name(&self) -> &'static str {
        "similarity"
    }

    fn rank(&self, ctx: &RankContext<'_>) -> Vec<RankedPeer> {
        semrec_obs::counter("rank.similarity.runs").inc();
        synthesize(ctx.config.synthesis, ctx.peers)
            .into_iter()
            .map(|(agent, weight)| RankedPeer {
                agent,
                weight,
                components: ScoreComponents::similarity_only(weight),
            })
            .collect()
    }
}

/// Parameters of the two-phase spreading-activation ranker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadingParams {
    /// Fraction of activation retained per hop (`spreading_strength`);
    /// clamped to `[0, 1]`. Accumulated activation is monotone
    /// non-decreasing in this retention — equivalently, monotone
    /// non-increasing in the amount of per-hop decay.
    pub decay: f64,
    /// Maximum propagation depth: agents beyond this many merged-graph hops
    /// from the anchor set never receive activation.
    pub horizon: usize,
    /// Final-score blend over similarity / activation / centrality.
    pub blend: BlendWeights,
    /// Minimum profile similarity for a taxonomy edge between two agents of
    /// the spread universe.
    pub sim_edge_threshold: f64,
    /// Cap on the spread universe (anchors plus trust-reachable frontier) —
    /// the bound that keeps ranking local (§2 scalability).
    pub max_nodes: usize,
}

impl Default for SpreadingParams {
    fn default() -> Self {
        SpreadingParams {
            decay: 0.85,
            horizon: 3,
            blend: BlendWeights::default(),
            sim_edge_threshold: 0.001,
            max_nodes: 128,
        }
    }
}

/// Outcome of one phase-2 spread: accumulated activation per reached agent
/// plus the work the spread performed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpreadResult {
    /// Accumulated activation per agent. Only agents reachable from the
    /// anchor set within the horizon (and the universe cap) appear; an
    /// absent agent has activation 0 by construction.
    pub activation: BTreeMap<AgentId, f64>,
    /// Hops actually executed (≤ horizon; fewer when energy dies out).
    pub hops: usize,
    /// Size of the explored universe (anchors + trust-reachable frontier).
    pub explored: usize,
    /// Active-node count after each executed hop.
    pub frontier_sizes: Vec<usize>,
}

/// Phase 2: spreads anchor activation over the merged trust + taxonomy
/// graph.
///
/// The universe is the anchor set plus agents reachable from it via
/// positive trust edges within `horizon` hops, capped at
/// [`SpreadingParams::max_nodes`] (deterministic breadth-first discovery).
/// Within the universe, edges are the union of positive trust statements
/// (weight = trust) and taxonomy edges between agents whose profile
/// similarity clears [`SpreadingParams::sim_edge_threshold`] (undirected,
/// weight = similarity). Each hop transfers
/// `activation · weight · decay / fan-out` along every edge; transferred
/// energy — not the running total — spreads on the next hop, so a path of
/// length `k` is attenuated by `decay^k` and nothing self-amplifies. The
/// target itself is excluded from the universe: it is the query, not a
/// conduit, and routing energy through it would echo its own edges back.
pub fn spread_activation(
    community: &Community,
    profiles: &ProfileStore,
    measure: SimilarityMeasure,
    target: AgentId,
    anchors: &[(AgentId, f64)],
    params: &SpreadingParams,
) -> SpreadResult {
    let decay = params.decay.clamp(0.0, 1.0);
    if anchors.is_empty() || params.horizon == 0 || decay == 0.0 {
        return SpreadResult {
            activation: anchors.iter().copied().collect(),
            hops: 0,
            explored: anchors.len(),
            frontier_sizes: Vec::new(),
        };
    }

    // Universe discovery: BFS over positive trust edges from the anchors.
    let mut universe: Vec<AgentId> = anchors.iter().map(|&(a, _)| a).collect();
    universe.sort();
    universe.dedup();
    let mut member: BTreeMap<AgentId, usize> =
        universe.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    let mut frontier: Vec<AgentId> = universe.clone();
    for _ in 0..params.horizon {
        let mut next = Vec::new();
        for &node in &frontier {
            for (nbr, _) in community.trust.positive_out_edges(node) {
                if nbr == target || member.contains_key(&nbr) {
                    continue;
                }
                if universe.len() >= params.max_nodes.max(anchors.len()) {
                    continue;
                }
                member.insert(nbr, universe.len());
                universe.push(nbr);
                next.push(nbr);
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    // Merged edges, indexed over the universe: positive trust statements
    // plus taxonomy-similarity links.
    let n = universe.len();
    let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (i, &node) in universe.iter().enumerate() {
        for (nbr, w) in community.trust.positive_out_edges(node) {
            if let Some(&j) = member.get(&nbr) {
                adjacency[i].push((j, w));
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let Some(sim) = profiles.similarity(measure, universe[i], universe[j]) else {
                continue;
            };
            if sim >= params.sim_edge_threshold && sim > 0.0 {
                adjacency[i].push((j, sim));
                adjacency[j].push((i, sim));
            }
        }
    }

    // Iterative spread: `active` holds the energy that arrived last hop.
    let mut active = vec![0.0f64; n];
    let mut accumulated = vec![0.0f64; n];
    for &(agent, anchor) in anchors {
        let i = member[&agent];
        active[i] += anchor;
        accumulated[i] += anchor;
    }
    let mut hops = 0;
    let mut frontier_sizes = Vec::new();
    for _ in 0..params.horizon {
        let mut next = vec![0.0f64; n];
        let mut transferred = false;
        for i in 0..n {
            if active[i] <= 0.0 || adjacency[i].is_empty() {
                continue;
            }
            let share = decay / adjacency[i].len() as f64;
            for &(j, w) in &adjacency[i] {
                let energy = active[i] * w * share;
                if energy > 0.0 {
                    next[j] += energy;
                    transferred = true;
                }
            }
        }
        if !transferred {
            break;
        }
        hops += 1;
        for i in 0..n {
            accumulated[i] += next[i];
        }
        frontier_sizes.push(next.iter().filter(|&&e| e > 0.0).count());
        active = next;
    }

    let activation = universe
        .iter()
        .zip(&accumulated)
        .filter(|&(_, &a)| a > 0.0)
        .map(|(&agent, &a)| (agent, a))
        .collect();
    SpreadResult { activation, hops, explored: n, frontier_sizes }
}

/// The two-phase spreading-activation ranker closing the paper's §5 gap.
///
/// Phase 1 anchors each neighborhood peer with its taxonomy-similarity
/// score (the positive similarity normalized by the neighborhood maximum,
/// exactly the scale [`crate::synthesis::SynthesisStrategy::LinearBlend`]
/// uses). Phase 2 spreads that activation over the merged trust + taxonomy
/// graph via [`spread_activation`]. The final weight of each neighborhood
/// peer blends three normalized signals under
/// [`SpreadingParams::blend`]: the synthesized similarity score (what
/// [`SimilarityRanker`] would emit), the accumulated activation, and
/// structural centrality (positive trust in-degree, normalized over the
/// candidates).
///
/// With [`BlendWeights::SIMILARITY_ONLY`] the output is byte-identical to
/// [`SimilarityRanker`] — the equivalence the property suite pins.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpreadingActivationRanker {
    /// Spread and blend parameters.
    pub params: SpreadingParams,
}

impl SpreadingActivationRanker {
    /// A ranker with the given parameters.
    pub fn new(params: SpreadingParams) -> Self {
        SpreadingActivationRanker { params }
    }

    /// Phase-1 anchors for a context: each peer's positive similarity
    /// normalized by the neighborhood's maximum (peers without a positive
    /// similarity carry no anchor energy).
    pub fn anchors(ctx: &RankContext<'_>) -> Vec<(AgentId, f64)> {
        let max_sim =
            ctx.peers.iter().filter_map(|p| p.similarity).fold(0.0f64, f64::max);
        ctx.peers
            .iter()
            .filter_map(|p| {
                let sim = p.similarity.unwrap_or(0.0).max(0.0);
                let sim = if max_sim > 0.0 { sim / max_sim } else { sim };
                (sim > 0.0).then_some((p.agent, sim))
            })
            .collect()
    }

    /// Runs phase 2 for a context and returns the full spread outcome —
    /// the introspection hook the ranking property tests use.
    pub fn spread(&self, ctx: &RankContext<'_>) -> SpreadResult {
        spread_activation(
            ctx.community,
            ctx.profiles,
            ctx.config.similarity,
            ctx.target,
            &Self::anchors(ctx),
            &self.params,
        )
    }
}

impl Ranker for SpreadingActivationRanker {
    fn name(&self) -> &'static str {
        "spreading-activation"
    }

    fn rank(&self, ctx: &RankContext<'_>) -> Vec<RankedPeer> {
        let _span = semrec_obs::span("rank.spread");
        semrec_obs::counter("rank.spread.runs").inc();
        let blend = self.params.blend.normalized();
        semrec_obs::gauge("rank.blend.similarity").set(blend.similarity);
        semrec_obs::gauge("rank.blend.activation").set(blend.activation);
        semrec_obs::gauge("rank.blend.centrality").set(blend.centrality);

        // Phase-1 similarity signal: exactly the synthesized score the
        // SimilarityRanker would emit (absent peers score 0).
        let base: BTreeMap<AgentId, f64> =
            synthesize(ctx.config.synthesis, ctx.peers).into_iter().collect();

        // Phase 2, skipped entirely when activation carries no weight so
        // the similarity-only blend costs exactly what SimilarityRanker
        // costs (and is byte-identical to it).
        let spread = if blend.activation > 0.0 {
            let result = self.spread(ctx);
            semrec_obs::counter("rank.activation.hops").add(result.hops as u64);
            semrec_obs::counter("rank.activation.nodes").add(result.activation.len() as u64);
            semrec_obs::counter("rank.universe.explored").add(result.explored as u64);
            let frontier = semrec_obs::histogram("rank.frontier.size");
            for &size in &result.frontier_sizes {
                frontier.observe(size as f64);
            }
            result
        } else {
            SpreadResult::default()
        };
        let max_activation =
            ctx.peers.iter().filter_map(|p| spread.activation.get(&p.agent)).fold(0.0f64, |m, &a| m.max(a));

        // Structural centrality: positive trust in-degree, normalized over
        // the candidate set.
        let in_degree = |agent: AgentId| -> f64 {
            ctx.community
                .trust
                .trusters_of(agent)
                .iter()
                .filter(|&&s| ctx.community.trust.trust(s, agent).is_some_and(|w| w > 0.0))
                .count() as f64
        };
        let centrality: Vec<f64> = if blend.centrality > 0.0 {
            ctx.peers.iter().map(|p| in_degree(p.agent)).collect()
        } else {
            vec![0.0; ctx.peers.len()]
        };
        let max_centrality = centrality.iter().copied().fold(0.0f64, f64::max);

        let mut out: Vec<RankedPeer> = ctx
            .peers
            .iter()
            .zip(&centrality)
            .map(|(p, &cent)| {
                let sim = base.get(&p.agent).copied().unwrap_or(0.0);
                let act = spread.activation.get(&p.agent).copied().unwrap_or(0.0);
                let act = if max_activation > 0.0 { act / max_activation } else { act };
                let cent = if max_centrality > 0.0 { cent / max_centrality } else { cent };
                RankedPeer::new(
                    p.agent,
                    ScoreComponents {
                        similarity: blend.similarity * sim,
                        activation: blend.activation * act,
                        centrality: blend.centrality * cent,
                    },
                )
            })
            .filter(|p| p.weight > 0.0)
            .collect();
        out.sort_by(|a, b| {
            b.weight.partial_cmp(&a.weight).unwrap().then(a.agent.cmp(&b.agent))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Recommender;
    use semrec_taxonomy::fixtures::example1;
    use semrec_taxonomy::ProductId;

    fn world() -> (Community, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> = (0..6)
            .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
            .collect();
        // u0 trusts u1, u2; u1 trusts u3; u2 trusts u4; u4 trusts u5.
        c.trust.set_trust(agents[0], agents[1], 0.9).unwrap();
        c.trust.set_trust(agents[0], agents[2], 0.7).unwrap();
        c.trust.set_trust(agents[1], agents[3], 0.8).unwrap();
        c.trust.set_trust(agents[2], agents[4], 0.6).unwrap();
        c.trust.set_trust(agents[4], agents[5], 0.9).unwrap();
        for (i, &a) in agents.iter().enumerate() {
            c.set_rating(a, products[i % 4], 1.0).unwrap();
        }
        (c, agents, products)
    }

    fn context_parts(c: &Community) -> (crate::profiles::ProfileStore, RecommenderConfig) {
        let config = RecommenderConfig::default();
        (crate::profiles::ProfileStore::build(c, &config.profile), config)
    }

    #[test]
    fn blend_normalization_falls_back_to_similarity_only() {
        let zero = BlendWeights { similarity: 0.0, activation: 0.0, centrality: 0.0 };
        assert_eq!(zero.normalized(), BlendWeights::SIMILARITY_ONLY);
        let n = BlendWeights { similarity: 2.0, activation: 1.0, centrality: 1.0 }.normalized();
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert!((n.similarity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ranked_peer_weight_is_exactly_the_component_sum() {
        let p = RankedPeer::new(
            AgentId::from_index(3),
            ScoreComponents { similarity: 0.1, activation: 0.2, centrality: 0.3 },
        );
        assert_eq!(p.weight.to_bits(), p.components.total().to_bits());
    }

    #[test]
    fn similarity_only_blend_is_byte_identical_to_similarity_ranker() {
        let (c, agents, _) = world();
        let spread = Recommender::with_ranker(
            c.clone(),
            RecommenderConfig::default(),
            Arc::new(SpreadingActivationRanker::new(SpreadingParams {
                blend: BlendWeights::SIMILARITY_ONLY,
                ..SpreadingParams::default()
            })),
        );
        let plain = Recommender::new(c, RecommenderConfig::default());
        for &a in &agents {
            let (sw, _) = spread.peer_weights(a).unwrap();
            let (pw, _) = plain.peer_weights(a).unwrap();
            let bits = |v: &[(AgentId, f64)]| -> Vec<(AgentId, u64)> {
                v.iter().map(|&(p, w)| (p, w.to_bits())).collect()
            };
            assert_eq!(bits(&sw), bits(&pw));
        }
    }

    #[test]
    fn activation_never_reaches_past_the_horizon() {
        let (c, agents, _) = world();
        let (profiles, config) = context_parts(&c);
        // Anchor only u1; with horizon 1, u5 (3 trust hops away via
        // u1→…→nothing; reachable only through u2's branch) must stay dark.
        let params = SpreadingParams {
            horizon: 1,
            sim_edge_threshold: f64::INFINITY, // trust edges only
            ..SpreadingParams::default()
        };
        let result = spread_activation(
            &c,
            &profiles,
            config.similarity,
            agents[0],
            &[(agents[1], 1.0)],
            &params,
        );
        assert!(result.activation.contains_key(&agents[1]));
        assert!(result.activation.contains_key(&agents[3]), "u3 is one hop out");
        for far in [agents[2], agents[4], agents[5]] {
            assert!(
                !result.activation.contains_key(&far),
                "{far:?} is unreachable within horizon 1 from u1"
            );
        }
        assert!(result.hops <= 1);
    }

    #[test]
    fn spread_is_monotone_in_retention() {
        let (c, agents, _) = world();
        let (profiles, config) = context_parts(&c);
        let anchors = vec![(agents[1], 0.8), (agents[2], 0.5)];
        let at = |decay: f64| {
            spread_activation(
                &c,
                &profiles,
                config.similarity,
                agents[0],
                &anchors,
                &SpreadingParams { decay, ..SpreadingParams::default() },
            )
        };
        let low = at(0.3);
        let high = at(0.9);
        for (agent, &a) in &low.activation {
            assert!(
                high.activation.get(agent).copied().unwrap_or(0.0) >= a - 1e-15,
                "activation must not shrink when retention grows: {agent:?}"
            );
        }
    }

    #[test]
    fn zero_horizon_keeps_only_the_anchors() {
        let (c, agents, _) = world();
        let (profiles, config) = context_parts(&c);
        let result = spread_activation(
            &c,
            &profiles,
            config.similarity,
            agents[0],
            &[(agents[1], 0.8)],
            &SpreadingParams { horizon: 0, ..SpreadingParams::default() },
        );
        assert_eq!(result.hops, 0);
        assert_eq!(result.activation.len(), 1);
        assert_eq!(result.activation[&agents[1]], 0.8);
    }

    #[test]
    fn universe_cap_bounds_exploration() {
        let (c, agents, _) = world();
        let (profiles, config) = context_parts(&c);
        let result = spread_activation(
            &c,
            &profiles,
            config.similarity,
            agents[0],
            &[(agents[1], 1.0), (agents[2], 1.0)],
            &SpreadingParams { max_nodes: 2, ..SpreadingParams::default() },
        );
        assert_eq!(result.explored, 2, "the cap must hold even with room to grow");
    }

    #[test]
    fn ranker_output_is_sorted_and_decomposes() {
        let (c, agents, _) = world();
        let engine = Recommender::with_ranker(
            c,
            RecommenderConfig::default(),
            Arc::new(SpreadingActivationRanker::default()),
        );
        let (ranked, _) = engine.rank_peers(agents[0]).unwrap();
        assert!(!ranked.is_empty());
        assert!(ranked.windows(2).all(|w| w[0].weight >= w[1].weight));
        for p in &ranked {
            assert!(p.weight > 0.0 && p.weight.is_finite());
            assert_eq!(p.weight.to_bits(), p.components.total().to_bits());
        }
    }
}
