//! Topic diversification — the §6 extension.
//!
//! §6 announces "applicability of taxonomy-based profile generation for …
//! efficient behavior modelling"; the natural and later-published follow-up
//! is *topic diversification*: taxonomy-based product profiles make the
//! pairwise similarity of recommended items measurable, so a top-N list can
//! be re-ranked to trade accuracy against coverage of the user's full
//! interest spectrum. We implement the greedy re-rank with diversification
//! factor `theta` and the intra-list similarity (ILS) diagnostic.

use semrec_profiles::generation::descriptor_scores;
use semrec_profiles::{similarity, ProfileVector};
use semrec_taxonomy::{Catalog, ProductId, Taxonomy};

use crate::recommend::Recommendation;

/// The taxonomy-based content profile of a single product: its descriptors'
/// Eq. 3 score distribution with unit mass.
pub fn product_profile(taxonomy: &Taxonomy, catalog: &Catalog, product: ProductId) -> ProfileVector {
    let descriptors = catalog.descriptors(product);
    let per = 1.0 / descriptors.len() as f64;
    let mut v = ProfileVector::new();
    for &d in descriptors {
        for (topic, score) in descriptor_scores(taxonomy, d, per) {
            v.add(topic, score);
        }
    }
    v
}

/// Pairwise product similarity (cosine over product profiles); 0 when
/// undefined.
pub fn product_similarity(
    taxonomy: &Taxonomy,
    catalog: &Catalog,
    a: ProductId,
    b: ProductId,
) -> f64 {
    let pa = product_profile(taxonomy, catalog, a);
    let pb = product_profile(taxonomy, catalog, b);
    similarity::cosine(&pa, &pb).unwrap_or(0.0)
}

/// Intra-list similarity: mean pairwise similarity of a recommendation list.
/// Lower means more diverse. 0 for lists shorter than 2.
pub fn intra_list_similarity(
    taxonomy: &Taxonomy,
    catalog: &Catalog,
    products: &[ProductId],
) -> f64 {
    if products.len() < 2 {
        return 0.0;
    }
    let profiles: Vec<ProfileVector> = products
        .iter()
        .map(|&p| product_profile(taxonomy, catalog, p))
        .collect();
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            sum += similarity::cosine(&profiles[i], &profiles[j]).unwrap_or(0.0);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Greedily re-ranks a candidate list, balancing the original relevance
/// order against dissimilarity to the already-picked items.
///
/// `theta = 0` keeps the original order; `theta = 1` orders purely by
/// dissimilarity. The first item is always the top candidate.
pub fn diversify(
    taxonomy: &Taxonomy,
    catalog: &Catalog,
    candidates: &[Recommendation],
    n: usize,
    theta: f64,
) -> Vec<Recommendation> {
    let theta = theta.clamp(0.0, 1.0);
    if candidates.is_empty() || n == 0 {
        return Vec::new();
    }
    let profiles: Vec<ProfileVector> = candidates
        .iter()
        .map(|r| product_profile(taxonomy, catalog, r.product))
        .collect();
    // Positional relevance in [0, 1]: 1 for rank 0 descending linearly.
    let m = candidates.len();
    let relevance = |pos: usize| (m - pos) as f64 / m as f64;

    let mut picked: Vec<usize> = vec![0];
    while picked.len() < n.min(m) {
        let mut best: Option<(usize, f64)> = None;
        for (i, _) in candidates.iter().enumerate() {
            if picked.contains(&i) {
                continue;
            }
            let mean_sim: f64 = picked
                .iter()
                .map(|&j| similarity::cosine(&profiles[i], &profiles[j]).unwrap_or(0.0))
                .sum::<f64>()
                / picked.len() as f64;
            let value = (1.0 - theta) * relevance(i) + theta * (1.0 - mean_sim);
            if best.is_none_or(|(_, b)| value > b) {
                best = Some((i, value));
            }
        }
        match best {
            Some((i, _)) => picked.push(i),
            None => break,
        }
    }
    picked.into_iter().map(|i| candidates[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn recs(products: &[ProductId]) -> Vec<Recommendation> {
        products
            .iter()
            .enumerate()
            .map(|(i, &p)| Recommendation {
                product: p,
                score: 1.0 - i as f64 * 0.1,
                voters: 1,
            })
            .collect()
    }

    #[test]
    fn product_profiles_have_unit_mass() {
        let e = example1();
        for p in e.catalog.iter() {
            let v = product_profile(&e.fig.taxonomy, &e.catalog, p);
            assert!((v.total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_branch_products_are_more_similar() {
        let e = example1();
        let same = product_similarity(&e.fig.taxonomy, &e.catalog, e.snow_crash, e.neuromancer);
        let cross =
            product_similarity(&e.fig.taxonomy, &e.catalog, e.snow_crash, e.matrix_analysis);
        assert!(same > cross, "{same} vs {cross}");
        assert!((same - 1.0).abs() < 1e-9, "identical descriptors → similarity 1");
    }

    #[test]
    fn ils_of_homogeneous_list_is_high() {
        let e = example1();
        let homo = intra_list_similarity(
            &e.fig.taxonomy,
            &e.catalog,
            &[e.snow_crash, e.neuromancer],
        );
        let mixed = intra_list_similarity(
            &e.fig.taxonomy,
            &e.catalog,
            &[e.snow_crash, e.matrix_analysis, e.fermats_enigma],
        );
        assert!(homo > mixed);
        assert_eq!(intra_list_similarity(&e.fig.taxonomy, &e.catalog, &[e.snow_crash]), 0.0);
    }

    #[test]
    fn theta_zero_preserves_order() {
        let e = example1();
        let candidates = recs(&[e.snow_crash, e.neuromancer, e.matrix_analysis]);
        let out = diversify(&e.fig.taxonomy, &e.catalog, &candidates, 3, 0.0);
        let order: Vec<_> = out.iter().map(|r| r.product).collect();
        assert_eq!(order, vec![e.snow_crash, e.neuromancer, e.matrix_analysis]);
    }

    #[test]
    fn high_theta_reduces_ils() {
        let e = example1();
        // Two cyberpunk books up top, math book last.
        let candidates = recs(&[e.snow_crash, e.neuromancer, e.matrix_analysis]);
        let plain = diversify(&e.fig.taxonomy, &e.catalog, &candidates, 2, 0.0);
        let diverse = diversify(&e.fig.taxonomy, &e.catalog, &candidates, 2, 0.9);
        let ils = |list: &[Recommendation]| {
            let products: Vec<_> = list.iter().map(|r| r.product).collect();
            intra_list_similarity(&e.fig.taxonomy, &e.catalog, &products)
        };
        assert!(ils(&diverse) < ils(&plain));
        // Diversified list swaps in the math book at position 2.
        assert_eq!(diverse[0].product, e.snow_crash);
        assert_eq!(diverse[1].product, e.matrix_analysis);
    }

    #[test]
    fn degenerate_inputs() {
        let e = example1();
        assert!(diversify(&e.fig.taxonomy, &e.catalog, &[], 5, 0.5).is_empty());
        let one = recs(&[e.snow_crash]);
        assert_eq!(diversify(&e.fig.taxonomy, &e.catalog, &one, 0, 0.5).len(), 0);
        assert_eq!(diversify(&e.fig.taxonomy, &e.catalog, &one, 5, 0.5).len(), 1);
    }
}
