//! Recommendation explanations — provenance for the §2 credibility issue.
//!
//! Decentralized recommendations are only as convincing as their paper
//! trail: ref \[9\] found people trust recommendations from *known* peers
//! more than from opaque systems. An [`Explanation`] reconstructs exactly
//! why a product surfaced: which trusted peers vouched for it, with what
//! trust rank, profile similarity and rating — and which taxonomy branches
//! the product shares with the target's own interests.

use semrec_profiles::generation::descriptor_scores;
use semrec_taxonomy::{ProductId, TopicId};
use semrec_trust::neighborhood::form_neighborhood;
use semrec_trust::scalar::strongest_path;
use semrec_trust::AgentId;

use crate::engine::Recommender;
use crate::error::Result;
use crate::rank::{RankContext, ScoreComponents};
use crate::synthesis::PeerScores;

/// One voting peer's contribution to a recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct Voter {
    /// The peer.
    pub agent: AgentId,
    /// Their synthesized rank weight (§3.4).
    pub weight: f64,
    /// Their normalized trust rank (§3.2).
    pub trust: f64,
    /// Their profile similarity to the target (§3.3), if defined.
    pub similarity: Option<f64>,
    /// Their rating of the recommended product.
    pub rating: f64,
    /// Their vote contribution (`weight · rating` under rating-weighted
    /// voting, `weight` otherwise).
    pub contribution: f64,
    /// The contribution decomposed by ranker score component
    /// (similarity / activation / centrality); sums to `contribution`.
    pub components: ScoreComponents,
    /// The strongest explicit trust chain `target → … → peer` behind the
    /// peer's admission (per-hop trust product in `.0`). `None` only if the
    /// chain exceeds the provenance depth bound.
    pub trust_path: Option<(f64, Vec<AgentId>)>,
}

/// Why a product was (or would be) recommended to a target agent.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// The product in question.
    pub product: ProductId,
    /// Voting peers, strongest contribution first.
    pub voters: Vec<Voter>,
    /// Total vote score (the value recommendation ranking uses).
    pub score: f64,
    /// The score decomposed by ranker component across all voters
    /// (similarity / activation / centrality); sums to `score`. Under the
    /// default [`crate::rank::SimilarityRanker`] all mass sits in
    /// `similarity`.
    pub components: ScoreComponents,
    /// Topics where the target's interest profile and the product's content
    /// profile overlap: `(topic, target score, product score)`, strongest
    /// product-side mass first.
    pub shared_topics: Vec<(TopicId, f64, f64)>,
    /// Set when the community behind this explanation is a degraded view of
    /// its source (the crawl lost documents): the recommendation stands,
    /// but peers and votes may be missing. `None` for healthy sources.
    pub degraded: Option<crate::health::SourceHealth>,
}

impl Recommender {
    /// Explains why `product` scores for `target` under the current
    /// configuration. Returns `None` when no trusted peer vouches for the
    /// product (it would never be recommended).
    pub fn explain(&self, target: AgentId, product: ProductId) -> Result<Option<Explanation>> {
        let community = self.community();
        let config = self.config();
        let neighborhood =
            form_neighborhood(&community.trust, target, &config.neighborhood)?;
        let target_profile = self.profiles().profile(target);

        let peers: Vec<PeerScores> = neighborhood
            .normalized()
            .into_iter()
            .map(|(agent, trust)| PeerScores {
                agent,
                trust,
                similarity: config
                    .similarity
                    .apply(target_profile, self.profiles().profile(agent)),
            })
            .collect();
        // The same ranker recommendation generation runs, so explanations
        // attribute the scores users actually saw — for any Ranker impl.
        let ranked = self.ranker().rank(&RankContext {
            target,
            neighborhood: &neighborhood,
            peers: &peers,
            community,
            profiles: self.profiles(),
            config,
        });

        let mut voters = Vec::new();
        let mut score = 0.0;
        let mut components = ScoreComponents::default();
        for peer in &ranked {
            let (agent, weight) = (peer.agent, peer.weight);
            let Some(rating) = community.rating(agent, product) else { continue };
            if rating <= config.voting.min_rating {
                continue;
            }
            let (contribution, vote_components) = if config.voting.rating_weighted_votes {
                (weight * rating, peer.components.scaled(rating))
            } else {
                (weight, peer.components)
            };
            let base = peers.iter().find(|p| p.agent == agent).expect("peer was scored");
            let trust_path = strongest_path(&community.trust, target, agent, Some(8))?;
            voters.push(Voter {
                agent,
                weight,
                trust: base.trust,
                similarity: base.similarity,
                rating,
                contribution,
                components: vote_components,
                trust_path,
            });
            score += contribution;
            components.accumulate(&vote_components);
        }
        if voters.is_empty() {
            return Ok(None);
        }
        voters.sort_by(|a, b| {
            b.contribution.partial_cmp(&a.contribution).unwrap().then(a.agent.cmp(&b.agent))
        });

        // Content-side provenance: taxonomy branches the target already
        // cares about that the product is classified under.
        let descriptors = community.catalog.descriptors(product);
        let per = 1.0 / descriptors.len() as f64;
        let mut shared_topics: Vec<(TopicId, f64, f64)> = Vec::new();
        for &d in descriptors {
            for (topic, product_score) in descriptor_scores(&community.taxonomy, d, per) {
                let target_score = target_profile.get(topic);
                if target_score > 0.0 {
                    match shared_topics.iter_mut().find(|(t, _, _)| *t == topic) {
                        Some(entry) => entry.2 += product_score,
                        None => shared_topics.push((topic, target_score, product_score)),
                    }
                }
            }
        }
        shared_topics.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(a.0.cmp(&b.0)));

        let degraded =
            if self.source_health().is_degraded() { Some(*self.source_health()) } else { None };
        Ok(Some(Explanation { product, voters, score, components, shared_topics, degraded }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecommenderConfig;
    use crate::model::Community;
    use semrec_taxonomy::fixtures::example1;

    fn setup() -> (Recommender, Vec<AgentId>, Vec<ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        let carol = c.add_agent("http://ex.org/carol").unwrap();
        c.trust.set_trust(alice, bob, 0.9).unwrap();
        c.trust.set_trust(alice, carol, 0.6).unwrap();
        // Alice reads number theory; bob & carol both like Matrix Analysis.
        c.set_rating(alice, products[1], 1.0).unwrap();
        c.set_rating(bob, products[0], 1.0).unwrap();
        c.set_rating(carol, products[0], 0.7).unwrap();
        c.set_rating(carol, products[2], 1.0).unwrap();
        (Recommender::new(c, RecommenderConfig::default()), vec![alice, bob, carol], products)
    }

    #[test]
    fn explanation_matches_the_recommendation_score() {
        let (engine, agents, products) = setup();
        let recs = engine.recommend(agents[0], 10).unwrap();
        let top = recs.first().unwrap();
        let explanation = engine.explain(agents[0], top.product).unwrap().unwrap();
        assert!((explanation.score - top.score).abs() < 1e-12);
        assert_eq!(explanation.voters.len(), top.voters);
        assert_eq!(explanation.product, products[0]);
    }

    #[test]
    fn voters_are_ordered_and_carry_provenance() {
        let (engine, agents, products) = setup();
        let explanation = engine.explain(agents[0], products[0]).unwrap().unwrap();
        assert_eq!(explanation.voters.len(), 2);
        assert!(explanation.voters[0].contribution >= explanation.voters[1].contribution);
        for voter in &explanation.voters {
            assert!(voter.trust > 0.0 && voter.trust <= 1.0);
            assert!(voter.rating > 0.0);
            assert!(voter.weight > 0.0);
            // Each voter carries its explicit trust chain from the target.
            let (product, path) = voter.trust_path.as_ref().unwrap();
            assert!(*product > 0.0);
            assert_eq!(path.first(), Some(&agents[0]));
            assert_eq!(path.last(), Some(&voter.agent));
        }
    }

    #[test]
    fn shared_topics_surface_the_mathematics_branch() {
        let (engine, agents, products) = setup();
        // Alice read Fermat's Enigma (Mathematics branch); Matrix Analysis
        // shares Pure/Mathematics/Science ancestry.
        let explanation = engine.explain(agents[0], products[0]).unwrap().unwrap();
        let taxonomy = &engine.community().taxonomy;
        let labels: Vec<&str> =
            explanation.shared_topics.iter().map(|&(t, _, _)| taxonomy.label(t)).collect();
        assert!(labels.contains(&"Mathematics"), "got {labels:?}");
        assert!(labels.contains(&"Pure"), "got {labels:?}");
        for &(_, target_score, product_score) in &explanation.shared_topics {
            assert!(target_score > 0.0);
            assert!(product_score > 0.0);
        }
    }

    #[test]
    fn component_decomposition_sums_to_the_score() {
        let (engine, agents, products) = setup();
        // Default ranker: all mass is similarity-attributed.
        let explanation = engine.explain(agents[0], products[0]).unwrap().unwrap();
        assert!((explanation.components.total() - explanation.score).abs() < 1e-12);
        assert_eq!(explanation.components.activation, 0.0);
        assert_eq!(explanation.components.centrality, 0.0);
        for voter in &explanation.voters {
            assert!((voter.components.total() - voter.contribution).abs() < 1e-12);
        }

        // Spreading-activation ranker: the decomposition still sums, the
        // explanation still matches the recommendation score, and at least
        // one non-similarity component carries mass.
        let engine = engine.using_ranker(std::sync::Arc::new(
            crate::rank::SpreadingActivationRanker::default(),
        ));
        let recs = engine.recommend(agents[0], 10).unwrap();
        let top = recs.first().unwrap();
        let explanation = engine.explain(agents[0], top.product).unwrap().unwrap();
        assert!((explanation.score - top.score).abs() < 1e-12);
        assert!((explanation.components.total() - explanation.score).abs() < 1e-12);
        assert!(
            explanation.components.activation > 0.0 || explanation.components.centrality > 0.0,
            "the blend must attribute mass beyond similarity: {:?}",
            explanation.components
        );
        for voter in &explanation.voters {
            assert!((voter.components.total() - voter.contribution).abs() < 1e-12);
        }
    }

    #[test]
    fn degraded_sources_are_flagged_in_explanations() {
        let (engine, agents, products) = setup();
        // A healthy engine explains without the flag.
        let healthy = engine.explain(agents[0], products[0]).unwrap().unwrap();
        assert_eq!(healthy.degraded, None);

        // The same engine told its community came from a lossy crawl
        // carries the health record into every explanation.
        let health = crate::health::SourceHealth {
            attempted: 4,
            fetched: 3,
            unreachable: 1,
            ..Default::default()
        };
        let engine = engine.with_source_health(health);
        let flagged = engine.explain(agents[0], products[0]).unwrap().unwrap();
        assert_eq!(flagged.degraded, Some(health));
        assert_eq!(flagged.voters, healthy.voters, "the votes themselves are unchanged");
    }

    #[test]
    fn unvouched_products_yield_none() {
        let (engine, agents, products) = setup();
        // Nobody in alice's neighborhood rated Neuromancer.
        assert_eq!(engine.explain(agents[0], products[3]).unwrap(), None);
        // Alice's own book is rated only by her: no voters either.
        assert_eq!(engine.explain(agents[0], products[1]).unwrap(), None);
    }

    #[test]
    fn explanations_respect_the_trust_boundary() {
        let (engine, agents, products) = setup();
        // From carol's perspective nobody is trusted: nothing explainable.
        assert_eq!(engine.explain(agents[2], products[0]).unwrap(), None);
        let _ = agents;
    }
}
