//! Error types for the recommender framework.

use std::fmt;

/// Result alias for framework operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors from community construction or recommendation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An agent id did not designate an existing agent.
    UnknownAgent(usize),
    /// An agent URI was already registered.
    DuplicateAgent(String),
    /// A product id did not designate a catalogued product.
    UnknownProduct(usize),
    /// A rating outside `[-1, +1]` (or NaN).
    InvalidRating(f64),
    /// A trust metric failed.
    Trust(semrec_trust::TrustError),
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// Flat arena inputs (e.g. from a snapshot) were internally
    /// inconsistent.
    InvalidArena(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownAgent(idx) => write!(f, "unknown agent index {idx}"),
            CoreError::DuplicateAgent(uri) => write!(f, "agent URI already registered: {uri}"),
            CoreError::UnknownProduct(idx) => write!(f, "unknown product index {idx}"),
            CoreError::InvalidRating(r) => write!(f, "rating {r} outside [-1, +1]"),
            CoreError::Trust(e) => write!(f, "trust metric error: {e}"),
            CoreError::InvalidConfig { name, expected } => {
                write!(f, "invalid configuration `{name}`: expected {expected}")
            }
            CoreError::InvalidArena(what) => write!(f, "inconsistent model arenas: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Trust(e) => Some(e),
            _ => None,
        }
    }
}

impl From<semrec_trust::TrustError> for CoreError {
    fn from(e: semrec_trust::TrustError) -> Self {
        CoreError::Trust(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(semrec_trust::TrustError::UnknownAgent(3));
        assert!(e.to_string().contains("trust metric"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::InvalidRating(2.0)).is_none());
    }
}
