//! Rank synthesization (§3.4): merging trust rank and similarity rank into
//! one overall rank weight per peer.
//!
//! The paper explicitly leaves this open ("We have not attacked latter issue
//! yet") and calls for matching approaches against each other within an
//! experimental framework. We implement three natural strategies and
//! experiment E9 compares them:
//!
//! * [`SynthesisStrategy::LinearBlend`] — `ξ·trust + (1−ξ)·similarity` over
//!   normalized scores;
//! * [`SynthesisStrategy::BordaMerge`] — positional rank fusion, robust to
//!   incomparable score scales;
//! * [`SynthesisStrategy::TrustFilter`] — trust is a pure admission gate,
//!   peers are then ordered by similarity alone (the "trust as similarity
//!   filtering" reading of §3.2).

use semrec_trust::AgentId;

/// A peer with its normalized trust rank and its similarity to the source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerScores {
    /// The peer.
    pub agent: AgentId,
    /// Trust rank normalized to `[0, 1]` (1 = most trusted in neighborhood).
    pub trust: f64,
    /// Profile similarity in `[-1, 1]`, or `None` when undefined.
    pub similarity: Option<f64>,
}

/// Strategy for merging the two rankings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SynthesisStrategy {
    /// `ξ·trust + (1−ξ)·sim̂`; `ξ ∈ [0, 1]`, where `sim̂` is the positive
    /// part of the similarity *normalized by the neighborhood's maximum* —
    /// trust ranks arrive already max-normalized, and without rescaling the
    /// (typically small) raw cosine values the trust term would dominate at
    /// every ξ (experiment E9 measures exactly this imbalance).
    ///
    /// `ξ = 1` is trust-only, `ξ = 0` similarity-only.
    LinearBlend {
        /// Trust weight ξ.
        xi: f64,
    },
    /// Borda rank fusion: each peer scores `(n − position)` in each ranking;
    /// scores are summed and renormalized to `[0, 1]`.
    BordaMerge,
    /// Admission by trust, ordering by similarity: peers keep
    /// `max(similarity, 0)` as weight; undefined similarity drops the peer.
    TrustFilter,
}

impl Default for SynthesisStrategy {
    fn default() -> Self {
        SynthesisStrategy::LinearBlend { xi: 0.5 }
    }
}

/// Merged peer weights, sorted by descending weight; peers with weight 0 are
/// dropped.
pub fn synthesize(strategy: SynthesisStrategy, peers: &[PeerScores]) -> Vec<(AgentId, f64)> {
    let mut out: Vec<(AgentId, f64)> = match strategy {
        SynthesisStrategy::LinearBlend { xi } => {
            let xi = xi.clamp(0.0, 1.0);
            let max_sim = peers
                .iter()
                .filter_map(|p| p.similarity)
                .fold(0.0f64, f64::max);
            peers
                .iter()
                .map(|p| {
                    let sim = p.similarity.unwrap_or(0.0).max(0.0);
                    let sim = if max_sim > 0.0 { sim / max_sim } else { sim };
                    (p.agent, xi * p.trust + (1.0 - xi) * sim)
                })
                .collect()
        }
        SynthesisStrategy::BordaMerge => {
            let n = peers.len();
            let mut by_trust: Vec<usize> = (0..n).collect();
            by_trust.sort_by(|&a, &b| peers[b].trust.partial_cmp(&peers[a].trust).unwrap());
            let mut by_sim: Vec<usize> = (0..n).collect();
            by_sim.sort_by(|&a, &b| {
                let sa = peers[a].similarity.unwrap_or(f64::NEG_INFINITY);
                let sb = peers[b].similarity.unwrap_or(f64::NEG_INFINITY);
                sb.partial_cmp(&sa).unwrap()
            });
            let mut scores = vec![0.0f64; n];
            for (pos, &i) in by_trust.iter().enumerate() {
                scores[i] += (n - pos) as f64;
            }
            for (pos, &i) in by_sim.iter().enumerate() {
                scores[i] += (n - pos) as f64;
            }
            let max = scores.iter().copied().fold(0.0, f64::max);
            peers
                .iter()
                .zip(scores)
                .map(|(p, s)| (p.agent, if max > 0.0 { s / max } else { 0.0 }))
                .collect()
        }
        SynthesisStrategy::TrustFilter => peers
            .iter()
            .filter_map(|p| p.similarity.map(|s| (p.agent, s.max(0.0))))
            .collect(),
    };
    out.retain(|&(_, w)| w > 0.0);
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AgentId {
        AgentId::from_index(i)
    }

    fn peers() -> Vec<PeerScores> {
        vec![
            PeerScores { agent: a(1), trust: 1.0, similarity: Some(0.2) },
            PeerScores { agent: a(2), trust: 0.5, similarity: Some(0.9) },
            PeerScores { agent: a(3), trust: 0.2, similarity: None },
            PeerScores { agent: a(4), trust: 0.1, similarity: Some(-0.5) },
        ]
    }

    #[test]
    fn xi_one_is_trust_order() {
        let merged = synthesize(SynthesisStrategy::LinearBlend { xi: 1.0 }, &peers());
        let order: Vec<_> = merged.iter().map(|&(p, _)| p).collect();
        assert_eq!(order, vec![a(1), a(2), a(3), a(4)]);
    }

    #[test]
    fn xi_zero_is_similarity_order() {
        let merged = synthesize(SynthesisStrategy::LinearBlend { xi: 0.0 }, &peers());
        let order: Vec<_> = merged.iter().map(|&(p, _)| p).collect();
        // Negative and undefined similarity yield weight 0 → dropped.
        assert_eq!(order, vec![a(2), a(1)]);
    }

    #[test]
    fn blend_interpolates_over_normalized_similarities() {
        let merged = synthesize(SynthesisStrategy::LinearBlend { xi: 0.5 }, &peers());
        // Similarities are rescaled by the neighborhood max (0.9):
        // a1: 0.5·1.0 + 0.5·(0.2/0.9); a2: 0.5·0.5 + 0.5·(0.9/0.9).
        let w1 = merged.iter().find(|&&(p, _)| p == a(1)).unwrap().1;
        let w2 = merged.iter().find(|&&(p, _)| p == a(2)).unwrap().1;
        assert!((w1 - (0.5 + 0.5 * (0.2 / 0.9))).abs() < 1e-12);
        assert!((w2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn blend_similarity_normalization_balances_small_sims() {
        // Tiny raw similarities (the realistic regime for sparse taxonomy
        // profiles) must still matter at ξ = 0.5.
        let peers = vec![
            PeerScores { agent: a(1), trust: 1.0, similarity: Some(0.001) },
            PeerScores { agent: a(2), trust: 0.9, similarity: Some(0.02) },
        ];
        let merged = synthesize(SynthesisStrategy::LinearBlend { xi: 0.5 }, &peers);
        // a2's 20× larger similarity outweighs a1's slightly larger trust.
        assert_eq!(merged[0].0, a(2));
    }

    #[test]
    fn borda_rewards_consistency() {
        let merged = synthesize(SynthesisStrategy::BordaMerge, &peers());
        // a1: trust pos 0 (4) + sim pos 1 (3) = 7; a2: 3 + 4 = 7;
        // a3: 2 + 1 = 3; a4: 1 + 2 = 3. Max = 7.
        let w = |i: usize| merged.iter().find(|&&(p, _)| p == a(i)).unwrap().1;
        assert!((w(1) - 1.0).abs() < 1e-12);
        assert!((w(2) - 1.0).abs() < 1e-12);
        assert!((w(3) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn trust_filter_orders_by_similarity_only() {
        let merged = synthesize(SynthesisStrategy::TrustFilter, &peers());
        let order: Vec<_> = merged.iter().map(|&(p, _)| p).collect();
        assert_eq!(order, vec![a(2), a(1)]); // a3 undefined, a4 negative
    }

    #[test]
    fn empty_input_yields_empty_output() {
        for strategy in [
            SynthesisStrategy::LinearBlend { xi: 0.5 },
            SynthesisStrategy::BordaMerge,
            SynthesisStrategy::TrustFilter,
        ] {
            assert!(synthesize(strategy, &[]).is_empty());
        }
    }

    #[test]
    fn out_of_range_xi_is_clamped() {
        let merged = synthesize(SynthesisStrategy::LinearBlend { xi: 7.0 }, &peers());
        let trust_order = synthesize(SynthesisStrategy::LinearBlend { xi: 1.0 }, &peers());
        assert_eq!(merged, trust_order);
    }

    #[test]
    fn output_is_sorted_descending() {
        for strategy in [
            SynthesisStrategy::LinearBlend { xi: 0.3 },
            SynthesisStrategy::BordaMerge,
            SynthesisStrategy::TrustFilter,
        ] {
            let merged = synthesize(strategy, &peers());
            assert!(merged.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }
}
