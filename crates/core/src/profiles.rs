//! Community-wide profile computation and caching.
//!
//! Profile generation is a per-agent pure function of their ratings, so a
//! [`ProfileStore`] materializes every agent's taxonomy profile once and
//! similarity queries become vector operations. In a truly decentralized
//! deployment each agent computes these locally per crawl (§2 — "performs
//! all recommendation computations locally"); the store is the local cache
//! of that computation.

use std::collections::HashSet;
use std::sync::Arc;

use semrec_profiles::generation::{generate_profile, ProfileParams};
use semrec_profiles::{similarity, ProfileVector};
use semrec_trust::AgentId;

use crate::delta::AdvanceStats;
use crate::model::Community;

/// Which similarity measure the engine uses over profile vectors (§3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimilarityMeasure {
    /// Pearson's correlation coefficient (refs \[6\], \[3\]).
    Pearson,
    /// Cosine distance from Information Retrieval.
    #[default]
    Cosine,
}

impl SimilarityMeasure {
    /// Applies the measure; `None` when undefined for the pair.
    pub fn apply(self, a: &ProfileVector, b: &ProfileVector) -> Option<f64> {
        match self {
            SimilarityMeasure::Pearson => similarity::pearson(a, b),
            SimilarityMeasure::Cosine => similarity::cosine(a, b),
        }
    }
}

/// Materialized taxonomy profiles for every agent of a community.
///
/// Profiles are stored behind per-agent `Arc`s: cloning the store (or
/// [`advance`](ProfileStore::advance)-ing it to the next model generation)
/// copies pointers, not vectors, so an incremental refresh pays O(delta)
/// for the profiles it actually recomputes and O(n) pointer bumps for the
/// rest.
#[derive(Clone, Debug)]
pub struct ProfileStore {
    profiles: Vec<Arc<ProfileVector>>,
    params: ProfileParams,
}

impl ProfileStore {
    /// Computes all profiles.
    pub fn build(community: &Community, params: &ProfileParams) -> Self {
        let profiles = community
            .agents()
            .map(|a| {
                Arc::new(generate_profile(
                    &community.taxonomy,
                    &community.catalog,
                    community.ratings_of(a),
                    params,
                ))
            })
            .collect();
        ProfileStore { profiles, params: *params }
    }

    /// Derives the store for the next community generation, recomputing
    /// only the profiles of agents whose URI is in `dirty` and sharing
    /// every other profile with `self` by `Arc` clone.
    ///
    /// `previous` must be the community this store was built from. An agent
    /// is reused only when it exists in both generations *and* is not
    /// dirty — agents new to `next` (including former dangling trustees
    /// whose ratings just appeared) are always computed fresh. The caller
    /// is responsible for `dirty` being sound: it must contain every URI
    /// whose rating set differs between the generations, or the returned
    /// store silently diverges from [`ProfileStore::build`] on `next`.
    pub fn advance(
        &self,
        previous: &Community,
        next: &Community,
        dirty: &HashSet<&str>,
    ) -> (ProfileStore, AdvanceStats) {
        let mut stats = AdvanceStats::default();
        let profiles = next
            .agents()
            .map(|a| {
                let uri = &next.agent(a).expect("iterated id").uri;
                if !dirty.contains(uri.as_str()) {
                    if let Some(old) = previous.agent_by_uri(uri) {
                        debug_assert_eq!(
                            previous.ratings_of(old),
                            next.ratings_of(a),
                            "clean agent {uri} has differing ratings: unsound dirty set"
                        );
                        stats.reused += 1;
                        return Arc::clone(&self.profiles[old.index()]);
                    }
                }
                stats.recomputed += 1;
                Arc::new(generate_profile(
                    &next.taxonomy,
                    &next.catalog,
                    next.ratings_of(a),
                    &self.params,
                ))
            })
            .collect();
        (ProfileStore { profiles, params: self.params }, stats)
    }

    /// Rebuilds a store from explicit per-agent profiles in agent-id order,
    /// e.g. as deserialized from a checkpoint (see `semrec-store`). The
    /// caller is responsible for the vectors matching what
    /// [`ProfileStore::build`] would produce for the community they will be
    /// used with; persistence round-trip tests hold that line.
    pub fn from_profiles(
        profiles: impl IntoIterator<Item = ProfileVector>,
        params: ProfileParams,
    ) -> Self {
        ProfileStore { profiles: profiles.into_iter().map(Arc::new).collect(), params }
    }

    /// Iterates the stored profiles in agent-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ProfileVector> {
        self.profiles.iter().map(|p| &**p)
    }

    /// The profile of an agent.
    pub fn profile(&self, agent: AgentId) -> &ProfileVector {
        &self.profiles[agent.index()]
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The parameters the profiles were generated with.
    pub fn params(&self) -> &ProfileParams {
        &self.params
    }

    /// Recomputes a single agent's profile (after their ratings changed).
    pub fn refresh(&mut self, community: &Community, agent: AgentId) {
        self.profiles[agent.index()] = Arc::new(generate_profile(
            &community.taxonomy,
            &community.catalog,
            community.ratings_of(agent),
            &self.params,
        ));
    }

    /// True when two stores share the same `Arc` for this agent slot —
    /// i.e. the profile was carried across a generation, not recomputed.
    pub fn shares_profile_with(&self, other: &ProfileStore, agent: AgentId) -> bool {
        match (self.profiles.get(agent.index()), other.profiles.get(agent.index())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Similarity between two agents under the given measure.
    pub fn similarity(
        &self,
        measure: SimilarityMeasure,
        a: AgentId,
        b: AgentId,
    ) -> Option<f64> {
        measure.apply(self.profile(a), self.profile(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn setup() -> (Community, Vec<semrec_taxonomy::ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        // Alice likes the math books, Bob the cyberpunk novels.
        c.set_rating(alice, products[0], 1.0).unwrap();
        c.set_rating(alice, products[1], 0.8).unwrap();
        c.set_rating(bob, products[2], 1.0).unwrap();
        c.set_rating(bob, products[3], 0.9).unwrap();
        (c, products)
    }

    #[test]
    fn builds_one_profile_per_agent() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert_eq!(store.len(), 2);
        for a in c.agents() {
            assert!((store.profile(a).total() - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_reflects_divergent_interests() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        let self_sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[0])
            .unwrap();
        assert!(self_sim > sim);
        assert!((self_sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_tracks_rating_changes() {
        let (mut c, products) = setup();
        let mut store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let before = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        // Bob now also reads Alice's math books.
        c.set_rating(agents[1], products[0], 1.0).unwrap();
        c.set_rating(agents[1], products[1], 1.0).unwrap();
        store.refresh(&c, agents[1]);
        let after = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        assert!(after > before, "similarity must rise: {before} → {after}");
    }

    #[test]
    fn refresh_tracks_rating_removal() {
        // The profile must shrink back: removing the rating again restores
        // the exact pre-rating profile, not some residue.
        let (mut c, products) = setup();
        let agents: Vec<_> = c.agents().collect();
        let mut store = ProfileStore::build(&c, &ProfileParams::default());
        let before = store.profile(agents[0]).clone();
        c.set_rating(agents[0], products[3], 0.7).unwrap();
        store.refresh(&c, agents[0]);
        assert_ne!(
            store.profile(agents[0]),
            &before,
            "adding a rating must move the profile"
        );
        assert!(c.remove_rating(agents[0], products[3]));
        store.refresh(&c, agents[0]);
        assert_eq!(
            store.profile(agents[0]),
            &before,
            "removing the rating must shrink the profile back"
        );
    }

    #[test]
    fn trust_only_change_does_not_dirty_profiles() {
        // A trust-edge-only delta leaves every profile clean: advance with
        // an empty dirty set must reuse all profiles by pointer.
        let (mut c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let agents: Vec<_> = c.agents().collect();
        c.trust.set_trust(agents[0], agents[1], 0.9).unwrap();
        let (next, stats) = store.advance(&previous, &c, &HashSet::new());
        assert_eq!(stats, AdvanceStats { recomputed: 0, reused: 2 });
        for &a in &agents {
            assert!(next.shares_profile_with(&store, a), "profile must be shared, not copied");
        }
    }

    #[test]
    fn advance_recomputes_exactly_the_dirty_set() {
        let (mut c, products) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let agents: Vec<_> = c.agents().collect();
        c.set_rating(agents[1], products[0], 0.5).unwrap();
        let dirty: HashSet<&str> = ["http://ex.org/bob"].into_iter().collect();
        let (next, stats) = store.advance(&previous, &c, &dirty);
        assert_eq!(stats, AdvanceStats { recomputed: 1, reused: 1 });
        assert!(next.shares_profile_with(&store, agents[0]));
        assert!(!next.shares_profile_with(&store, agents[1]));
        // The recomputed profile is byte-identical to a from-scratch build.
        let fresh = ProfileStore::build(&c, &ProfileParams::default());
        for &a in &agents {
            assert_eq!(next.profile(a), fresh.profile(a));
        }
    }

    #[test]
    fn advance_computes_new_agents_fresh() {
        let (mut c, products) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let carol = c.add_agent("http://ex.org/carol").unwrap();
        c.set_rating(carol, products[2], 1.0).unwrap();
        let (next, stats) = store.advance(&previous, &c, &HashSet::new());
        assert_eq!(stats, AdvanceStats { recomputed: 1, reused: 2 });
        let fresh = ProfileStore::build(&c, &ProfileParams::default());
        assert_eq!(next.profile(carol), fresh.profile(carol));
    }

    #[test]
    fn pearson_measure_dispatches() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let p = store.similarity(SimilarityMeasure::Pearson, agents[0], agents[0]);
        assert!((p.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_community() {
        let e = example1();
        let c = Community::new(e.fig.taxonomy, e.catalog);
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert!(store.is_empty());
    }
}
