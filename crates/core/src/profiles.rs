//! Community-wide profile computation and caching.
//!
//! Profile generation is a per-agent pure function of their ratings, so a
//! [`ProfileStore`] materializes every agent's taxonomy profile once and
//! similarity queries become vector operations. In a truly decentralized
//! deployment each agent computes these locally per crawl (§2 — "performs
//! all recommendation computations locally"); the store is the local cache
//! of that computation.

use semrec_profiles::generation::{generate_profile, ProfileParams};
use semrec_profiles::{similarity, ProfileVector};
use semrec_trust::AgentId;

use crate::model::Community;

/// Which similarity measure the engine uses over profile vectors (§3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimilarityMeasure {
    /// Pearson's correlation coefficient (refs \[6\], \[3\]).
    Pearson,
    /// Cosine distance from Information Retrieval.
    #[default]
    Cosine,
}

impl SimilarityMeasure {
    /// Applies the measure; `None` when undefined for the pair.
    pub fn apply(self, a: &ProfileVector, b: &ProfileVector) -> Option<f64> {
        match self {
            SimilarityMeasure::Pearson => similarity::pearson(a, b),
            SimilarityMeasure::Cosine => similarity::cosine(a, b),
        }
    }
}

/// Materialized taxonomy profiles for every agent of a community.
#[derive(Clone, Debug)]
pub struct ProfileStore {
    profiles: Vec<ProfileVector>,
    params: ProfileParams,
}

impl ProfileStore {
    /// Computes all profiles.
    pub fn build(community: &Community, params: &ProfileParams) -> Self {
        let profiles = community
            .agents()
            .map(|a| {
                generate_profile(
                    &community.taxonomy,
                    &community.catalog,
                    community.ratings_of(a),
                    params,
                )
            })
            .collect();
        ProfileStore { profiles, params: *params }
    }

    /// The profile of an agent.
    pub fn profile(&self, agent: AgentId) -> &ProfileVector {
        &self.profiles[agent.index()]
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The parameters the profiles were generated with.
    pub fn params(&self) -> &ProfileParams {
        &self.params
    }

    /// Recomputes a single agent's profile (after their ratings changed).
    pub fn refresh(&mut self, community: &Community, agent: AgentId) {
        self.profiles[agent.index()] = generate_profile(
            &community.taxonomy,
            &community.catalog,
            community.ratings_of(agent),
            &self.params,
        );
    }

    /// Similarity between two agents under the given measure.
    pub fn similarity(
        &self,
        measure: SimilarityMeasure,
        a: AgentId,
        b: AgentId,
    ) -> Option<f64> {
        measure.apply(self.profile(a), self.profile(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn setup() -> (Community, Vec<semrec_taxonomy::ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        // Alice likes the math books, Bob the cyberpunk novels.
        c.set_rating(alice, products[0], 1.0).unwrap();
        c.set_rating(alice, products[1], 0.8).unwrap();
        c.set_rating(bob, products[2], 1.0).unwrap();
        c.set_rating(bob, products[3], 0.9).unwrap();
        (c, products)
    }

    #[test]
    fn builds_one_profile_per_agent() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert_eq!(store.len(), 2);
        for a in c.agents() {
            assert!((store.profile(a).total() - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_reflects_divergent_interests() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        let self_sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[0])
            .unwrap();
        assert!(self_sim > sim);
        assert!((self_sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_tracks_rating_changes() {
        let (mut c, products) = setup();
        let mut store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let before = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        // Bob now also reads Alice's math books.
        c.set_rating(agents[1], products[0], 1.0).unwrap();
        c.set_rating(agents[1], products[1], 1.0).unwrap();
        store.refresh(&c, agents[1]);
        let after = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        assert!(after > before, "similarity must rise: {before} → {after}");
    }

    #[test]
    fn pearson_measure_dispatches() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let p = store.similarity(SimilarityMeasure::Pearson, agents[0], agents[0]);
        assert!((p.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_community() {
        let e = example1();
        let c = Community::new(e.fig.taxonomy, e.catalog);
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert!(store.is_empty());
    }
}
