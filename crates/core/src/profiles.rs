//! Community-wide profile computation and caching.
//!
//! Profile generation is a per-agent pure function of their ratings, so a
//! [`ProfileStore`] materializes every agent's taxonomy profile once and
//! similarity queries become vector operations. In a truly decentralized
//! deployment each agent computes these locally per crawl (§2 — "performs
//! all recommendation computations locally"); the store is the local cache
//! of that computation.
//!
//! Profiles live in one contiguous [`ProfileSlab`] (a flat topic arena, a
//! flat score arena, and CSR offsets) rather than one heap allocation per
//! agent. Reads hand out borrowed [`ProfileView`]s into the slab, and the
//! slab's arenas are exactly what snapshot v2 writes to disk. Incremental
//! [`advance`](ProfileStore::advance) copies each clean agent's arena range
//! wholesale and recomputes only the dirty set; per-agent *origin stamps*
//! record which computation a slot was carried from, preserving the
//! "shared, not recomputed" observability the old `Arc` pointers provided.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use semrec_profiles::generation::{generate_profile, ProfileParams};
use semrec_profiles::{similarity, ProfileSlab, ProfileVector, ProfileView};
use semrec_trust::AgentId;

use crate::delta::AdvanceStats;
use crate::model::Community;

/// Which similarity measure the engine uses over profile vectors (§3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimilarityMeasure {
    /// Pearson's correlation coefficient (refs \[6\], \[3\]).
    Pearson,
    /// Cosine distance from Information Retrieval.
    #[default]
    Cosine,
}

impl SimilarityMeasure {
    /// Applies the measure; `None` when undefined for the pair.
    pub fn apply(self, a: ProfileView<'_>, b: ProfileView<'_>) -> Option<f64> {
        match self {
            SimilarityMeasure::Pearson => similarity::pearson_view(a, b),
            SimilarityMeasure::Cosine => similarity::cosine_view(a, b),
        }
    }
}

/// Monotone source of computation identities for origin stamps. Every
/// batch of freshly generated profiles gets a new id; a slot's stamp
/// `(computation id, slot index)` therefore identifies *which* generation
/// run produced the bytes in that slot, across any number of advances.
static NEXT_COMPUTATION_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_computation_id() -> u64 {
    NEXT_COMPUTATION_ID.fetch_add(1, Ordering::Relaxed)
}

/// Materialized taxonomy profiles for every agent of a community, stored
/// as one flat structure-of-arrays slab.
#[derive(Clone, Debug)]
pub struct ProfileStore {
    slab: ProfileSlab,
    /// `(computation id, slot index at computation time)` per agent.
    origins: Vec<(u64, u32)>,
    params: ProfileParams,
}

impl ProfileStore {
    /// Computes all profiles.
    pub fn build(community: &Community, params: &ProfileParams) -> Self {
        let id = fresh_computation_id();
        let mut slab = ProfileSlab::new();
        let mut origins = Vec::new();
        for a in community.agents() {
            let p = generate_profile(
                &community.taxonomy,
                &community.catalog,
                community.ratings_of(a),
                params,
            );
            slab.push_view(p.as_view());
            origins.push((id, a.index() as u32));
        }
        ProfileStore { slab, origins, params: *params }
    }

    /// Derives the store for the next community generation, recomputing
    /// only the profiles of agents whose URI is in `dirty` and copying
    /// every other profile's arena range wholesale from `self`.
    ///
    /// `previous` must be the community this store was built from. An agent
    /// is reused only when it exists in both generations *and* is not
    /// dirty — agents new to `next` (including former dangling trustees
    /// whose ratings just appeared) are always computed fresh. The caller
    /// is responsible for `dirty` being sound: it must contain every URI
    /// whose rating set differs between the generations, or the returned
    /// store silently diverges from [`ProfileStore::build`] on `next`.
    pub fn advance(
        &self,
        previous: &Community,
        next: &Community,
        dirty: &HashSet<&str>,
    ) -> (ProfileStore, AdvanceStats) {
        let mut stats = AdvanceStats::default();
        let id = fresh_computation_id();
        let mut slab = ProfileSlab::new();
        let mut origins = Vec::with_capacity(self.origins.len());
        for a in next.agents() {
            let uri = &next.agent(a).expect("iterated id").uri;
            if !dirty.contains(uri.as_str()) {
                if let Some(old) = previous.agent_by_uri(uri) {
                    debug_assert_eq!(
                        previous.ratings_of(old),
                        next.ratings_of(a),
                        "clean agent {uri} has differing ratings: unsound dirty set"
                    );
                    stats.reused += 1;
                    slab.push_from(&self.slab, old.index());
                    origins.push(self.origins[old.index()]);
                    continue;
                }
            }
            stats.recomputed += 1;
            let p = generate_profile(
                &next.taxonomy,
                &next.catalog,
                next.ratings_of(a),
                &self.params,
            );
            slab.push_view(p.as_view());
            origins.push((id, a.index() as u32));
        }
        (ProfileStore { slab, origins, params: self.params }, stats)
    }

    /// Rebuilds a store from explicit per-agent profiles in agent-id order,
    /// e.g. as deserialized from a checkpoint (see `semrec-store`). The
    /// caller is responsible for the vectors matching what
    /// [`ProfileStore::build`] would produce for the community they will be
    /// used with; persistence round-trip tests hold that line.
    pub fn from_profiles(
        profiles: impl IntoIterator<Item = ProfileVector>,
        params: ProfileParams,
    ) -> Self {
        let id = fresh_computation_id();
        let mut slab = ProfileSlab::new();
        let mut origins = Vec::new();
        for (i, p) in profiles.into_iter().enumerate() {
            slab.push_view(p.as_view());
            origins.push((id, i as u32));
        }
        ProfileStore { slab, origins, params }
    }

    /// Adopts an already-assembled slab (the snapshot-v2 zero-copy load
    /// path: the slab arrives as three validated bulk arena copies).
    pub fn from_slab(slab: ProfileSlab, params: ProfileParams) -> Self {
        let id = fresh_computation_id();
        let origins = (0..slab.len()).map(|i| (id, i as u32)).collect();
        ProfileStore { slab, origins, params }
    }

    /// Iterates the stored profile views in agent-id order.
    pub fn iter(&self) -> impl Iterator<Item = ProfileView<'_>> {
        self.slab.iter()
    }

    /// The profile of an agent, as a borrowed view into the slab.
    pub fn profile(&self, agent: AgentId) -> ProfileView<'_> {
        self.slab.view(agent.index())
    }

    /// The underlying arena slab (snapshot capture reads it verbatim).
    pub fn slab(&self) -> &ProfileSlab {
        &self.slab
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True if no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// The parameters the profiles were generated with.
    pub fn params(&self) -> &ProfileParams {
        &self.params
    }

    /// Bytes of resident arena storage backing the profiles.
    pub fn resident_bytes(&self) -> usize {
        self.slab.resident_bytes() + self.origins.len() * 12
    }

    /// Recomputes a single agent's profile (after their ratings changed).
    pub fn refresh(&mut self, community: &Community, agent: AgentId) {
        let p = generate_profile(
            &community.taxonomy,
            &community.catalog,
            community.ratings_of(agent),
            &self.params,
        );
        // Rebuild the slab with the one range replaced; neighbours are
        // copied wholesale.
        let mut slab = ProfileSlab::new();
        for i in 0..self.slab.len() {
            if i == agent.index() {
                slab.push_view(p.as_view());
            } else {
                slab.push_from(&self.slab, i);
            }
        }
        self.slab = slab;
        self.origins[agent.index()] = (fresh_computation_id(), agent.index() as u32);
    }

    /// True when two stores carry the same origin stamp for this agent
    /// slot — i.e. the profile was carried across a generation (its bytes
    /// copied from the same original computation), not recomputed.
    pub fn shares_profile_with(&self, other: &ProfileStore, agent: AgentId) -> bool {
        match (self.origins.get(agent.index()), other.origins.get(agent.index())) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Similarity between two agents under the given measure.
    pub fn similarity(
        &self,
        measure: SimilarityMeasure,
        a: AgentId,
        b: AgentId,
    ) -> Option<f64> {
        measure.apply(self.profile(a), self.profile(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn setup() -> (Community, Vec<semrec_taxonomy::ProductId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice").unwrap();
        let bob = c.add_agent("http://ex.org/bob").unwrap();
        // Alice likes the math books, Bob the cyberpunk novels.
        c.set_rating(alice, products[0], 1.0).unwrap();
        c.set_rating(alice, products[1], 0.8).unwrap();
        c.set_rating(bob, products[2], 1.0).unwrap();
        c.set_rating(bob, products[3], 0.9).unwrap();
        (c, products)
    }

    #[test]
    fn builds_one_profile_per_agent() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert_eq!(store.len(), 2);
        for a in c.agents() {
            assert!((store.profile(a).total() - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_reflects_divergent_interests() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        let self_sim = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[0])
            .unwrap();
        assert!(self_sim > sim);
        assert!((self_sim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_tracks_rating_changes() {
        let (mut c, products) = setup();
        let mut store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let before = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        // Bob now also reads Alice's math books.
        c.set_rating(agents[1], products[0], 1.0).unwrap();
        c.set_rating(agents[1], products[1], 1.0).unwrap();
        store.refresh(&c, agents[1]);
        let after = store
            .similarity(SimilarityMeasure::Cosine, agents[0], agents[1])
            .unwrap();
        assert!(after > before, "similarity must rise: {before} → {after}");
    }

    #[test]
    fn refresh_tracks_rating_removal() {
        // The profile must shrink back: removing the rating again restores
        // the exact pre-rating profile, not some residue.
        let (mut c, products) = setup();
        let agents: Vec<_> = c.agents().collect();
        let mut store = ProfileStore::build(&c, &ProfileParams::default());
        let before = store.profile(agents[0]).to_vector();
        c.set_rating(agents[0], products[3], 0.7).unwrap();
        store.refresh(&c, agents[0]);
        assert_ne!(
            store.profile(agents[0]).to_vector(),
            before,
            "adding a rating must move the profile"
        );
        assert!(c.remove_rating(agents[0], products[3]));
        store.refresh(&c, agents[0]);
        assert_eq!(
            store.profile(agents[0]).to_vector(),
            before,
            "removing the rating must shrink the profile back"
        );
    }

    #[test]
    fn trust_only_change_does_not_dirty_profiles() {
        // A trust-edge-only delta leaves every profile clean: advance with
        // an empty dirty set must carry every profile's origin stamp.
        let (mut c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let agents: Vec<_> = c.agents().collect();
        c.trust.set_trust(agents[0], agents[1], 0.9).unwrap();
        let (next, stats) = store.advance(&previous, &c, &HashSet::new());
        assert_eq!(stats, AdvanceStats { recomputed: 0, reused: 2 });
        for &a in &agents {
            assert!(next.shares_profile_with(&store, a), "profile must be shared, not copied");
        }
    }

    #[test]
    fn advance_recomputes_exactly_the_dirty_set() {
        let (mut c, products) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let agents: Vec<_> = c.agents().collect();
        c.set_rating(agents[1], products[0], 0.5).unwrap();
        let dirty: HashSet<&str> = ["http://ex.org/bob"].into_iter().collect();
        let (next, stats) = store.advance(&previous, &c, &dirty);
        assert_eq!(stats, AdvanceStats { recomputed: 1, reused: 1 });
        assert!(next.shares_profile_with(&store, agents[0]));
        assert!(!next.shares_profile_with(&store, agents[1]));
        // The recomputed profile is byte-identical to a from-scratch build.
        let fresh = ProfileStore::build(&c, &ProfileParams::default());
        for &a in &agents {
            assert_eq!(next.profile(a), fresh.profile(a));
        }
    }

    #[test]
    fn advance_computes_new_agents_fresh() {
        let (mut c, products) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let previous = c.clone();
        let carol = c.add_agent("http://ex.org/carol").unwrap();
        c.set_rating(carol, products[2], 1.0).unwrap();
        let (next, stats) = store.advance(&previous, &c, &HashSet::new());
        assert_eq!(stats, AdvanceStats { recomputed: 1, reused: 2 });
        let fresh = ProfileStore::build(&c, &ProfileParams::default());
        assert_eq!(next.profile(carol), fresh.profile(carol));
    }

    #[test]
    fn from_slab_round_trips_the_arena() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let restored =
            ProfileStore::from_slab(store.slab().clone(), *store.params());
        for a in c.agents() {
            assert_eq!(restored.profile(a), store.profile(a));
        }
        assert!(restored.resident_bytes() >= store.slab().resident_bytes());
    }

    #[test]
    fn pearson_measure_dispatches() {
        let (c, _) = setup();
        let store = ProfileStore::build(&c, &ProfileParams::default());
        let agents: Vec<_> = c.agents().collect();
        let p = store.similarity(SimilarityMeasure::Pearson, agents[0], agents[0]);
        assert!((p.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_community() {
        let e = example1();
        let c = Community::new(e.fig.taxonomy, e.catalog);
        let store = ProfileStore::build(&c, &ProfileParams::default());
        assert!(store.is_empty());
    }
}
