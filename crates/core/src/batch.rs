//! Parallel batch recommendation.
//!
//! Each agent's pipeline is independent (all state is read-only once the
//! profile store is built), so batch evaluation fans out across std scoped
//! threads. Experiments E6/E8 evaluate thousands of agents per
//! configuration; this is their throughput engine.
//!
//! Instrumentation: `batch.tasks` counts every completed target across all
//! workers; `batch.worker.<i>.tasks` splits that by worker so per-thread
//! throughput is visible (the worker counters always sum to `batch.tasks`
//! for one run, whatever the thread count); the `batch.run` span times the
//! whole fan-out.

use std::thread;

use semrec_trust::AgentId;

use crate::engine::Recommender;
use crate::error::Result;
use crate::recommend::Recommendation;

/// Computes top-`n` recommendations for many agents in parallel.
///
/// Results are returned in input order. `threads = 0` or `1` runs inline.
pub fn recommend_batch(
    recommender: &Recommender,
    targets: &[AgentId],
    n: usize,
    threads: usize,
) -> Vec<Result<Vec<Recommendation>>> {
    let _run = semrec_obs::span("batch.run");
    let tasks = semrec_obs::counter("batch.tasks");
    if threads <= 1 || targets.len() <= 1 {
        semrec_obs::gauge("batch.threads").set(1.0);
        let worker = semrec_obs::counter("batch.worker.0.tasks");
        return targets
            .iter()
            .map(|&a| {
                let result = recommender.recommend(a, n);
                tasks.inc();
                worker.inc();
                result
            })
            .collect();
    }
    semrec_obs::gauge("batch.threads").set(threads as f64);
    let chunk = targets.len().div_ceil(threads);
    let chunks: Vec<&[AgentId]> = targets.chunks(chunk).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(worker_index, part)| {
                let tasks = tasks.clone();
                scope.spawn(move || {
                    let worker =
                        semrec_obs::counter(&format!("batch.worker.{worker_index}.tasks"));
                    part.iter()
                        .map(|&a| {
                            let result = recommender.recommend(a, n);
                            tasks.inc();
                            worker.inc();
                            result
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RecommenderConfig;
    use crate::model::Community;
    use semrec_taxonomy::fixtures::example1;

    fn build() -> (Recommender, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let agents: Vec<AgentId> = (0..12)
            .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
            .collect();
        for i in 0..12 {
            c.trust.set_trust(agents[i], agents[(i + 1) % 12], 0.9).unwrap();
            c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
        }
        (Recommender::new(c, RecommenderConfig::default()), agents)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (rec, agents) = build();
        let seq = recommend_batch(&rec, &agents, 5, 1);
        let par = recommend_batch(&rec, &agents, 5, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn preserves_input_order() {
        let (rec, agents) = build();
        let reversed: Vec<_> = agents.iter().rev().copied().collect();
        let out = recommend_batch(&rec, &reversed, 3, 3);
        let direct: Vec<_> = reversed.iter().map(|&a| rec.recommend(a, 3).unwrap()).collect();
        for (got, want) in out.iter().zip(direct.iter()) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
    }

    #[test]
    fn more_threads_than_targets() {
        let (rec, agents) = build();
        let out = recommend_batch(&rec, &agents[..2], 3, 64);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_targets() {
        let (rec, _) = build();
        assert!(recommend_batch(&rec, &[], 3, 4).is_empty());
    }

    #[test]
    fn task_counter_advances_by_target_count() {
        let (rec, agents) = build();
        let tasks = semrec_obs::counter("batch.tasks");
        let before = tasks.get();
        recommend_batch(&rec, &agents, 3, 4);
        // Sibling tests share the global counter; assert a lower bound here
        // and exact equality in the serialized workspace-level tests.
        assert!(tasks.get() - before >= agents.len() as u64);
    }
}
