//! The [`Observer`] event sink and the default ring-buffer implementation.
//!
//! Observers receive coarse milestone events — span completions, crawl
//! fetches, run boundaries — not every counter increment. They are for
//! debugging and post-hoc inspection; the registry's metrics remain the
//! source of truth for aggregates.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// What an [`Event`] reports.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A counter milestone (e.g. one crawl fetch) worth `n`.
    Count(u64),
    /// A measured value (residual, weight, ...).
    Value(f64),
    /// A [`crate::span`] closed after `seconds` of wall time.
    SpanEnd {
        /// The span's wall time in seconds.
        seconds: f64,
    },
    /// A free-form marker (experiment start, run boundary, ...).
    Marker,
}

/// One observability event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// The metric or span name this event concerns.
    pub name: String,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// A [`EventKind::Marker`] event.
    pub fn marker(name: impl Into<String>) -> Self {
        Event { name: name.into(), kind: EventKind::Marker }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Count(n) => write!(f, "{} +{n}", self.name),
            EventKind::Value(v) => write!(f, "{} = {v:.6}", self.name),
            EventKind::SpanEnd { seconds } => {
                write!(f, "{} took {:.3} ms", self.name, seconds * 1e3)
            }
            EventKind::Marker => write!(f, "-- {} --", self.name),
        }
    }
}

/// An event sink. Implementations must tolerate concurrent delivery.
pub trait Observer: Send + Sync {
    /// Receives one event. Must not call back into the emitting registry's
    /// `emit` (it would deadlock on the observer list lock).
    fn on_event(&self, event: &Event);
}

/// The default observer: keeps the last `capacity` events in memory,
/// dropping the oldest on overflow.
#[derive(Debug)]
pub struct RingBufferObserver {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingBufferObserver {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferObserver {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.lock().unwrap().is_empty()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    /// Renders the retained events, oldest first, one per line.
    pub fn render_text(&self) -> String {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|event| format!("{event}\n"))
            .collect()
    }
}

impl Observer for RingBufferObserver {
    fn on_event(&self, event: &Event) {
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let ring = RingBufferObserver::new(3);
        for i in 0..5u64 {
            ring.on_event(&Event { name: format!("e{i}"), kind: EventKind::Count(i) });
        }
        let names: Vec<_> = ring.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn zero_capacity_still_holds_one() {
        let ring = RingBufferObserver::new(0);
        ring.on_event(&Event::marker("a"));
        ring.on_event(&Event::marker("b"));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].name, "b");
    }

    #[test]
    fn formats_each_kind() {
        let lines = [
            Event { name: "c".into(), kind: EventKind::Count(2) }.to_string(),
            Event { name: "v".into(), kind: EventKind::Value(0.5) }.to_string(),
            Event { name: "s".into(), kind: EventKind::SpanEnd { seconds: 0.001 } }.to_string(),
            Event::marker("m").to_string(),
        ];
        assert_eq!(lines[0], "c +2");
        assert_eq!(lines[1], "v = 0.500000");
        assert_eq!(lines[2], "s took 1.000 ms");
        assert_eq!(lines[3], "-- m --");
    }

    #[test]
    fn clear_and_render() {
        let ring = RingBufferObserver::new(4);
        assert!(ring.is_empty());
        ring.on_event(&Event::marker("x"));
        assert!(ring.render_text().contains("-- x --"));
        ring.clear();
        assert!(ring.is_empty());
    }
}
