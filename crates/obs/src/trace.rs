//! Scoped stage timers and the per-run trace tree.
//!
//! A [`span`] guard times the region between its creation and drop. Spans
//! opened while another span is alive on the same thread nest under it, so
//! draining with [`take_trace`] yields a tree mirroring the pipeline's
//! call structure. Each span's wall time is also recorded into the global
//! registry's histogram of the same name.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::observer::EventKind;

/// One completed span: name, wall time, and the spans nested inside it.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's name (also its histogram name in the registry).
    pub name: String,
    /// Wall time between guard creation and drop.
    pub duration: Duration,
    /// Spans that started and finished while this one was open.
    pub children: Vec<SpanNode>,
}

/// The completed root spans of one thread's run, in completion order.
#[derive(Clone, Debug, Default)]
pub struct TraceTree {
    /// Top-level spans (those with no enclosing span).
    pub roots: Vec<SpanNode>,
}

impl TraceTree {
    /// Renders the tree as indented `name  duration` lines.
    pub fn render_text(&self) -> String {
        fn walk(out: &mut String, node: &SpanNode, depth: usize) {
            let _ = writeln!(
                out,
                "{:indent$}{}  {:.3} ms",
                "",
                node.name,
                node.duration.as_secs_f64() * 1e3,
                indent = depth * 2
            );
            for child in &node.children {
                walk(out, child, depth + 1);
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            walk(&mut out, root, 0);
        }
        out
    }

    /// Total number of spans in the tree.
    pub fn len(&self) -> usize {
        fn count(node: &SpanNode) -> usize {
            1 + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// True when no spans completed.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Depth-first search for a span by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'n>(nodes: &'n [SpanNode], name: &str) -> Option<&'n SpanNode> {
            for node in nodes {
                if node.name == name {
                    return Some(node);
                }
                if let Some(found) = walk(&node.children, name) {
                    return Some(found);
                }
            }
            None
        }
        walk(&self.roots, name)
    }
}

struct PendingSpan {
    name: String,
    start: Instant,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<PendingSpan>> = const { RefCell::new(Vec::new()) };
    static ROOTS: RefCell<Vec<SpanNode>> = const { RefCell::new(Vec::new()) };
}

/// Opens a timed span; the returned guard closes it on drop.
///
/// On close the span records its wall time into the global registry's
/// histogram named after the span, emits a [`EventKind::SpanEnd`] event,
/// and files itself into the thread's [`TraceTree`].
#[must_use = "a span measures until the guard drops; binding to _ closes it immediately"]
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|stack| {
        stack.borrow_mut().push(PendingSpan {
            name: name.to_string(),
            start: Instant::now(),
            children: Vec::new(),
        });
    });
    SpanGuard { _private: () }
}

/// Guard returned by [`span`]; closes the span when dropped.
pub struct SpanGuard {
    _private: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let node = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let pending = stack.pop().expect("span stack underflow");
            let node = SpanNode {
                name: pending.name,
                duration: pending.start.elapsed(),
                children: pending.children,
            };
            match stack.last_mut() {
                Some(parent) => {
                    parent.children.push(node);
                    None
                }
                None => Some(node),
            }
        });
        let (name, seconds) = match &node {
            Some(root) => (root.name.clone(), root.duration.as_secs_f64()),
            None => return record_nested(),
        };
        ROOTS.with(|roots| roots.borrow_mut().push(node.unwrap()));
        record(&name, seconds);
    }
}

/// Records the just-closed nested span (still sitting in its parent).
fn record_nested() {
    STACK.with(|stack| {
        let stack = stack.borrow();
        let parent = stack.last().expect("nested span must have a parent");
        let child = parent.children.last().expect("child just pushed");
        record(&child.name, child.duration.as_secs_f64());
    });
}

fn record(name: &str, seconds: f64) {
    let registry = crate::global();
    registry.histogram(name).observe(seconds);
    registry.emit_value(name, EventKind::SpanEnd { seconds });
}

/// Drains and returns the current thread's completed root spans.
pub fn take_trace() -> TraceTree {
    TraceTree { roots: ROOTS.with(|roots| roots.borrow_mut().drain(..).collect()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_a_tree() {
        let _ = take_trace(); // isolate from other tests on this thread
        {
            let _outer = span("outer");
            {
                let _inner_a = span("inner.a");
            }
            {
                let _inner_b = span("inner.b");
                let _leaf = span("leaf");
            }
        }
        {
            let _second = span("second");
        }
        let trace = take_trace();
        assert_eq!(trace.roots.len(), 2);
        assert_eq!(trace.len(), 5);
        let outer = &trace.roots[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<_> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["inner.a", "inner.b"]);
        assert_eq!(outer.children[1].children[0].name, "leaf");
        assert_eq!(trace.find("leaf").unwrap().name, "leaf");
        assert!(trace.find("missing").is_none());
        assert!(outer.duration >= outer.children.iter().map(|c| c.duration).sum());
    }

    #[test]
    fn take_trace_drains() {
        let _ = take_trace();
        {
            let _s = span("once");
        }
        assert_eq!(take_trace().len(), 1);
        assert!(take_trace().is_empty());
    }

    #[test]
    fn spans_feed_the_registry_histogram() {
        let name = "obs.test.span_histogram";
        let before = crate::global().histogram(name).count();
        {
            let _s = span(name);
        }
        assert_eq!(crate::global().histogram(name).count(), before + 1);
    }

    #[test]
    fn render_text_indents_children() {
        let _ = take_trace();
        {
            let _p = span("parent");
            let _c = span("child");
        }
        let text = take_trace().render_text();
        assert!(text.contains("parent"), "{text}");
        assert!(text.contains("  child"), "{text}");
    }
}
