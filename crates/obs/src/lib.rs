//! # semrec-obs — observability for the semrec pipeline
//!
//! A small, dependency-free observability layer shared by every crate in
//! the workspace. Three pieces:
//!
//! * **[`MetricsRegistry`]** — thread-safe named [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket [`Histogram`]s. Handles are `Arc`-backed and cheap to
//!   clone, so hot loops fetch once and increment lock-free. Snapshots are
//!   `BTreeMap`-ordered for deterministic rendering and comparison, and
//!   [`MetricsRegistry::reset`] zeroes in place so cached handles survive
//!   across experiment runs.
//! * **[`span`] / [`TraceTree`]** — scoped stage timers. A guard times the
//!   region until drop, records wall time into the registry histogram of
//!   the same name, and nests into a per-thread trace tree drained with
//!   [`take_trace`].
//! * **[`Observer`]** — an event-sink trait for coarse milestones (span
//!   ends, crawl fetches, run markers), with [`RingBufferObserver`] as the
//!   default in-memory implementation (drop-oldest on overflow) and a text
//!   formatter.
//!
//! Most call sites go through the process-wide [`global`] registry via the
//! free functions:
//!
//! ```
//! let runs = semrec_obs::counter("appleseed.runs");
//! runs.inc();
//! {
//!     let _timer = semrec_obs::span("engine.stage.synthesis");
//!     // ... the timed stage ...
//! }
//! let snapshot = semrec_obs::global().snapshot();
//! assert!(snapshot.counters["appleseed.runs"] >= 1);
//! assert!(snapshot.histograms["engine.stage.synthesis"].count >= 1);
//! ```
//!
//! ## Determinism contract
//!
//! Counters and gauges record *what* the pipeline did, never how long it
//! took, so for a fixed input and seed their values are identical across
//! runs and thread counts (worker-indexed counters aside). Timing lives
//! only in histograms fed by [`span`] guards; determinism tests compare
//! counter maps and ignore histogram sums. See `tests/determinism.rs` at
//! the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod observer;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, HistogramSummary, MetricsRegistry,
    MetricsSnapshot, DEFAULT_BUCKETS, TICK_BUCKETS,
};
pub use observer::{Event, EventKind, Observer, RingBufferObserver};
pub use trace::{span, take_trace, SpanGuard, SpanNode, TraceTree};

use std::sync::OnceLock;

/// The process-wide registry used by the pipeline's instrumentation.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Handle to the global registry's counter `name`.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Handle to the global registry's gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Handle to the global registry's histogram `name`.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Handle to the global registry's histogram `name` with caller-chosen
/// bucket bounds (e.g. [`TICK_BUCKETS`] for virtual-tick waits). Bounds are
/// fixed at first creation; later callers get the existing cells.
pub fn histogram_with_buckets(name: &str, bounds: &[f64]) -> Histogram {
    global().histogram_with_buckets(name, bounds)
}

/// Emits an event to the global registry's observers.
pub fn emit(event: Event) {
    global().emit(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn global_is_one_registry() {
        counter("obs.test.global").add(2);
        assert_eq!(global().counter("obs.test.global").get(), 2);
    }

    #[test]
    fn events_reach_registered_observers() {
        let ring = Arc::new(RingBufferObserver::new(8));
        let registry = MetricsRegistry::new();
        registry.add_observer(ring.clone());
        registry.emit(Event::marker("begin"));
        registry.emit_value("x", EventKind::Count(3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.events()[0].name, "begin");
        registry.clear_observers();
        registry.emit(Event::marker("after"));
        assert_eq!(ring.len(), 2, "cleared observer no longer receives");
    }
}
