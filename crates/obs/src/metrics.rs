//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, all safe to update from many threads at once.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::observer::{Event, EventKind, Observer};

/// A monotonically increasing counter.
///
/// Cheap to clone; clones share the same underlying cell, so a hot loop can
/// fetch the handle once and increment without touching the registry again.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (stored as `f64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default bucket upper bounds: a 1-2-5 ladder from 1µs to 10s.
///
/// Wide enough for both wall-time spans (seconds) and the unit-scale
/// quantities the pipeline observes (energy residuals, weights).
pub const DEFAULT_BUCKETS: [f64; 22] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0,
];

/// Bucket upper bounds for *virtual-tick* quantities (queue waits, deadline
/// slack): a 1-1.5-2-3 ladder from 1 tick to 1024 ticks. Tick observations
/// are small integers, so the seconds-tuned [`DEFAULT_BUCKETS`] would fold
/// everything into its top buckets and quantiles would be useless.
pub const TICK_BUCKETS: [f64; 20] = [
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0,
    256.0, 384.0, 512.0, 768.0, 1024.0,
];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; an implicit +∞ bucket follows the last.
    bounds: Vec<f64>,
    /// One cell per bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram. Clones share the same cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let inner = &*self.0;
        let idx = inner.bounds.partition_point(|&bound| bound < value);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`). See
    /// [`HistogramSnapshot::quantile`] for estimation semantics.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Estimated median. Convenience over [`Histogram::quantile`].
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// A point-in-time [`HistogramSummary`]: count, mean, and the serving
    /// percentiles, computed from one consistent snapshot.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }

    fn reset(&self) {
        for bucket in &self.0.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (implicit +∞ bucket follows).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`), Prometheus-style: the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q · count)`. Resolution is therefore one bucket width — fine
    /// for latency reporting, not for exact statistics.
    ///
    /// Edge cases: an empty histogram reports `0.0`; a quantile landing in
    /// the overflow (+∞) bucket saturates to the last finite bound (there
    /// is no upper bound to report); `q = 0` is the smallest bucket that
    /// holds any observation.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // ceil(q * count), clamped to at least the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &filled) in self.buckets.iter().enumerate() {
            cumulative += filled;
            if cumulative >= rank {
                return match self.bounds.get(bucket) {
                    Some(&bound) => bound,
                    // Overflow bucket: saturate to the last finite bound.
                    None => self.bounds.last().copied().unwrap_or(0.0),
                };
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Count, mean, and serving percentiles in one struct.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }
}

/// The digest bench code reports for a latency histogram: count, mean, and
/// the standard serving percentiles (bucket-upper-bound estimates).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Mean observed value (0 when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl std::fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "count={} mean={:.6} p50={:.6} p95={:.6} p99={:.6}",
            self.count, self.mean, self.p50, self.p95, self.p99
        )
    }
}

/// Point-in-time copy of a whole registry, ordered by name for
/// deterministic rendering and comparison.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A copy keeping only metrics whose name starts with `prefix`.
    ///
    /// Metric namespaces are dot-delimited (`engine.*`, `serve.*`, …), so
    /// golden comparisons over one subsystem slice the snapshot by prefix
    /// instead of enumerating every name another subsystem might mint.
    pub fn retain_prefix(&self, prefix: &str) -> MetricsSnapshot {
        self.filter(|name| name.starts_with(prefix))
    }

    /// A copy dropping every metric whose name starts with `prefix` — the
    /// complement of [`MetricsSnapshot::retain_prefix`]. Used to keep
    /// engine-side golden comparisons stable while a serving layer records
    /// its own `serve.*` metrics into the same registry.
    pub fn without_prefix(&self, prefix: &str) -> MetricsSnapshot {
        self.filter(|name| !name.starts_with(prefix))
    }

    fn filter(&self, keep: impl Fn(&str) -> bool) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, &value)| (name.clone(), value))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, &value)| (name.clone(), value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, histogram)| (name.clone(), histogram.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot as aligned `name value` lines; histograms show
    /// count / mean / sum (buckets elided — they're for programmatic use).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|name| name.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<width$}  {value:.6}");
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<width$}  count={} mean={:.6} sum={:.6}",
                histogram.count,
                histogram.mean(),
                histogram.sum,
            );
        }
        out
    }
}

/// A thread-safe registry of named metrics.
///
/// Accessors get-or-create: the first `counter("x")` call registers the
/// counter, later calls return a handle to the same cell. [`MetricsRegistry::reset`]
/// zeroes values *in place*, so handles cached by hot code stay valid
/// across experiment runs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    observers: RwLock<Vec<Arc<dyn Observer>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("snapshot", &self.snapshot()).finish()
    }
}

fn get_or_create<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(found) = map.read().unwrap().get(name) {
        return found.clone();
    }
    map.write().unwrap().entry(name.to_string()).or_default().clone()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the counter `name`, creating it at zero if new.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_create(&self.counters, name)
    }

    /// Handle to the gauge `name`, creating it at zero if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_create(&self.gauges, name)
    }

    /// Handle to the histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, &DEFAULT_BUCKETS)
    }

    /// Handle to the histogram `name`; `bounds` apply only on first
    /// creation (an existing histogram keeps its buckets).
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Histogram {
        if let Some(found) = self.histograms.read().unwrap().get(name) {
            return found.clone();
        }
        self.histograms
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Registers an event sink. See [`Observer`].
    pub fn add_observer(&self, observer: Arc<dyn Observer>) {
        self.observers.write().unwrap().push(observer);
    }

    /// Removes all observers.
    pub fn clear_observers(&self) {
        self.observers.write().unwrap().clear();
    }

    /// Delivers an event to every registered observer.
    ///
    /// Counters and histograms do *not* emit on every update — emission is
    /// for coarse milestones (span ends, crawl fetches, run boundaries)
    /// where per-event overhead is acceptable.
    pub fn emit(&self, event: Event) {
        let observers = self.observers.read().unwrap();
        for observer in observers.iter() {
            observer.on_event(&event);
        }
    }

    /// Convenience: emit a named marker event with a value.
    pub fn emit_value(&self, name: &str, kind: EventKind) {
        if !self.observers.read().unwrap().is_empty() {
            self.emit(Event { name: name.to_string(), kind });
        }
    }

    /// Zeroes every metric in place. Existing handles remain valid and
    /// keep pointing at the (now zeroed) cells; observers are untouched.
    pub fn reset(&self) {
        for counter in self.counters.read().unwrap().values() {
            counter.0.store(0, Ordering::Relaxed);
        }
        for gauge in self.gauges.read().unwrap().values() {
            gauge.0.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for histogram in self.histograms.read().unwrap().values() {
            histogram.reset();
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }

    /// `snapshot().render_text()`.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_share_cells() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(registry.counter("x").get(), 5);
        assert_eq!(registry.snapshot().counters["x"], 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("load");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(registry.gauge("load").get(), -1.0);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let histogram = Histogram::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            histogram.observe(v);
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.buckets, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 56.2).abs() < 1e-9);
        assert!((snap.mean() - 14.05).abs() < 1e-9);
    }

    #[test]
    fn boundary_value_falls_in_its_bucket() {
        // Upper bounds are inclusive (prometheus-style `le`).
        let histogram = Histogram::with_bounds(&[1.0]);
        histogram.observe(1.0);
        assert_eq!(histogram.snapshot().buckets, vec![1, 0]);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let histogram = Histogram::with_bounds(&[1.0, 2.0, 5.0, 10.0]);
        // 90 observations ≤ 1, 5 in (1, 2], 4 in (2, 5], 1 in (5, 10].
        for _ in 0..90 {
            histogram.observe(0.5);
        }
        for _ in 0..5 {
            histogram.observe(1.5);
        }
        for _ in 0..4 {
            histogram.observe(3.0);
        }
        histogram.observe(7.0);
        assert_eq!(histogram.p50(), 1.0);
        assert_eq!(histogram.quantile(0.90), 1.0);
        assert_eq!(histogram.p95(), 2.0);
        assert_eq!(histogram.p99(), 5.0);
        assert_eq!(histogram.quantile(1.0), 10.0);
        assert_eq!(histogram.quantile(0.0), 1.0, "q=0 is the smallest occupied bucket");
    }

    #[test]
    fn quantiles_on_empty_and_single_sample_histograms() {
        let empty = Histogram::with_bounds(&[1.0, 2.0]);
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);
        let summary = empty.summary();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mean, 0.0);
        assert_eq!(summary.p95, 0.0);

        let single = Histogram::with_bounds(&[1.0, 2.0]);
        single.observe(1.5);
        // Every percentile of a one-sample distribution is that sample's
        // bucket bound.
        assert_eq!(single.p50(), 2.0);
        assert_eq!(single.p95(), 2.0);
        assert_eq!(single.p99(), 2.0);
        assert_eq!(single.summary().count, 1);
    }

    #[test]
    fn quantile_saturates_at_the_overflow_bucket() {
        let histogram = Histogram::with_bounds(&[1.0, 10.0]);
        histogram.observe(100.0);
        histogram.observe(200.0);
        // Both observations overflow: the estimate can only promise "beyond
        // the last finite bound".
        assert_eq!(histogram.p50(), 10.0);
        assert_eq!(histogram.p99(), 10.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let histogram = Histogram::with_bounds(&[1.0]);
        histogram.observe(0.5);
        let _ = histogram.quantile(1.5);
    }

    #[test]
    fn summary_display_is_stable() {
        let histogram = Histogram::with_bounds(&[1.0, 2.0]);
        histogram.observe(0.5);
        histogram.observe(1.5);
        let text = histogram.summary().to_string();
        assert!(text.contains("count=2"), "{text}");
        assert!(text.contains("p95=2.000000"), "{text}");
    }

    #[test]
    fn snapshot_prefix_filters_split_namespaces() {
        let registry = MetricsRegistry::new();
        registry.counter("engine.runs").add(2);
        registry.counter("serve.requests.served").add(5);
        registry.gauge("serve.queue.depth").set(1.0);
        registry.histogram("serve.latency.seconds").observe(0.01);
        let snapshot = registry.snapshot();

        let engine_only = snapshot.without_prefix("serve.");
        assert_eq!(engine_only.counters.len(), 1);
        assert!(engine_only.gauges.is_empty());
        assert!(engine_only.histograms.is_empty());
        assert_eq!(engine_only.counters["engine.runs"], 2);

        let serve_only = snapshot.retain_prefix("serve.");
        assert_eq!(serve_only.counters["serve.requests.served"], 5);
        assert_eq!(serve_only.gauges["serve.queue.depth"], 1.0);
        assert_eq!(serve_only.histograms["serve.latency.seconds"].count, 1);
        assert!(!serve_only.counters.contains_key("engine.runs"));
    }

    #[test]
    fn reset_zeroes_in_place_keeping_handles() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("n");
        let histogram = registry.histogram("h");
        counter.add(7);
        histogram.observe(0.25);
        registry.reset();
        assert_eq!(counter.get(), 0);
        assert_eq!(histogram.count(), 0);
        counter.inc(); // the old handle still feeds the registry
        assert_eq!(registry.counter("n").get(), 1);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = registry.counter("c");
                let histogram = registry.histogram("h");
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                        histogram.observe(0.001);
                    }
                });
            }
        });
        assert_eq!(registry.counter("c").get(), 80_000);
        assert_eq!(registry.histogram("h").count(), 80_000);
        assert!((registry.histogram("h").sum() - 80.0).abs() < 1e-6);
    }

    #[test]
    fn render_text_lists_all_names() {
        let registry = MetricsRegistry::new();
        registry.counter("alpha").add(3);
        registry.gauge("beta").set(1.5);
        registry.histogram("gamma").observe(0.5);
        let text = registry.render_text();
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("beta"), "{text}");
        assert!(text.contains("gamma"), "{text}");
        assert!(text.contains("count=1"), "{text}");
    }
}
