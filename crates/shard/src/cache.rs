//! Per-shard serve cache with epoch-based carry-over.
//!
//! Entries are keyed by `(shard, serve_epoch, agent, n)`. When a new model
//! generation is swapped in with [`ShardedServeCache::swap`], entries whose
//! shard kept its serve epoch are **carried** across the swap (the sharded
//! advance only bumps serve epochs of shards within trust range of the
//! delta, so everything else provably recomputes byte-identically);
//! entries from serve-dirty shards are invalidated wholesale.
//!
//! Eviction is an exact LRU over logical access stamps — deterministic, no
//! clocks — so cache behaviour is reproducible across runs.

use std::collections::HashMap;
use std::sync::Mutex;

use semrec_core::{Recommendation, Result};

use crate::model::ShardedModel;
use crate::partition::GlobalId;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    shard: u32,
    epoch: u64,
    agent: GlobalId,
    n: usize,
}

struct Entry {
    recs: Vec<Recommendation>,
    stamp: u64,
}

struct Inner {
    entries: HashMap<Key, Entry>,
    clock: u64,
}

/// A deterministic LRU cache of served recommendation lists, aware of
/// per-shard serve epochs.
pub struct ShardedServeCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ShardedServeCache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ShardedServeCache {
        ShardedServeCache {
            inner: Mutex::new(Inner { entries: HashMap::new(), clock: 0 }),
            capacity: capacity.max(1),
        }
    }

    /// Serves `target`'s top-`n` list from the cache, computing and
    /// inserting it on a miss.
    pub fn get_or_compute(
        &self,
        model: &ShardedModel,
        target: GlobalId,
        n: usize,
    ) -> Result<Vec<Recommendation>> {
        let shard = model.directory().shard_of(target);
        let epoch = model.shard(shard as usize).serve_epoch();
        let key = Key { shard, epoch, agent: target, n };
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.stamp = stamp;
                semrec_obs::counter("shard.cache.hits").inc();
                return Ok(entry.recs.clone());
            }
        }
        semrec_obs::counter("shard.cache.misses").inc();
        let recs = model.recommend(target, n)?;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            // Exact LRU victim; GlobalId breaks stamp ties deterministically
            // (stamps are unique under the lock, the tie-break is belt and
            // braces for the empty-cache edge).
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.stamp, k.agent, k.n))
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(key, Entry { recs: recs.clone(), stamp });
        Ok(recs)
    }

    /// Swaps in a new model generation: entries from shards whose serve
    /// epoch is unchanged are carried, the rest are invalidated.
    pub fn swap(&self, next: &ShardedModel) {
        let mut inner = self.inner.lock().expect("cache lock");
        let mut carried = 0u64;
        let mut invalidated = 0u64;
        inner.entries.retain(|key, _| {
            let live = (key.shard as usize) < next.shard_count()
                && next.shard(key.shard as usize).serve_epoch() == key.epoch;
            if live {
                carried += 1;
            } else {
                invalidated += 1;
            }
            live
        });
        semrec_obs::counter("shard.cache.carried").add(carried);
        semrec_obs::counter("shard.cache.invalidated").add(invalidated);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashShardFn;
    use semrec_core::{Community, ModelDelta, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;
    use std::sync::Arc;

    fn model(shards: usize) -> (Community, ShardedModel) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let ids: Vec<_> = (0..10)
            .map(|i| c.add_agent(format!("http://cache.example.org/{i}#me")).unwrap())
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            c.set_rating(a, products[i % products.len()], 0.8).unwrap();
            c.trust.set_trust(a, ids[(i + 1) % ids.len()], 1.0).unwrap();
        }
        let (m, _) =
            ShardedModel::partition(&c, RecommenderConfig::default(), Arc::new(HashShardFn), shards, 1);
        (c, m)
    }

    #[test]
    fn hit_returns_identical_list() {
        let (_, m) = model(2);
        let cache = ShardedServeCache::new(16);
        let a = cache.get_or_compute(&m, GlobalId(0), 5).unwrap();
        let b = cache.get_or_compute(&m, GlobalId(0), 5).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.product == y.product && x.score == y.score));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let (_, m) = model(2);
        let cache = ShardedServeCache::new(3);
        for i in 0..8 {
            cache.get_or_compute(&m, GlobalId(i), 5).unwrap();
        }
        assert!(cache.len() <= 3);
    }

    #[test]
    fn empty_delta_swap_carries_everything() {
        let (c, m) = model(2);
        let cache = ShardedServeCache::new(16);
        for i in 0..4 {
            cache.get_or_compute(&m, GlobalId(i), 5).unwrap();
        }
        let before = cache.len();
        let (next, _) = m.advance(&c, &ModelDelta::default());
        cache.swap(&next);
        assert_eq!(cache.len(), before, "clean swap must carry every entry");
    }
}
