//! Per-shard durable persistence: one `semrec-store` snapshot/WAL
//! generation per shard, plus two sidecar logs the unsharded store has no
//! need for — the global **directory** (ordinal → URI → shard) and each
//! shard's **boundary** edges (trust statements whose trustee lives on
//! another shard, which must not enter the shard-local snapshot because
//! the local community has no agent to attach them to).
//!
//! Layout under the root directory:
//!
//! ```text
//! root/
//!   directory.bin          append-only framed log of directory ops
//!   shard-000/
//!     snapshot-000001.bin  ordinary semrec-store generation
//!     wal-000001.log
//!     boundary.bin         append-only framed log of boundary-edge ops
//!   shard-001/ …
//! ```
//!
//! Each shard's snapshot view is its members **sorted by URI** with trust
//! filtered to local members, so a shard snapshot is a completely ordinary
//! `semrec-store` checkpoint: `Store::recover` replays it through the live
//! refresh path with no sharding knowledge at all. The directory and
//! boundary logs use length+checksum frames (torn tails are detected) and
//! are rewritten as a single base frame at every checkpoint, then appended
//! to by [`ShardedStore::append_delta`].
//!
//! Trust statements pointing at agents outside the universe are dropped at
//! persistence time (the unsharded builder would register them as bare
//! dangling agents; a sharded universe has no shard to own them).

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use semrec_core::{ProfileStore, Recommender, SharedModel, SourceHealth};
use semrec_profiles::ProfileVector;
use semrec_store::codec::{fnv1a64, Reader, Writer};
use semrec_store::{CheckpointReport, Error, Result, Store};
use semrec_web::{CommunityBuilder, CrawlDelta, ExtractedAgent};

use crate::model::{Shard, ShardedModel, StarEdge, Target};
use crate::partition::{Directory, GlobalId, ShardFn};

const DIRECTORY_MAGIC: &[u8; 8] = b"SRDIR001";
const BOUNDARY_MAGIC: &[u8; 8] = b"SRBND001";

/// Outcome of a [`ShardedStore::recover`].
pub struct ShardedRecovery {
    /// The reassembled sharded model.
    pub model: ShardedModel,
    /// The highest per-shard serve epoch recovered (shards that saw more
    /// WAL records warm-start further ahead).
    pub epoch: u64,
    /// WAL records replayed across all shards.
    pub replayed: usize,
    /// True when any shard's recovery fell back past corruption.
    pub degraded: bool,
}

/// A durable sharded store rooted at one directory: one `semrec-store`
/// per shard plus the directory and boundary sidecars.
#[derive(Clone, Debug)]
pub struct ShardedStore {
    root: PathBuf,
}

impl ShardedStore {
    /// Opens (creating if needed) a sharded store root.
    pub fn open(root: impl Into<PathBuf>) -> Result<ShardedStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ShardedStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:03}"))
    }

    fn directory_path(&self) -> PathBuf {
        self.root.join("directory.bin")
    }

    /// Number of shard directories present.
    pub fn shard_count(&self) -> Result<usize> {
        let mut max = None;
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = name.strip_prefix("shard-").and_then(|d| d.parse::<usize>().ok()) {
                max = Some(max.map_or(idx, |m: usize| m.max(idx)));
            }
        }
        max.map(|m| m + 1).ok_or(Error::NoSnapshot)
    }

    /// Durably checkpoints every shard as its next snapshot generation and
    /// rewrites the directory and boundary sidecars to match.
    pub fn checkpoint(
        &self,
        model: &ShardedModel,
        epoch: u64,
    ) -> Result<Vec<CheckpointReport>> {
        let _span = semrec_obs::span("shard.store.checkpoint");
        let mut w = Writer::new();
        let directory = model.directory();
        w.put_len(directory.len());
        for (_, uri, shard) in directory.iter() {
            w.put_u8(0);
            w.put_str(uri);
            w.put_u32(shard);
        }
        write_base(&self.directory_path(), DIRECTORY_MAGIC, w.as_bytes())?;

        let mut reports = Vec::with_capacity(model.shard_count());
        for s in 0..model.shard_count() {
            let (view, vectors, boundary) = local_view(model, s);
            let mut w = Writer::new();
            w.put_len(boundary.len());
            for (truster, edges) in &boundary {
                w.put_u8(0); // replace
                w.put_str(truster);
                w.put_len(edges.len());
                for (trustee, weight) in edges {
                    w.put_str(trustee);
                    w.put_f64(*weight);
                }
            }
            let dir = self.shard_dir(s);
            fs::create_dir_all(&dir)?;
            write_base(&dir.join("boundary.bin"), BOUNDARY_MAGIC, w.as_bytes())?;

            // The shard snapshot is an ordinary single-node checkpoint of
            // the local model, rebuilt in the view's URI-sorted numbering.
            let global = model.shard(s).community();
            let (community, _) = CommunityBuilder::new(&view)
                .build(global.taxonomy.clone(), global.catalog.clone());
            let profiles = ProfileStore::from_profiles(vectors, model.config().profile);
            let shared =
                SharedModel::from_parts(community, profiles, *model.config(), SourceHealth::default());
            let engine = Recommender::from_shared(Arc::new(shared));
            let store = Store::open(&dir)?;
            reports.push(store.checkpoint(&engine, &view, epoch)?);
            semrec_obs::counter("shard.store.checkpoints").inc();
        }
        Ok(reports)
    }

    /// Splits a crawl delta by owning shard and appends each non-empty
    /// sub-delta to its shard's WAL, the new agents to the directory log,
    /// and cross-shard trust changes to the boundary logs. Returns the
    /// number of shard WALs touched — untouched shards pay nothing and
    /// replay nothing at recovery.
    pub fn append_delta(
        &self,
        model: &ShardedModel,
        delta: &CrawlDelta,
        health: &SourceHealth,
    ) -> Result<usize> {
        let n = model.shard_count();
        let directory = model.directory();
        // Agents added this round may trust each other; resolve their
        // shards up front so sibling references don't count as unknown.
        let added_shard: HashMap<&str, u32> = delta
            .added
            .iter()
            .map(|a| {
                let shard = directory
                    .by_uri(&a.uri)
                    .map(|g| directory.shard_of(g))
                    .unwrap_or_else(|| model.shard_fn().route(&a.uri, n));
                (a.uri.as_str(), shard)
            })
            .collect();
        let owner = |uri: &str| -> Option<u32> {
            directory
                .by_uri(uri)
                .map(|g| directory.shard_of(g))
                .or_else(|| added_shard.get(uri).copied())
        };

        let mut subs: Vec<CrawlDelta> = vec![CrawlDelta::default(); n];
        let mut dir_ops = Writer::new();
        let mut dir_count = 0usize;
        let mut boundary_ops: Vec<(Writer, usize)> = (0..n).map(|_| (Writer::new(), 0)).collect();

        for agent in &delta.added {
            let s = added_shard[agent.uri.as_str()] as usize;
            let mut local = Vec::new();
            let mut remote = Vec::new();
            for (trustee, weight) in &agent.trust {
                match owner(trustee) {
                    Some(t) if t as usize == s => local.push((trustee.clone(), *weight)),
                    Some(_) => remote.push((trustee.clone(), *weight)),
                    None => {} // outside the universe: dropped
                }
            }
            if !remote.is_empty() {
                let (w, count) = &mut boundary_ops[s];
                w.put_u8(0); // replace
                w.put_str(&agent.uri);
                w.put_len(remote.len());
                for (trustee, weight) in &remote {
                    w.put_str(trustee);
                    w.put_f64(*weight);
                }
                *count += 1;
            }
            dir_ops.put_u8(0);
            dir_ops.put_str(&agent.uri);
            dir_ops.put_u32(s as u32);
            dir_count += 1;
            subs[s].added.push(ExtractedAgent { trust: local, ..agent.clone() });
        }

        for diff in &delta.changed {
            let Some(s) = owner(&diff.uri).map(|s| s as usize) else { continue };
            let mut sub = diff.clone();
            sub.trust_set.clear();
            sub.trust_removed.clear();
            for (trustee, weight) in &diff.trust_set {
                match owner(trustee) {
                    Some(t) if t as usize == s => sub.trust_set.push((trustee.clone(), *weight)),
                    Some(_) => {
                        let (w, count) = &mut boundary_ops[s];
                        w.put_u8(1); // set
                        w.put_str(&diff.uri);
                        w.put_str(trustee);
                        w.put_f64(*weight);
                        *count += 1;
                    }
                    None => {}
                }
            }
            for trustee in &diff.trust_removed {
                match owner(trustee) {
                    Some(t) if t as usize == s => sub.trust_removed.push(trustee.clone()),
                    _ => {
                        // Remote — or an agent already gone from the
                        // directory, where removal on both sides is a
                        // safe no-op for whichever side never had it.
                        sub.trust_removed.push(trustee.clone());
                        let (w, count) = &mut boundary_ops[s];
                        w.put_u8(2); // remove
                        w.put_str(&diff.uri);
                        w.put_str(trustee);
                        *count += 1;
                    }
                }
            }
            subs[s].changed.push(sub);
        }

        for uri in &delta.removed {
            let Some(s) = owner(uri).map(|s| s as usize) else { continue };
            subs[s].removed.push(uri.clone());
            dir_ops.put_u8(1);
            dir_ops.put_str(uri);
            dir_count += 1;
            let (w, count) = &mut boundary_ops[s];
            w.put_u8(3); // drop truster
            w.put_str(uri);
            *count += 1;
        }

        if dir_count > 0 {
            let mut payload = Writer::new();
            payload.put_len(dir_count);
            payload.put_raw(dir_ops.as_bytes());
            append_frame(&self.directory_path(), DIRECTORY_MAGIC, payload.as_bytes())?;
        }
        let mut touched = 0;
        for (s, sub) in subs.iter().enumerate() {
            let (ops, count) = &boundary_ops[s];
            if *count > 0 {
                let mut payload = Writer::new();
                payload.put_len(*count);
                payload.put_raw(ops.as_bytes());
                append_frame(&self.shard_dir(s).join("boundary.bin"), BOUNDARY_MAGIC, payload.as_bytes())?;
            }
            if sub.added.is_empty() && sub.changed.is_empty() && sub.removed.is_empty() {
                continue;
            }
            Store::open(self.shard_dir(s))?.append_delta(sub, health)?;
            semrec_obs::counter("shard.store.wal.appended").inc();
            touched += 1;
        }
        Ok(touched)
    }

    /// Recovers the sharded model: per-shard snapshot + WAL replay through
    /// the ordinary `semrec-store` path, then the universe is re-stitched
    /// from the directory and boundary sidecars.
    pub fn recover(&self, shard_fn: Arc<dyn ShardFn>) -> Result<ShardedRecovery> {
        let _span = semrec_obs::span("shard.store.recover");
        let n = self.shard_count()?;
        let entries = fold_directory(&read_frames(&self.directory_path(), DIRECTORY_MAGIC)?)?;
        let mut directory = Directory::default();
        for (uri, shard) in entries {
            if shard as usize >= n {
                return Err(Error::Corrupt(format!(
                    "directory routes {uri} to shard {shard} of {n}"
                )));
            }
            directory.push(uri, shard);
        }

        let mut recoveries = Vec::with_capacity(n);
        let mut boundaries = Vec::with_capacity(n);
        for s in 0..n {
            recoveries.push(Store::open(self.shard_dir(s))?.recover()?);
            boundaries.push(fold_boundary(&read_frames(
                &self.shard_dir(s).join("boundary.bin"),
                BOUNDARY_MAGIC,
            )?)?);
        }

        // Cross-validate directory against the recovered memberships.
        let mut local_of = vec![u32::MAX; directory.len()];
        let mut owned = vec![0usize; n];
        for (g, uri, shard) in directory.iter() {
            let community = recoveries[shard as usize].engine.community();
            match community.agent_by_uri(uri) {
                Some(local) => local_of[g.index()] = local.index() as u32,
                None => {
                    return Err(Error::Corrupt(format!(
                        "directory lists {uri} on shard {shard}, which does not hold it"
                    )))
                }
            }
            owned[shard as usize] += 1;
        }
        for (s, recovery) in recoveries.iter().enumerate() {
            let have = recovery.engine.community().agent_count();
            if have != owned[s] {
                return Err(Error::Corrupt(format!(
                    "shard {s} holds {have} agents but the directory assigns it {}",
                    owned[s]
                )));
            }
        }

        let config = recoveries
            .first()
            .map(|r| *r.engine.config())
            .unwrap_or_default();
        let mut epoch = 0;
        let mut replayed = 0;
        let mut degraded = false;
        let mut shards = Vec::with_capacity(n);
        for (s, recovery) in recoveries.iter().enumerate() {
            epoch = epoch.max(recovery.epoch);
            replayed += recovery.replayed;
            degraded |= recovery.degraded();
            shards.push(Arc::new(stitch_shard(
                s,
                recovery,
                &boundaries[s],
                &directory,
                &local_of,
            )));
            semrec_obs::counter("shard.store.recovered").inc();
        }
        let model = ShardedModel::from_shards(shards, directory, local_of, config, shard_fn);
        Ok(ShardedRecovery { model, epoch, replayed, degraded })
    }
}

/// Rebuilds one shard from its recovered engine plus the boundary map.
fn stitch_shard(
    me: usize,
    recovery: &semrec_store::Recovery,
    boundary: &HashMap<String, Vec<(String, f64)>>,
    directory: &Directory,
    local_of: &[u32],
) -> Shard {
    let community = recovery.engine.community().clone();
    let profiles = recovery.engine.profiles().clone();
    let globals: Vec<GlobalId> = community
        .agents()
        .map(|local| {
            let uri = &community.agent(local).expect("dense").uri;
            directory.by_uri(uri).expect("validated against directory")
        })
        .collect();
    let mut outstar = Vec::with_capacity(globals.len());
    let mut boundary_out = 0;
    for local in community.agents() {
        let uri = &community.agent(local).expect("dense").uri;
        let mut star: Vec<StarEdge> = community
            .trust
            .out_edges(local)
            .iter()
            .map(|&(trustee, weight)| StarEdge {
                global: globals[trustee.index()],
                weight,
                target: Target::Local(trustee),
            })
            .collect();
        if let Some(remote) = boundary.get(uri.as_str()) {
            for (trustee, weight) in remote {
                // Edges to agents that left the universe (or moved onto
                // this shard through a later repartition) are dropped.
                let Some(g) = directory.by_uri(trustee) else { continue };
                let shard = directory.shard_of(g);
                if shard as usize == me || local_of[g.index()] == u32::MAX {
                    continue;
                }
                star.push(StarEdge {
                    global: g,
                    weight: *weight,
                    target: Target::Remote { shard, local: local_of[g.index()] },
                });
                boundary_out += 1;
            }
        }
        star.sort_by_key(|e| e.global);
        outstar.push(star);
    }
    Shard {
        community,
        profiles,
        globals,
        outstar,
        boundary_out,
        model_epoch: recovery.epoch,
        serve_epoch: recovery.epoch,
    }
}

/// Derives one shard's snapshot inputs: the URI-sorted local extraction
/// view, the profile vectors in that order, and the boundary edge lists.
#[allow(clippy::type_complexity)]
fn local_view(
    model: &ShardedModel,
    s: usize,
) -> (Vec<ExtractedAgent>, Vec<ProfileVector>, Vec<(String, Vec<(String, f64)>)>) {
    let shard = model.shard(s);
    let community = shard.community();
    let directory = model.directory();
    let mut items: Vec<(ExtractedAgent, ProfileVector)> = Vec::with_capacity(shard.len());
    let mut boundary = Vec::new();
    for local in community.agents() {
        let uri = community.agent(local).expect("dense").uri.clone();
        let mut trust = Vec::new();
        let mut remote = Vec::new();
        for edge in &shard.outstar[local.index()] {
            let trustee = directory.uri(edge.global).to_string();
            match edge.target {
                Target::Local(_) => trust.push((trustee, edge.weight)),
                Target::Remote { .. } => remote.push((trustee, edge.weight)),
            }
        }
        trust.sort_by(|a, b| a.0.cmp(&b.0));
        remote.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ratings: Vec<(String, f64)> = community
            .ratings_of(local)
            .iter()
            .map(|&(product, score)| {
                (community.catalog.product(product).identifier.clone(), score)
            })
            .collect();
        ratings.sort_by(|a, b| a.0.cmp(&b.0));
        if !remote.is_empty() {
            boundary.push((uri.clone(), remote));
        }
        let agent = ExtractedAgent { uri, trust, ratings, knows: Vec::new(), see_also: Vec::new() };
        items.push((agent, shard.profiles().profile(local).to_vector()));
    }
    items.sort_by(|a, b| a.0.uri.cmp(&b.0.uri));
    boundary.sort_by(|a, b| a.0.cmp(&b.0));
    let (view, vectors) = items.into_iter().unzip();
    (view, vectors, boundary)
}

/// Atomically (re)writes a sidecar as header + one base frame.
fn write_base(path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut bytes = magic.to_vec();
    bytes.extend_from_slice(&frame(payload));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Appends one frame to a sidecar, creating it (with header) if missing.
fn append_frame(path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
    if file.metadata()?.len() == 0 {
        file.write_all(magic)?;
    }
    file.write_all(&frame(payload))?;
    file.sync_all()?;
    Ok(())
}

/// One frame: little-endian length, payload, FNV-1a checksum.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = (payload.len() as u64).to_le_bytes().to_vec();
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    bytes
}

/// Reads every intact frame of a sidecar; a torn or corrupt tail frame is
/// discarded (like a torn WAL tail), anything before it is kept.
fn read_frames(path: &Path, magic: &[u8; 8]) -> Result<Vec<Vec<u8>>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(Error::Corrupt(format!("missing sidecar {}", path.display())))
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return Err(Error::Corrupt(format!("bad sidecar header in {}", path.display())));
    }
    let mut frames = Vec::new();
    let mut at = magic.len();
    while at < bytes.len() {
        if bytes.len() - at < 16 {
            break; // torn tail
        }
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize;
        if bytes.len() - at - 16 < len {
            break; // torn tail
        }
        let payload = &bytes[at + 8..at + 8 + len];
        let checksum =
            u64::from_le_bytes(bytes[at + 8 + len..at + 16 + len].try_into().expect("8 bytes"));
        if fnv1a64(payload) != checksum {
            break; // corrupt tail: keep the intact prefix
        }
        frames.push(payload.to_vec());
        at += 16 + len;
    }
    Ok(frames)
}

/// Folds directory frames into the live `(uri, shard)` list, preserving
/// first-appearance order (= recovered ordinal order).
fn fold_directory(frames: &[Vec<u8>]) -> Result<Vec<(String, u32)>> {
    let mut order: Vec<String> = Vec::new();
    let mut live: HashMap<String, Option<u32>> = HashMap::new();
    for payload in frames {
        let mut r = Reader::new(payload, "directory frame");
        let ops = r.get_len()?;
        for _ in 0..ops {
            match r.get_u8()? {
                0 => {
                    let uri = r.get_str()?;
                    let shard = r.get_u32()?;
                    if !live.contains_key(&uri) {
                        order.push(uri.clone());
                    }
                    live.insert(uri, Some(shard));
                }
                1 => {
                    let uri = r.get_str()?;
                    live.insert(uri, None);
                }
                tag => return Err(Error::Corrupt(format!("directory op tag {tag}"))),
            }
        }
    }
    Ok(order
        .into_iter()
        .filter_map(|uri| {
            let shard = live.get(&uri).copied().flatten()?;
            Some((uri, shard))
        })
        .collect())
}

/// Folds boundary frames into truster → sorted remote edge list.
fn fold_boundary(frames: &[Vec<u8>]) -> Result<HashMap<String, Vec<(String, f64)>>> {
    let mut map: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    for payload in frames {
        let mut r = Reader::new(payload, "boundary frame");
        let ops = r.get_len()?;
        for _ in 0..ops {
            match r.get_u8()? {
                0 => {
                    let truster = r.get_str()?;
                    let count = r.get_len()?;
                    let mut edges = Vec::with_capacity(count);
                    for _ in 0..count {
                        let trustee = r.get_str()?;
                        let weight = r.get_f64()?;
                        edges.push((trustee, weight));
                    }
                    map.insert(truster, edges);
                }
                1 => {
                    let truster = r.get_str()?;
                    let trustee = r.get_str()?;
                    let weight = r.get_f64()?;
                    let edges = map.entry(truster).or_default();
                    match edges.binary_search_by(|(t, _)| t.as_str().cmp(&trustee)) {
                        Ok(pos) => edges[pos].1 = weight,
                        Err(pos) => edges.insert(pos, (trustee, weight)),
                    }
                }
                2 => {
                    let truster = r.get_str()?;
                    let trustee = r.get_str()?;
                    if let Some(edges) = map.get_mut(&truster) {
                        if let Ok(pos) =
                            edges.binary_search_by(|(t, _)| t.as_str().cmp(&trustee))
                        {
                            edges.remove(pos);
                        }
                    }
                }
                3 => {
                    let truster = r.get_str()?;
                    map.remove(&truster);
                }
                tag => return Err(Error::Corrupt(format!("boundary op tag {tag}"))),
            }
        }
    }
    for edges in map.values_mut() {
        edges.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashShardFn;
    use semrec_core::{Community, RecommenderConfig};
    use semrec_taxonomy::fixtures::example1;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "semrec-shard-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn world() -> Community {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let ids: Vec<_> = (0..9)
            .map(|i| c.add_agent(format!("http://persist.example.org/{i}#me")).unwrap())
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            c.set_rating(a, products[i % products.len()], 0.7).unwrap();
            c.trust.set_trust(a, ids[(i + 1) % ids.len()], 1.0).unwrap();
            c.trust.set_trust(a, ids[(i + 4) % ids.len()], 0.5).unwrap();
        }
        c
    }

    #[test]
    fn checkpoint_recover_round_trips_recommendations() {
        let c = world();
        let (model, _) = ShardedModel::partition(
            &c,
            RecommenderConfig::default(),
            Arc::new(HashShardFn),
            3,
            1,
        );
        let root = temp_root("roundtrip");
        let store = ShardedStore::open(&root).unwrap();
        store.checkpoint(&model, 1).unwrap();
        let recovery = store.recover(Arc::new(HashShardFn)).unwrap();
        assert!(!recovery.degraded);
        assert_eq!(recovery.model.agent_count(), model.agent_count());
        for g in 0..model.agent_count() {
            let uri = model.directory().uri(GlobalId(g as u32));
            let want = model.recommend_by_uri(uri, 5).unwrap();
            let got = recovery.model.recommend_by_uri(uri, 5).unwrap();
            assert_eq!(want.len(), got.len(), "list length for {uri}");
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.product, g.product, "product for {uri}");
                assert_eq!(w.score.to_bits(), g.score.to_bits(), "score bits for {uri}");
            }
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_sidecar_tail_is_discarded() {
        let root = temp_root("torn");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("directory.bin");
        let mut w = Writer::new();
        w.put_len(1);
        w.put_u8(0);
        w.put_str("http://a");
        w.put_u32(0);
        write_base(&path, DIRECTORY_MAGIC, w.as_bytes()).unwrap();
        // Append garbage that is too short to be a frame.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[1, 2, 3]).unwrap();
        drop(file);
        let frames = read_frames(&path, DIRECTORY_MAGIC).unwrap();
        assert_eq!(frames.len(), 1, "intact prefix survives a torn tail");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn boundary_fold_applies_ops_in_order() {
        let mut base = Writer::new();
        base.put_len(1);
        base.put_u8(0);
        base.put_str("http://x");
        base.put_len(1);
        base.put_str("http://y");
        base.put_f64(0.5);
        let mut ops = Writer::new();
        ops.put_len(3);
        ops.put_u8(1); // set x→z
        ops.put_str("http://x");
        ops.put_str("http://z");
        ops.put_f64(0.9);
        ops.put_u8(2); // remove x→y
        ops.put_str("http://x");
        ops.put_str("http://y");
        ops.put_u8(1); // set w→y
        ops.put_str("http://w");
        ops.put_str("http://y");
        ops.put_f64(0.3);
        let map = fold_boundary(&[base.as_bytes().to_vec(), ops.as_bytes().to_vec()]).unwrap();
        assert_eq!(map["http://x"], vec![("http://z".to_string(), 0.9)]);
        assert_eq!(map["http://w"], vec![("http://y".to_string(), 0.3)]);
    }
}
