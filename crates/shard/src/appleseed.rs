//! Cross-shard Appleseed: the boundary-frontier exchange protocol.
//!
//! The global Appleseed iteration (see `semrec-trust`) is partitioned by
//! shard ownership. Each round has two phases in lockstep:
//!
//! 1. **Compute** — every shard advances the energy wave over its own
//!    members exactly as the unsharded metric would, walking each node's
//!    precomputed out-star (local and boundary edges merged in global-id
//!    order, so normalization sums are performed in the same floating-point
//!    order as the global graph walk). Energy shares destined for remote
//!    agents are appended to per-destination-shard *frontier buckets*
//!    (`Packet`s) instead of being applied directly. Shards are
//!    independent within a round, so this phase fans out across compute
//!    threads without affecting results.
//! 2. **Exchange** — a single-threaded barrier flushes every bucket:
//!    packets are applied destination shard by destination shard, source
//!    shard by source shard, in append order. Discovery, the node cap, and
//!    distrust penalties behave as in the global metric, with rerouted
//!    energy returned to the source node.
//!
//! The protocol converges when no rank anywhere moved by more than the
//! convergence threshold during a round. With one shard no packet is ever
//! created and the computation is bit-identical to the global metric; with
//! more shards the fixpoint is the same but iteration interleaving differs,
//! so ranks agree to within the convergence threshold (the equivalence
//! property suite pins both statements).

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread;

use semrec_trust::appleseed::AppleseedParams;
use semrec_trust::{AgentId, Result};

use crate::model::{Shard, Target};
use crate::partition::GlobalId;

/// One unit of boundary-frontier traffic: energy (or a distrust penalty)
/// flushed to an agent owned by another shard.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Packet {
    /// Destination agent, as the owning shard's local index.
    dest_local: u32,
    /// Hop distance assigned if this packet discovers the destination.
    distance: u32,
    /// Positive trust energy to deposit into `energy_next`.
    energy: f64,
    /// Terminal distrust penalty to subtract from the rank.
    penalty: f64,
}

/// Per-shard slice of the energy wave.
#[derive(Default)]
struct Wave {
    nodes: Vec<WaveNode>,
    index: HashMap<AgentId, usize>,
}

struct WaveNode {
    local: AgentId,
    distance: u32,
    rank: f64,
    energy_in: f64,
    energy_next: f64,
}

impl Wave {
    fn discover(&mut self, local: AgentId, distance: u32) -> usize {
        let idx = self.nodes.len();
        self.index.insert(local, idx);
        self.nodes.push(WaveNode {
            local,
            distance,
            rank: 0.0,
            energy_in: 0.0,
            energy_next: 0.0,
        });
        idx
    }
}

/// Result of a sharded Appleseed run, keyed by global ordinal.
#[derive(Clone, Debug)]
pub struct ShardedAppleseedResult {
    /// `(agent, rank)` sorted by descending rank (ascending ordinal on
    /// ties), source excluded — the same total order the global metric
    /// produces when ordinals coincide with global `AgentId` indexes.
    pub ranks: Vec<(GlobalId, f64)>,
    /// Rounds until convergence (or the iteration cap).
    pub iterations: usize,
    /// Wave nodes discovered across all shards (including the source).
    pub nodes_discovered: usize,
    /// True if the fixpoint was reached before `max_iterations`.
    pub converged: bool,
    /// Rounds in which at least one frontier packet crossed shards.
    pub exchange_rounds: usize,
}

/// Outcome of one shard's compute phase in one round.
struct ComputeOut {
    max_delta: f64,
    outbox: Vec<Vec<Packet>>,
}

/// Runs the boundary-frontier protocol for `source`.
///
/// `local_of` maps global ordinals to owning-shard local indexes
/// (`u32::MAX` marks an agent no longer present). `schedule` is the order
/// shards are visited in sequential compute (and chunked over `threads`
/// workers when parallel); it must be a permutation of `0..shards.len()`
/// and never affects results.
pub(crate) fn sharded_appleseed(
    shards: &[std::sync::Arc<Shard>],
    local_of: &[u32],
    source: GlobalId,
    source_shard: usize,
    params: &AppleseedParams,
    threads: usize,
    schedule: &[usize],
) -> Result<ShardedAppleseedResult> {
    params.validate()?;
    let n_shards = shards.len();
    let source_local = local_of[source.index()];
    if source_local == u32::MAX {
        return Err(semrec_trust::TrustError::UnknownAgent(source.index()));
    }

    let _span = semrec_obs::span("shard.appleseed.run");
    semrec_obs::counter("shard.appleseed.runs").inc();
    let iterations_counter = semrec_obs::counter("shard.appleseed.iterations");
    let exchange_counter = semrec_obs::counter("shard.exchange.rounds");
    let packets_counter = semrec_obs::counter("shard.frontier.packets");
    let residual_histogram = semrec_obs::histogram("shard.appleseed.residual");
    let frontier_histogram = semrec_obs::histogram("shard.frontier.energy");

    let waves: Vec<Mutex<Wave>> = (0..n_shards).map(|_| Mutex::new(Wave::default())).collect();
    {
        let mut wave = waves[source_shard].lock().unwrap();
        let idx = wave.discover(AgentId::from_index(source_local as usize), 0);
        wave.nodes[idx].energy_in = params.injection;
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut exchange_rounds = 0;
    while iterations < params.max_iterations {
        iterations += 1;
        iterations_counter.inc();

        // Phase 1: per-shard compute, parallel over disjoint waves.
        let mut outs: Vec<Option<ComputeOut>> = (0..n_shards).map(|_| None).collect();
        if threads <= 1 || n_shards == 1 {
            for &s in schedule {
                let mut wave = waves[s].lock().unwrap();
                outs[s] = Some(compute_round(
                    &shards[s],
                    &mut wave,
                    s,
                    source_shard,
                    source_local,
                    params,
                    n_shards,
                ));
            }
        } else {
            let chunk = schedule.len().div_ceil(threads);
            let produced: Vec<Vec<(usize, ComputeOut)>> = thread::scope(|scope| {
                let handles: Vec<_> = schedule
                    .chunks(chunk)
                    .map(|mine| {
                        let waves = &waves;
                        scope.spawn(move || {
                            mine.iter()
                                .map(|&s| {
                                    let mut wave = waves[s].lock().unwrap();
                                    let out = compute_round(
                                        &shards[s],
                                        &mut wave,
                                        s,
                                        source_shard,
                                        source_local,
                                        params,
                                        n_shards,
                                    );
                                    (s, out)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("compute worker")).collect()
            });
            for (s, out) in produced.into_iter().flatten() {
                outs[s] = Some(out);
            }
        }
        let outs: Vec<ComputeOut> = outs.into_iter().map(|o| o.expect("every shard computed")).collect();
        let mut max_delta = outs.iter().fold(0.0f64, |m, o| m.max(o.max_delta));

        // Phase 2: lockstep exchange barrier — single-threaded, shard-index
        // order, packet append order. Deterministic by construction.
        let mut flushed = 0.0;
        let mut packets = 0u64;
        let mut rerouted = 0.0;
        for (dest, wave_slot) in waves.iter().enumerate() {
            let mut wave = wave_slot.lock().unwrap();
            for out in &outs {
                for pkt in &out.outbox[dest] {
                    packets += 1;
                    flushed += pkt.energy + pkt.penalty;
                    let local = AgentId::from_index(pkt.dest_local as usize);
                    let idx = match wave.index.get(&local) {
                        Some(&idx) => Some(idx),
                        None => {
                            if params.max_nodes.is_some_and(|cap| wave.nodes.len() >= cap) {
                                None
                            } else {
                                Some(wave.discover(local, pkt.distance))
                            }
                        }
                    };
                    match idx {
                        Some(idx) => {
                            wave.nodes[idx].energy_next += pkt.energy;
                            if pkt.penalty > 0.0 {
                                wave.nodes[idx].rank -= pkt.penalty;
                                max_delta = max_delta.max(pkt.penalty);
                            }
                        }
                        // Past the destination cap: energy returns to the
                        // source (as in the global metric); penalties on
                        // never-discovered nodes are dropped.
                        None => rerouted += pkt.energy,
                    }
                }
            }
        }
        if rerouted > 0.0 {
            waves[source_shard].lock().unwrap().nodes[0].energy_next += rerouted;
        }
        if packets > 0 {
            exchange_rounds += 1;
            exchange_counter.inc();
            packets_counter.add(packets);
            frontier_histogram.observe(flushed);
        }

        // Fold: next round's energy becomes visible everywhere at once.
        for wave in &waves {
            let mut wave = wave.lock().unwrap();
            for node in &mut wave.nodes {
                node.energy_in += node.energy_next;
                node.energy_next = 0.0;
            }
        }

        residual_histogram.observe(max_delta);
        if max_delta < params.convergence {
            converged = true;
            break;
        }
    }

    let mut nodes_discovered = 0;
    let mut ranks: Vec<(GlobalId, f64)> = Vec::new();
    for (s, wave) in waves.iter().enumerate() {
        let wave = wave.lock().unwrap();
        nodes_discovered += wave.nodes.len();
        for node in &wave.nodes {
            let global = shards[s].globals[node.local.index()];
            if global != source {
                ranks.push((global, node.rank));
            }
        }
    }
    ranks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    semrec_obs::counter("shard.appleseed.nodes_explored").add(nodes_discovered as u64);

    Ok(ShardedAppleseedResult {
        ranks,
        iterations,
        nodes_discovered,
        converged,
        exchange_rounds,
    })
}

/// Advances one shard's wave by one round, mirroring the global Appleseed
/// node loop statement for statement. Shares for remote agents (and energy
/// rerouted to a remote source) become packets in `outbox`.
fn compute_round(
    shard: &Shard,
    wave: &mut Wave,
    me: usize,
    source_shard: usize,
    source_local: u32,
    params: &AppleseedParams,
    n_shards: usize,
) -> ComputeOut {
    let d = params.spreading_factor;
    let power = params.spreading_power;
    let mut outbox: Vec<Vec<Packet>> = (0..n_shards).map(|_| Vec::new()).collect();
    let mut max_delta: f64 = 0.0;

    let count = wave.nodes.len();
    for i in 0..count {
        let energy = wave.nodes[i].energy_in;
        if energy <= 0.0 {
            continue;
        }
        wave.nodes[i].energy_in = 0.0;

        let kept = (1.0 - d) * energy;
        wave.nodes[i].rank += kept;
        max_delta = max_delta.max(kept);
        let forward = d * energy;

        let local = wave.nodes[i].local;
        let distance = wave.nodes[i].distance;
        let at_range_limit = params.max_range.is_some_and(|r| distance >= r);
        // The source is always the first node discovered in its shard.
        let is_source = me == source_shard && i == 0;
        let star = &shard.outstar[local.index()];

        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        if !at_range_limit {
            for edge in star {
                if edge.weight > 0.0 {
                    pos_sum += edge.weight.powf(power);
                }
            }
            if params.distrust {
                for edge in star {
                    if edge.weight < 0.0 {
                        neg_sum += (-edge.weight).powf(power);
                    }
                }
            }
        }
        let backward = if is_source { 0.0 } else { params.backward_weight };
        let total_weight = pos_sum + neg_sum + backward;
        if total_weight <= 0.0 {
            continue;
        }

        if backward > 0.0 {
            let share = forward * backward / total_weight;
            send_to_source(wave, &mut outbox, me, source_shard, source_local, share);
        }
        if !at_range_limit {
            for edge in star {
                if edge.weight > 0.0 {
                    let share = forward * edge.weight.powf(power) / total_weight;
                    match edge.target {
                        Target::Local(succ) => {
                            let idx = match wave.index.get(&succ) {
                                Some(&idx) => idx,
                                None => {
                                    if params
                                        .max_nodes
                                        .is_some_and(|cap| wave.nodes.len() >= cap)
                                    {
                                        send_to_source(
                                            wave,
                                            &mut outbox,
                                            me,
                                            source_shard,
                                            source_local,
                                            share,
                                        );
                                        continue;
                                    }
                                    wave.discover(succ, distance + 1)
                                }
                            };
                            wave.nodes[idx].energy_next += share;
                        }
                        Target::Remote { shard: dest, local: dest_local } => {
                            outbox[dest as usize].push(Packet {
                                dest_local,
                                distance: distance + 1,
                                energy: share,
                                penalty: 0.0,
                            });
                        }
                    }
                }
            }
            if params.distrust {
                for edge in star {
                    if edge.weight < 0.0 {
                        let share = forward * (-edge.weight).powf(power) / total_weight;
                        match edge.target {
                            Target::Local(succ) => {
                                let idx = match wave.index.get(&succ) {
                                    Some(&idx) => Some(idx),
                                    None => {
                                        if params
                                            .max_nodes
                                            .is_some_and(|cap| wave.nodes.len() >= cap)
                                        {
                                            None
                                        } else {
                                            Some(wave.discover(succ, distance + 1))
                                        }
                                    }
                                };
                                if let Some(idx) = idx {
                                    wave.nodes[idx].rank -= share;
                                    max_delta = max_delta.max(share);
                                }
                            }
                            Target::Remote { shard: dest, local: dest_local } => {
                                outbox[dest as usize].push(Packet {
                                    dest_local,
                                    distance: distance + 1,
                                    energy: 0.0,
                                    penalty: share,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    ComputeOut { max_delta, outbox }
}

/// Deposits rerouted or backward energy at the source node: directly when
/// the source is local, as a frontier packet otherwise. The source is
/// discovered (node 0 of its shard's wave) before the first round, so the
/// packet always resolves through the destination wave index.
fn send_to_source(
    wave: &mut Wave,
    outbox: &mut [Vec<Packet>],
    me: usize,
    source_shard: usize,
    source_local: u32,
    share: f64,
) {
    if me == source_shard {
        wave.nodes[0].energy_next += share;
    } else {
        outbox[source_shard].push(Packet {
            dest_local: source_local,
            distance: 0,
            energy: share,
            penalty: 0.0,
        });
    }
}
