//! # semrec-shard — the partitioned agent universe
//!
//! Scaling the Ziegler (EDBT 2004) recommender past what one model can
//! hold: agents are partitioned into N shards by a pluggable [`ShardFn`],
//! each shard owning its own trust subgraph, ratings, materialized
//! profiles, and `semrec-store` snapshot/WAL generation. The paper's
//! decentralized framing — agent data scattered across machine-readable
//! homepages, merged by whoever computes — maps directly onto shards as
//! the unit of distribution.
//!
//! The load-bearing piece is **cross-shard Appleseed**
//! ([`mod@crate::appleseed`]): spreading activation runs locally per
//! shard, energy crossing a shard boundary accumulates into per-edge
//! frontier packets, and lockstep exchange rounds flush those packets
//! until the global residual converges. The protocol is deterministic
//! across shard counts, compute-thread counts, and shard scheduling
//! order — and at N=1 it degenerates to the exact global algorithm,
//! byte for byte.
//!
//! * [`ShardedModel`] — partition, serve, and incrementally advance
//! * [`ShardedServeCache`] — per-shard epoch-aware serve cache carry-over
//! * [`ShardedStore`] — per-shard durable snapshots + WAL + sidecars

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appleseed;
pub mod cache;
pub mod model;
pub mod partition;
pub mod persist;

pub use appleseed::ShardedAppleseedResult;
pub use cache::ShardedServeCache;
pub use model::{Shard, ShardBuildReport, ShardedAdvanceReport, ShardedModel};
pub use partition::{cut_edges, CommunityShardFn, Directory, GlobalId, HashShardFn, ShardFn};
pub use persist::{ShardedRecovery, ShardedStore};
