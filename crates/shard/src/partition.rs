//! Agent-universe partitioning: global ordinals, the shard directory, and
//! pluggable partitioning functions.
//!
//! Every agent in the sharded universe is identified by a [`GlobalId`] —
//! its ordinal in the [`Directory`], assigned in global registration order
//! at partition time. Shard-local `AgentId`s are an implementation detail
//! (they may even be renumbered by a persistence round-trip); all
//! cross-shard protocol state and every externally visible ranking is
//! keyed by the stable global ordinal.

use std::collections::HashMap;

use semrec_core::Community;
use semrec_store::codec::fnv1a64;

/// Stable global ordinal of an agent in the sharded universe.
///
/// At partition time this equals the global community's `AgentId` index,
/// which is what makes the N=1 sharded pipeline byte-identical to the
/// unsharded one (identical tie-break order everywhere an `AgentId`
/// comparison decides between equal scores).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The ordinal as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The global agent directory: URI and owning shard per [`GlobalId`].
#[derive(Clone, Debug, Default)]
pub struct Directory {
    uris: Vec<String>,
    shard_of: Vec<u32>,
    by_uri: HashMap<String, u32>,
}

impl Directory {
    /// Builds a directory from `(uri, shard)` pairs in global-ordinal order.
    pub fn from_assignments(entries: impl IntoIterator<Item = (String, u32)>) -> Directory {
        let mut directory = Directory::default();
        for (uri, shard) in entries {
            directory.push(uri, shard);
        }
        directory
    }

    /// Appends one agent, returning its new ordinal.
    pub fn push(&mut self, uri: String, shard: u32) -> GlobalId {
        let ordinal = self.uris.len() as u32;
        self.by_uri.insert(uri.clone(), ordinal);
        self.uris.push(uri);
        self.shard_of.push(shard);
        GlobalId(ordinal)
    }

    /// Number of agents in the universe.
    pub fn len(&self) -> usize {
        self.uris.len()
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.uris.is_empty()
    }

    /// The URI of a global ordinal.
    pub fn uri(&self, id: GlobalId) -> &str {
        &self.uris[id.index()]
    }

    /// The shard owning a global ordinal.
    pub fn shard_of(&self, id: GlobalId) -> u32 {
        self.shard_of[id.index()]
    }

    /// Looks up an agent by URI.
    pub fn by_uri(&self, uri: &str) -> Option<GlobalId> {
        self.by_uri.get(uri).copied().map(GlobalId)
    }

    /// Iterates `(ordinal, uri, shard)` in ordinal order.
    pub fn iter(&self) -> impl Iterator<Item = (GlobalId, &str, u32)> {
        self.uris
            .iter()
            .zip(&self.shard_of)
            .enumerate()
            .map(|(i, (uri, &shard))| (GlobalId(i as u32), uri.as_str(), shard))
    }
}

/// A pluggable agent-to-shard assignment.
///
/// `partition` assigns every agent of a community at once (and may inspect
/// the trust graph); `route` must place an agent it has never seen — it is
/// used for delta-added agents and need not agree with `partition` for
/// graph-aware implementations.
pub trait ShardFn: Send + Sync {
    /// Short identifier for reports and metrics.
    fn name(&self) -> &'static str;

    /// Assigns each agent (by global id index) to a shard in `0..shards`.
    fn partition(&self, community: &Community, shards: usize) -> Vec<u32>;

    /// Routes a single URI (e.g. a delta-added agent) to a shard.
    fn route(&self, uri: &str, shards: usize) -> u32;
}

/// Stateless FNV-1a hash partitioning — the default.
///
/// Placement depends only on the agent URI, so `route` and `partition`
/// always agree and a re-partition at the same shard count is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashShardFn;

impl ShardFn for HashShardFn {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, community: &Community, shards: usize) -> Vec<u32> {
        community
            .agents()
            .map(|a| {
                let uri = &community.agent(a).expect("dense agent ids").uri;
                self.route(uri, shards)
            })
            .collect()
    }

    fn route(&self, uri: &str, shards: usize) -> u32 {
        (fnv1a64(uri.as_bytes()) % shards.max(1) as u64) as u32
    }
}

/// Community-aware partitioning: greedy label refinement over the trust
/// graph, starting from the hash assignment.
///
/// Each pass visits agents in id order and moves an agent to the shard
/// holding the plurality of its trust neighbors (outgoing trustees plus
/// incoming trusters), subject to a balance cap of
/// `ceil(n / shards) · slack`. Ties prefer the lowest shard index, then
/// the current assignment. The process is deterministic: no randomness,
/// fixed visit order, fixed pass count.
#[derive(Clone, Copy, Debug)]
pub struct CommunityShardFn {
    /// Refinement passes over the whole community (default 3).
    pub passes: usize,
    /// Balance slack multiplier ≥ 1.0 (default 1.15).
    pub slack: f64,
}

impl Default for CommunityShardFn {
    fn default() -> Self {
        CommunityShardFn { passes: 3, slack: 1.15 }
    }
}

impl ShardFn for CommunityShardFn {
    fn name(&self) -> &'static str {
        "community"
    }

    fn partition(&self, community: &Community, shards: usize) -> Vec<u32> {
        let mut assignment = HashShardFn.partition(community, shards);
        if shards <= 1 {
            return assignment;
        }
        let n = assignment.len();
        let cap = ((n.div_ceil(shards)) as f64 * self.slack.max(1.0)).ceil() as usize;
        let mut sizes = vec![0usize; shards];
        for &s in &assignment {
            sizes[s as usize] += 1;
        }
        let mut affinity = vec![0usize; shards];
        for _ in 0..self.passes {
            let mut moved = false;
            for agent in community.agents() {
                affinity.iter_mut().for_each(|c| *c = 0);
                for &(trustee, _) in community.trust.out_edges(agent) {
                    affinity[assignment[trustee.index()] as usize] += 1;
                }
                for &truster in community.trust.trusters_of(agent) {
                    affinity[assignment[truster.index()] as usize] += 1;
                }
                let current = assignment[agent.index()] as usize;
                let mut best = current;
                for (shard, &count) in affinity.iter().enumerate() {
                    if shard == current {
                        continue;
                    }
                    // Strictly better affinity and room under the cap; on
                    // equal affinity the lower shard index wins over a
                    // higher candidate but never displaces `current`.
                    let beats = count > affinity[best]
                        || (count == affinity[best] && best != current && shard < best);
                    if beats && sizes[shard] < cap {
                        best = shard;
                    }
                }
                if best != current && affinity[best] > affinity[current] {
                    sizes[current] -= 1;
                    sizes[best] += 1;
                    assignment[agent.index()] = best as u32;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assignment
    }

    fn route(&self, uri: &str, shards: usize) -> u32 {
        HashShardFn.route(uri, shards)
    }
}

/// Counts edges whose endpoints live on different shards.
pub fn cut_edges(community: &Community, assignment: &[u32]) -> (usize, usize) {
    let mut cut = 0;
    let mut total = 0;
    for agent in community.agents() {
        for &(trustee, _) in community.trust.out_edges(agent) {
            total += 1;
            if assignment[agent.index()] != assignment[trustee.index()] {
                cut += 1;
            }
        }
    }
    (cut, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::example1;

    fn community(n: usize) -> Community {
        let e = example1();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        for i in 0..n {
            c.add_agent(format!("http://agents.example.org/{i}#me")).unwrap();
        }
        c
    }

    #[test]
    fn hash_routes_and_partitions_agree() {
        let c = community(64);
        let assignment = HashShardFn.partition(&c, 4);
        for a in c.agents() {
            let uri = &c.agent(a).unwrap().uri;
            assert_eq!(assignment[a.index()], HashShardFn.route(uri, 4));
        }
        assert!(assignment.iter().any(|&s| s != assignment[0]), "4 shards must be used");
    }

    #[test]
    fn single_shard_puts_everyone_on_zero() {
        let c = community(10);
        assert!(HashShardFn.partition(&c, 1).iter().all(|&s| s == 0));
    }

    #[test]
    fn community_fn_reduces_cut_on_clustered_graph() {
        // Two 16-agent cliques joined by one bridge edge.
        let mut c = community(32);
        let ids: Vec<_> = c.agents().collect();
        for block in 0..2 {
            let base = block * 16;
            for i in 0..16usize {
                let t = (i + 1) % 16;
                c.trust.set_trust(ids[base + i], ids[base + t], 1.0).unwrap();
                let t2 = (i + 5) % 16;
                c.trust.set_trust(ids[base + i], ids[base + t2], 0.8).unwrap();
            }
        }
        c.trust.set_trust(ids[0], ids[16], 0.5).unwrap();
        let hash = HashShardFn.partition(&c, 2);
        let refined = CommunityShardFn::default().partition(&c, 2);
        let (hash_cut, total) = cut_edges(&c, &hash);
        let (refined_cut, _) = cut_edges(&c, &refined);
        assert!(total > 0);
        assert!(
            refined_cut <= hash_cut,
            "refinement must not worsen the cut ({refined_cut} vs {hash_cut})"
        );
    }

    #[test]
    fn community_fn_is_deterministic() {
        let mut c = community(40);
        let ids: Vec<_> = c.agents().collect();
        for i in 0..40usize {
            c.trust.set_trust(ids[i], ids[(i * 7 + 3) % 40], 0.9).unwrap();
        }
        let a = CommunityShardFn::default().partition(&c, 4);
        let b = CommunityShardFn::default().partition(&c, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn directory_round_trips_lookups() {
        let mut d = Directory::default();
        let a = d.push("http://a".into(), 1);
        let b = d.push("http://b".into(), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.uri(a), "http://a");
        assert_eq!(d.shard_of(b), 0);
        assert_eq!(d.by_uri("http://b"), Some(b));
        assert_eq!(d.by_uri("http://c"), None);
        assert_eq!(d.iter().count(), 2);
    }
}
