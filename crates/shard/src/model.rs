//! The sharded model: per-shard communities, profiles, and the
//! recommendation pipeline over the partitioned universe.
//!
//! A [`ShardedModel`] is the sharded counterpart of `semrec-core`'s
//! `SharedModel`: every agent lives on exactly one shard, which owns its
//! ratings, its outgoing trust statements, and its materialized taxonomy
//! profile. Trust spreading runs through the cross-shard protocol in
//! [`crate::appleseed`]; the rest of the pipeline (normalization, rank
//! synthesization, voting, novelty filtering) mirrors the unsharded engine
//! statement for statement, keyed by stable [`GlobalId`] ordinals so that
//! a single-shard model is byte-identical to the unsharded one.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use semrec_core::recommend::novel_only;
use semrec_core::synthesis::{synthesize, PeerScores};
use semrec_core::{
    AdvanceStats, AgentId, Community, ModelDelta, ProductId, ProfileStore, Recommendation,
    RecommenderConfig, Result,
};
use semrec_profiles::ProfileView;
use semrec_trust::TrustError;

use crate::appleseed::{sharded_appleseed, ShardedAppleseedResult};
use crate::partition::{cut_edges, Directory, GlobalId, ShardFn};

/// Where an out-star edge lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Target {
    /// The trustee lives on the same shard.
    Local(AgentId),
    /// The trustee lives on another shard (a *boundary* edge).
    Remote {
        /// Owning shard index.
        shard: u32,
        /// The trustee's local index on that shard.
        local: u32,
    },
}

/// One outgoing trust statement in a shard's merged out-star.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StarEdge {
    /// The trustee's global ordinal (edges are sorted by this).
    pub global: GlobalId,
    /// Signed trust weight.
    pub weight: f64,
    /// Resolved destination.
    pub target: Target,
}

/// One partition of the agent universe: a fully self-contained local model
/// plus the boundary edges that connect it to the rest of the universe.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Local community: member agents, their ratings, and trust statements
    /// between members. Cross-shard statements live only in the out-star.
    pub(crate) community: Community,
    /// Materialized profiles of the members, in local agent-id order.
    pub(crate) profiles: ProfileStore,
    /// Local index → global ordinal.
    pub(crate) globals: Vec<GlobalId>,
    /// Per-member merged out-star (local + boundary), sorted by global
    /// ordinal — the same edge order the global trust graph iterates.
    pub(crate) outstar: Vec<Vec<StarEdge>>,
    /// Number of boundary (cross-shard) edges in the out-star.
    pub(crate) boundary_out: usize,
    /// Bumped whenever the shard's model content is rebuilt.
    pub(crate) model_epoch: u64,
    /// Bumped whenever results served *from* this shard may change (its
    /// own content, or content within trust range on other shards).
    pub(crate) serve_epoch: u64,
}

impl Shard {
    /// The shard's local community.
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// The shard's profile store.
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// True when the shard owns no agents.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Global ordinals of the members, in local-id order.
    pub fn globals(&self) -> &[GlobalId] {
        &self.globals
    }

    /// Boundary out-edge count.
    pub fn boundary_out_edges(&self) -> usize {
        self.boundary_out
    }

    /// Model generation of this shard.
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch
    }

    /// Serve generation of this shard (see [`crate::cache`]).
    pub fn serve_epoch(&self) -> u64 {
        self.serve_epoch
    }
}

/// Timing and layout report of a full partition build.
#[derive(Clone, Debug)]
pub struct ShardBuildReport {
    /// Name of the [`ShardFn`] used.
    pub shard_fn: &'static str,
    /// Members per shard.
    pub sizes: Vec<usize>,
    /// Trust edges crossing shard boundaries.
    pub cut_edges: usize,
    /// All trust edges.
    pub total_edges: usize,
    /// Per-shard build time (community assembly + profiles + out-star).
    pub per_shard: Vec<Duration>,
    /// Wall-clock for the whole build on this machine.
    pub total: Duration,
}

impl ShardBuildReport {
    /// The modeled distributed wall-clock: the slowest single shard. With
    /// one node per shard this is what a fleet would observe, since
    /// per-shard builds are independent.
    pub fn critical_path(&self) -> Duration {
        self.per_shard.iter().max().copied().unwrap_or_default()
    }

    /// Fraction of trust edges crossing shards.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            return 0.0;
        }
        self.cut_edges as f64 / self.total_edges as f64
    }
}

/// Report of an incremental [`ShardedModel::advance`].
#[derive(Clone, Debug)]
pub struct ShardedAdvanceReport {
    /// True when membership changed and the whole universe was repartitioned.
    pub wholesale: bool,
    /// Shard indexes whose model content was rebuilt.
    pub rebuilt: Vec<usize>,
    /// Shard indexes whose serve epoch advanced (superset of `rebuilt`).
    pub serve_dirty: Vec<usize>,
    /// Per-shard refresh time (zero for untouched shards).
    pub per_shard: Vec<Duration>,
    /// Profiles recomputed across all rebuilt shards.
    pub profiles_recomputed: usize,
    /// Profiles carried by `Arc` clone across all rebuilt shards.
    pub profiles_reused: usize,
    /// Wall-clock of the whole advance on this machine.
    pub total: Duration,
}

impl ShardedAdvanceReport {
    /// The modeled distributed refresh wall-clock (slowest dirty shard).
    pub fn critical_path(&self) -> Duration {
        self.per_shard.iter().max().copied().unwrap_or_default()
    }
}

/// The partitioned agent universe.
#[derive(Clone)]
pub struct ShardedModel {
    shards: Vec<Arc<Shard>>,
    directory: Directory,
    /// Global ordinal → local index on the owning shard (`u32::MAX` for
    /// agents that have been removed from the universe).
    local_of: Vec<u32>,
    config: RecommenderConfig,
    shard_fn: Arc<dyn ShardFn>,
    threads: usize,
    schedule: Vec<usize>,
}

impl std::fmt::Debug for ShardedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedModel")
            .field("shards", &self.shards.len())
            .field("agents", &self.directory.len())
            .field("shard_fn", &self.shard_fn.name())
            .field("threads", &self.threads)
            .finish()
    }
}

impl ShardedModel {
    /// Partitions a global community into `shards` shards and builds every
    /// per-shard model. Per-shard builds fan out over `threads` workers;
    /// the result is byte-identical for any thread count.
    pub fn partition(
        community: &Community,
        config: RecommenderConfig,
        shard_fn: Arc<dyn ShardFn>,
        shards: usize,
        threads: usize,
    ) -> (ShardedModel, ShardBuildReport) {
        assert!(shards >= 1, "at least one shard");
        let started = Instant::now();
        let _span = semrec_obs::span("shard.rebuild");

        let assignment = shard_fn.partition(community, shards);
        let (directory, local_of, members) = index_assignment(community, &assignment, shards);
        let (cut, total_edges) = cut_edges(community, &assignment);

        let dirty = HashSet::new();
        let built = fan_out_build(
            community,
            &assignment,
            &local_of,
            &members,
            &[],
            &dirty,
            &config,
            threads,
            &(0..shards).collect::<Vec<_>>(),
        );

        let mut shard_arcs = Vec::with_capacity(shards);
        let mut per_shard = Vec::with_capacity(shards);
        let mut sizes = Vec::with_capacity(shards);
        for (i, (shard, stats, elapsed)) in built.into_iter().enumerate() {
            semrec_obs::counter(&format!("shard.{i}.profiles.recomputed"))
                .add(stats.recomputed as u64);
            semrec_obs::counter(&format!("shard.{i}.profiles.reused")).add(stats.reused as u64);
            semrec_obs::histogram(&format!("shard.{i}.rebuild")).observe(elapsed.as_secs_f64());
            sizes.push(shard.len());
            per_shard.push(elapsed);
            shard_arcs.push(Arc::new(shard));
        }
        semrec_obs::gauge("shard.count").set(shards as f64);
        semrec_obs::gauge("shard.partition.cut_fraction").set(if total_edges == 0 {
            0.0
        } else {
            cut as f64 / total_edges as f64
        });

        let report = ShardBuildReport {
            shard_fn: shard_fn.name(),
            sizes,
            cut_edges: cut,
            total_edges,
            per_shard,
            total: started.elapsed(),
        };
        let model = ShardedModel {
            shards: shard_arcs,
            directory,
            local_of,
            config,
            shard_fn,
            threads,
            schedule: (0..shards).collect(),
        };
        (model, report)
    }

    /// Reassembles a model from already-built shards (used by persistence
    /// recovery). The caller guarantees `local_of` and every shard's
    /// out-star are consistent with the directory.
    pub(crate) fn from_shards(
        shards: Vec<Arc<Shard>>,
        directory: Directory,
        local_of: Vec<u32>,
        config: RecommenderConfig,
        shard_fn: Arc<dyn ShardFn>,
    ) -> ShardedModel {
        let n = shards.len();
        ShardedModel {
            shards,
            directory,
            local_of,
            config,
            shard_fn,
            threads: 1,
            schedule: (0..n).collect(),
        }
    }

    /// Sets the compute-thread fan-out for per-shard work (builds, the
    /// cross-shard protocol's compute phase, batch serving). Results are
    /// byte-identical for any value.
    pub fn with_threads(mut self, threads: usize) -> ShardedModel {
        self.threads = threads.max(1);
        self
    }

    /// Sets the order shards are visited by sequential compute phases and
    /// chunked over parallel workers. Must be a permutation of
    /// `0..shards`; results are byte-identical for any permutation.
    pub fn with_schedule(mut self, schedule: Vec<usize>) -> ShardedModel {
        let mut seen = vec![false; self.shards.len()];
        assert_eq!(schedule.len(), self.shards.len(), "schedule must cover every shard");
        for &s in &schedule {
            assert!(s < self.shards.len() && !seen[s], "schedule must be a permutation");
            seen[s] = true;
        }
        self.schedule = schedule;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of agents in the universe.
    pub fn agent_count(&self) -> usize {
        self.directory.len()
    }

    /// A shard by index.
    pub fn shard(&self, index: usize) -> &Arc<Shard> {
        &self.shards[index]
    }

    /// The global directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The active configuration.
    pub fn config(&self) -> &RecommenderConfig {
        &self.config
    }

    /// The partitioning function.
    pub fn shard_fn(&self) -> &Arc<dyn ShardFn> {
        &self.shard_fn
    }

    /// Looks up an agent by URI.
    pub fn agent_by_uri(&self, uri: &str) -> Option<GlobalId> {
        self.directory.by_uri(uri)
    }

    /// Resolves a global ordinal to its owning shard and local id.
    fn locate(&self, agent: GlobalId) -> Result<(usize, AgentId)> {
        if agent.index() >= self.local_of.len() || self.local_of[agent.index()] == u32::MAX {
            return Err(TrustError::UnknownAgent(agent.index()).into());
        }
        let shard = self.directory.shard_of(agent) as usize;
        Ok((shard, AgentId::from_index(self.local_of[agent.index()] as usize)))
    }

    /// The materialized profile of an agent.
    pub fn profile_of(&self, agent: GlobalId) -> Result<ProfileView<'_>> {
        let (shard, local) = self.locate(agent)?;
        Ok(self.shards[shard].profiles.profile(local))
    }

    /// Runs the cross-shard trust metric for `source` with the model's
    /// neighborhood parameters (see [`crate::appleseed`]).
    pub fn trust_ranks(&self, source: GlobalId) -> Result<ShardedAppleseedResult> {
        let (source_shard, _) = self.locate(source)?;
        let result = sharded_appleseed(
            &self.shards,
            &self.local_of,
            source,
            source_shard,
            &self.config.neighborhood.appleseed,
            self.threads,
            &self.schedule,
        )?;
        Ok(result)
    }

    /// Synthesized `(peer, weight)` ranking for a target — the sharded
    /// counterpart of the engine's `peer_weights`.
    pub fn peer_weights(&self, target: GlobalId) -> Result<Vec<(GlobalId, f64)>> {
        let ranks = self.trust_ranks(target)?;
        let nb = &self.config.neighborhood;
        let peers: Vec<(GlobalId, f64)> = ranks
            .ranks
            .iter()
            .copied()
            .filter(|&(_, r)| r > nb.min_rank)
            .take(nb.max_peers)
            .collect();
        // Normalize exactly as TrustNeighborhood::normalized does.
        let max = peers.first().map_or(0.0, |&(_, r)| r);
        let normalized: Vec<(GlobalId, f64)> = if max <= 0.0 {
            peers
        } else {
            peers.iter().map(|&(p, r)| (p, (r / max).max(0.0))).collect()
        };
        let target_profile = self.profile_of(target)?;
        let scores: Vec<PeerScores> = normalized
            .into_iter()
            .map(|(peer, trust)| {
                let (shard, local) = self.locate(peer).expect("ranked peers exist");
                PeerScores {
                    // The global ordinal doubles as the tie-break id so the
                    // synthesized order matches the unsharded engine.
                    agent: AgentId::from_index(peer.index()),
                    trust,
                    similarity: self
                        .config
                        .similarity
                        .apply(target_profile, self.shards[shard].profiles.profile(local)),
                }
            })
            .collect();
        Ok(synthesize(self.config.synthesis, &scores)
            .into_iter()
            .map(|(agent, weight)| (GlobalId(agent.index() as u32), weight))
            .collect())
    }

    /// Produces the top-`n` recommendations for a target agent.
    pub fn recommend(&self, target: GlobalId, n: usize) -> Result<Vec<Recommendation>> {
        semrec_obs::counter("shard.serve.requests").inc();
        let weighted = self.peer_weights(target)?;
        let (target_shard, target_local) = self.locate(target)?;
        let shard = &self.shards[target_shard];
        let mut recs = self.sharded_vote(target_shard, target_local, &weighted);
        if self.config.novel_categories_only {
            recs = novel_only(&shard.community, shard.profiles.profile(target_local), recs);
        }
        recs.truncate(n);
        Ok(recs)
    }

    /// [`ShardedModel::recommend`] addressed by agent URI.
    pub fn recommend_by_uri(&self, uri: &str, n: usize) -> Result<Vec<Recommendation>> {
        let target = self
            .agent_by_uri(uri)
            .ok_or_else(|| semrec_core::CoreError::from(TrustError::UnknownAgent(usize::MAX)))?;
        self.recommend(target, n)
    }

    /// Recommends for many targets, fanning the independent queries out
    /// over the model's compute threads. Results are in `targets` order and
    /// byte-identical for any thread count.
    pub fn recommend_batch(
        &self,
        targets: &[GlobalId],
        n: usize,
    ) -> Vec<Result<Vec<Recommendation>>> {
        semrec_obs::counter("shard.batch.tasks").add(targets.len() as u64);
        if self.threads <= 1 || targets.len() <= 1 {
            return targets.iter().map(|&t| self.recommend(t, n)).collect();
        }
        let chunk = targets.len().div_ceil(self.threads);
        thread::scope(|scope| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk.iter().map(|&t| self.recommend(t, n)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker"))
                .collect()
        })
    }

    /// The voting stage over sharded ratings — `semrec_core::recommend::vote`
    /// with each peer's ratings looked up on its owning shard.
    fn sharded_vote(
        &self,
        target_shard: usize,
        target_local: AgentId,
        weighted: &[(GlobalId, f64)],
    ) -> Vec<Recommendation> {
        let params = &self.config.voting;
        let target_community = &self.shards[target_shard].community;
        let mut scores: HashMap<ProductId, (f64, usize)> = HashMap::new();
        for &(peer, weight) in weighted {
            if weight <= 0.0 {
                continue;
            }
            let (peer_shard, peer_local) = match self.locate(peer) {
                Ok(at) => at,
                Err(_) => continue,
            };
            for &(product, rating) in self.shards[peer_shard].community.ratings_of(peer_local) {
                if rating <= params.min_rating {
                    continue;
                }
                if target_community.rating(target_local, product).is_some() {
                    continue; // never recommend what the user already rated
                }
                let vote =
                    if params.rating_weighted_votes { weight * rating } else { weight };
                let entry = scores.entry(product).or_insert((0.0, 0));
                entry.0 += vote;
                entry.1 += 1;
            }
        }
        let mut out: Vec<Recommendation> = scores
            .into_iter()
            .filter(|&(_, (_, voters))| voters >= params.min_voters)
            .map(|(product, (score, voters))| Recommendation { product, score, voters })
            .collect();
        out.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap().then(a.product.cmp(&b.product))
        });
        out
    }

    /// Advances the model to the `next` community generation, rebuilding
    /// only the shards the delta dirties. Untouched shards are shared by
    /// `Arc` clone and perform **zero** profile recomputation.
    ///
    /// A membership change (agents added or removed) falls back to a
    /// wholesale repartition, like the unsharded engine's wholesale swap.
    pub fn advance(
        &self,
        next: &Community,
        delta: &ModelDelta,
    ) -> (ShardedModel, ShardedAdvanceReport) {
        let started = Instant::now();
        let _span = semrec_obs::span("shard.refresh");
        let n_shards = self.shards.len();

        if !self.membership_stable(next) {
            semrec_obs::counter("shard.advance.wholesale").inc();
            let (mut model, build) = ShardedModel::partition(
                next,
                self.config,
                Arc::clone(&self.shard_fn),
                n_shards,
                self.threads,
            );
            model.threads = self.threads;
            model.schedule = self.schedule.clone();
            // Every generation counter moves forward: all content may have
            // shifted shards, so no cache entry survives.
            for (i, shard) in model.shards.iter_mut().enumerate() {
                let shard = Arc::get_mut(shard).expect("freshly built shard is unshared");
                shard.model_epoch = self.shards[i].model_epoch + 1;
                shard.serve_epoch = self.shards[i].serve_epoch + 1;
            }
            let report = ShardedAdvanceReport {
                wholesale: true,
                rebuilt: (0..n_shards).collect(),
                serve_dirty: (0..n_shards).collect(),
                per_shard: build.per_shard,
                profiles_recomputed: self.directory.len(),
                profiles_reused: 0,
                total: started.elapsed(),
            };
            return (model, report);
        }

        // Model-dirty shards: those owning an agent the delta touched.
        let mut model_dirty = vec![false; n_shards];
        for uri in delta.ratings_changed.iter().chain(delta.trust_changed.iter()) {
            if let Some(g) = self.directory.by_uri(uri) {
                model_dirty[self.directory.shard_of(g) as usize] = true;
            }
        }
        let dirty_uris: HashSet<&str> =
            delta.ratings_changed.iter().map(String::as_str).collect();

        let rebuilt: Vec<usize> = (0..n_shards).filter(|&s| model_dirty[s]).collect();
        let mut per_shard = vec![Duration::default(); n_shards];
        let mut recomputed = 0;
        let mut reused = 0;
        let mut new_shards: Vec<Arc<Shard>> = Vec::with_capacity(n_shards);
        let assignment: Vec<u32> = (0..self.directory.len())
            .map(|i| self.directory.shard_of(GlobalId(i as u32)))
            .collect();
        for s in 0..n_shards {
            if !model_dirty[s] {
                new_shards.push(Arc::clone(&self.shards[s]));
                continue;
            }
            let shard_started = Instant::now();
            let _shard_span = semrec_obs::span(&format!("shard.{s}.refresh"));
            let (mut shard, stats, _) = build_shard(
                next,
                &assignment,
                &self.local_of,
                &self.shards[s].globals,
                Some(&self.shards[s]),
                &dirty_uris,
                &self.config,
                s as u32,
            );
            shard.model_epoch = self.shards[s].model_epoch + 1;
            shard.serve_epoch = self.shards[s].serve_epoch;
            semrec_obs::counter(&format!("shard.{s}.profiles.recomputed"))
                .add(stats.recomputed as u64);
            semrec_obs::counter(&format!("shard.{s}.profiles.reused")).add(stats.reused as u64);
            recomputed += stats.recomputed;
            reused += stats.reused;
            per_shard[s] = shard_started.elapsed();
            new_shards.push(Arc::new(shard));
        }
        semrec_obs::counter("shard.advance.shards_dirty").add(rebuilt.len() as u64);
        semrec_obs::counter("shard.advance.shards_clean")
            .add((n_shards - rebuilt.len()) as u64);

        // Serve-dirty closure: every shard that can reach a model-dirty
        // shard over boundary edges within the trust horizon — a
        // conservative shard-level superset of the agent-level reverse
        // closure (an h-hop agent path crosses at most h shard boundaries).
        let serve_dirty_flags = serve_dirty_closure(
            &new_shards,
            &model_dirty,
            self.config.neighborhood.appleseed.max_range,
        );
        let serve_dirty: Vec<usize> =
            (0..n_shards).filter(|&s| serve_dirty_flags[s]).collect();
        for &s in &serve_dirty {
            let shard = Arc::make_mut(&mut new_shards[s]);
            shard.serve_epoch = self.shards[s].serve_epoch + 1;
        }

        let model = ShardedModel {
            shards: new_shards,
            directory: self.directory.clone(),
            local_of: self.local_of.clone(),
            config: self.config,
            shard_fn: Arc::clone(&self.shard_fn),
            threads: self.threads,
            schedule: self.schedule.clone(),
        };
        let report = ShardedAdvanceReport {
            wholesale: false,
            rebuilt,
            serve_dirty,
            per_shard,
            profiles_recomputed: recomputed,
            profiles_reused: reused,
            total: started.elapsed(),
        };
        (model, report)
    }

    /// True when `next` has exactly the agents of the directory, in the
    /// same registration order.
    fn membership_stable(&self, next: &Community) -> bool {
        if next.agent_count() != self.directory.len() {
            return false;
        }
        self.directory.iter().all(|(g, uri, _)| {
            next.agent(AgentId::from_index(g.index()))
                .map(|info| info.uri == uri)
                .unwrap_or(false)
        })
    }
}

// Serving layers share the model across worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedModel>();
    assert_send_sync::<Arc<Shard>>();
};

/// Builds the directory, the global→local map, and per-shard member lists
/// from an assignment.
fn index_assignment(
    community: &Community,
    assignment: &[u32],
    shards: usize,
) -> (Directory, Vec<u32>, Vec<Vec<GlobalId>>) {
    let mut directory = Directory::default();
    let mut local_of = vec![u32::MAX; assignment.len()];
    let mut members: Vec<Vec<GlobalId>> = vec![Vec::new(); shards];
    for agent in community.agents() {
        let g = agent.index();
        let shard = assignment[g];
        let uri = community.agent(agent).expect("dense agent ids").uri.clone();
        let global = directory.push(uri, shard);
        local_of[g] = members[shard as usize].len() as u32;
        members[shard as usize].push(global);
    }
    (directory, local_of, members)
}

/// Builds the per-shard models for `order`, fanning out over `threads`.
/// Returns `(shard, profile stats, elapsed)` in shard-index order.
#[allow(clippy::too_many_arguments)]
fn fan_out_build(
    global: &Community,
    assignment: &[u32],
    local_of: &[u32],
    members: &[Vec<GlobalId>],
    previous: &[Arc<Shard>],
    dirty: &HashSet<&str>,
    config: &RecommenderConfig,
    threads: usize,
    order: &[usize],
) -> Vec<(Shard, AdvanceStats, Duration)> {
    let build_one = |s: usize| {
        let started = Instant::now();
        let prev = previous.get(s).map(|arc| arc.as_ref());
        let (shard, stats, _) = build_shard(
            global,
            assignment,
            local_of,
            &members[s],
            prev,
            dirty,
            config,
            s as u32,
        );
        (s, shard, stats, started.elapsed())
    };
    let mut slots: Vec<Option<(Shard, AdvanceStats, Duration)>> =
        (0..members.len()).map(|_| None).collect();
    if threads <= 1 || order.len() == 1 {
        for &s in order {
            let (s, shard, stats, elapsed) = build_one(s);
            slots[s] = Some((shard, stats, elapsed));
        }
    } else {
        let chunk = order.len().div_ceil(threads);
        let produced: Vec<Vec<(usize, Shard, AdvanceStats, Duration)>> = thread::scope(|scope| {
            let handles: Vec<_> = order
                .chunks(chunk)
                .map(|mine| scope.spawn(move || mine.iter().map(|&s| build_one(s)).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("build worker")).collect()
        });
        for (s, shard, stats, elapsed) in produced.into_iter().flatten() {
            slots[s] = Some((shard, stats, elapsed));
        }
    }
    slots.into_iter().map(|slot| slot.expect("every shard built")).collect()
}

/// Derives one shard's local model from the global community.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_shard(
    global: &Community,
    assignment: &[u32],
    local_of: &[u32],
    members: &[GlobalId],
    previous: Option<&Shard>,
    dirty: &HashSet<&str>,
    config: &RecommenderConfig,
    me: u32,
) -> (Shard, AdvanceStats, usize) {
    let mut community = Community::new(global.taxonomy.clone(), global.catalog.clone());
    for &g in members {
        let uri = &global.agent(AgentId::from_index(g.index())).expect("member exists").uri;
        community.add_agent(uri.clone()).expect("unique member URIs");
    }
    let mut outstar: Vec<Vec<StarEdge>> = Vec::with_capacity(members.len());
    let mut boundary_out = 0;
    for (local_idx, &g) in members.iter().enumerate() {
        let global_id = AgentId::from_index(g.index());
        let local_id = AgentId::from_index(local_idx);
        for &(product, rating) in global.ratings_of(global_id) {
            community.set_rating(local_id, product, rating).expect("valid copied rating");
        }
        let mut star = Vec::new();
        for &(trustee, weight) in global.trust.out_edges(global_id) {
            let t = trustee.index();
            let target = if assignment[t] == me {
                let trustee_local = AgentId::from_index(local_of[t] as usize);
                community
                    .trust
                    .set_trust(local_id, trustee_local, weight)
                    .expect("valid copied trust edge");
                Target::Local(trustee_local)
            } else {
                boundary_out += 1;
                Target::Remote { shard: assignment[t], local: local_of[t] }
            };
            star.push(StarEdge { global: GlobalId(t as u32), weight, target });
        }
        outstar.push(star);
    }
    let (profiles, stats) = match previous {
        Some(prev) => prev.profiles.advance(&prev.community, &community, dirty),
        None => {
            let profiles = ProfileStore::build(&community, &config.profile);
            let stats = AdvanceStats { recomputed: members.len(), reused: 0 };
            (profiles, stats)
        }
    };
    let shard = Shard {
        community,
        profiles,
        globals: members.to_vec(),
        outstar,
        boundary_out,
        model_epoch: 0,
        serve_epoch: 0,
    };
    (shard, stats, boundary_out)
}

/// Reverse BFS over the shard boundary graph: which shards can reach a
/// model-dirty shard within `horizon` boundary hops (every shard reaches
/// itself in zero hops)?
fn serve_dirty_closure(
    shards: &[Arc<Shard>],
    model_dirty: &[bool],
    horizon: Option<u32>,
) -> Vec<bool> {
    let n = shards.len();
    // reachers[t] = shards with a boundary edge into t.
    let mut reachers: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (s, shard) in shards.iter().enumerate() {
        for star in &shard.outstar {
            for edge in star {
                if let Target::Remote { shard: t, .. } = edge.target {
                    reachers[t as usize].insert(s);
                }
            }
        }
    }
    let mut dirty: Vec<bool> = model_dirty.to_vec();
    let mut frontier: Vec<usize> = (0..n).filter(|&s| dirty[s]).collect();
    let depth_limit = horizon.map(|h| h as usize).unwrap_or(n);
    let mut depth = 0;
    while !frontier.is_empty() && depth < depth_limit {
        let mut next = Vec::new();
        for &t in &frontier {
            let mut sources: Vec<usize> = reachers[t].iter().copied().collect();
            sources.sort_unstable();
            for s in sources {
                if !dirty[s] {
                    dirty[s] = true;
                    next.push(s);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashShardFn;
    use semrec_taxonomy::fixtures::example1;

    fn world() -> Community {
        let e = example1();
        let products: Vec<ProductId> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let ids: Vec<AgentId> = (0..12)
            .map(|i| c.add_agent(format!("http://shard.example.org/{i}#me")).unwrap())
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            c.set_rating(a, products[i % products.len()], 0.9).unwrap();
            c.trust.set_trust(a, ids[(i + 1) % ids.len()], 1.0).unwrap();
            c.trust.set_trust(a, ids[(i + 5) % ids.len()], 0.6).unwrap();
        }
        c
    }

    #[test]
    fn partition_preserves_every_agent_and_edge() {
        let c = world();
        let (model, report) = ShardedModel::partition(
            &c,
            RecommenderConfig::default(),
            Arc::new(HashShardFn),
            3,
            1,
        );
        assert_eq!(model.agent_count(), 12);
        assert_eq!(report.sizes.iter().sum::<usize>(), 12);
        let total_star: usize =
            (0..3).map(|s| model.shard(s).outstar.iter().map(Vec::len).sum::<usize>()).sum();
        assert_eq!(total_star, report.total_edges);
        let boundary: usize = (0..3).map(|s| model.shard(s).boundary_out_edges()).sum();
        assert_eq!(boundary, report.cut_edges);
    }

    #[test]
    fn outstar_is_sorted_by_global_ordinal() {
        let c = world();
        let (model, _) = ShardedModel::partition(
            &c,
            RecommenderConfig::default(),
            Arc::new(HashShardFn),
            4,
            1,
        );
        for s in 0..4 {
            for star in &model.shard(s).outstar {
                assert!(star.windows(2).all(|w| w[0].global < w[1].global));
            }
        }
    }

    #[test]
    fn recommend_runs_on_every_shard_count() {
        let c = world();
        for shards in [1, 2, 3] {
            let (model, _) = ShardedModel::partition(
                &c,
                RecommenderConfig::default(),
                Arc::new(HashShardFn),
                shards,
                1,
            );
            let recs = model.recommend(GlobalId(0), 5).unwrap();
            assert!(recs.len() <= 5);
        }
    }

    #[test]
    fn empty_delta_advance_shares_every_shard() {
        let c = world();
        let (model, _) = ShardedModel::partition(
            &c,
            RecommenderConfig::default(),
            Arc::new(HashShardFn),
            3,
            1,
        );
        let (next, report) = model.advance(&c, &ModelDelta::default());
        assert!(!report.wholesale);
        assert!(report.rebuilt.is_empty());
        assert_eq!(report.profiles_recomputed, 0);
        for s in 0..3 {
            assert!(Arc::ptr_eq(model.shard(s), next.shard(s)));
        }
    }
}
