//! Vocabularies used by the recommender infrastructure.
//!
//! Besides the W3C core namespaces this module defines the two small extension
//! vocabularies the paper's deployment story needs (§3.1, §4):
//!
//! * [`trust`] — Golbeck-style trust statements layered on FOAF: a
//!   `trust:trusts` reification carrying a continuous value in `[-1, +1]`.
//! * [`rec`] — product rating statements (BLAM!-style machine-readable weblog
//!   ratings): `rec:rates` reifications with a value in `[-1, +1]`, products
//!   identified by `urn:isbn:` URIs or shop catalog IRIs.

use crate::model::Iri;

macro_rules! vocabulary {
    ($(#[$meta:meta])* $name:ident, $ns:literal, { $($(#[$tmeta:meta])* $term:ident => $local:literal),+ $(,)? }) => {
        $(#[$meta])*
        pub mod $name {
            use super::Iri;

            /// The namespace IRI string.
            pub const NS: &str = $ns;

            $(
                $(#[$tmeta])*
                pub fn $term() -> Iri {
                    Iri::new_unchecked(concat!($ns, $local))
                }
            )+
        }
    };
}

vocabulary!(
    /// The RDF core namespace.
    rdf, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", {
        /// `rdf:type`.
        type_ => "type",
        /// `rdf:langString` (datatype of language-tagged literals).
        lang_string => "langString",
        /// `rdf:value`.
        value => "value",
    }
);

vocabulary!(
    /// The RDF Schema namespace.
    rdfs, "http://www.w3.org/2000/01/rdf-schema#", {
        /// `rdfs:label`.
        label => "label",
        /// `rdfs:subClassOf` — used to publish taxonomy edges.
        sub_class_of => "subClassOf",
        /// `rdfs:seeAlso` — used to link homepages for crawling.
        see_also => "seeAlso",
    }
);

vocabulary!(
    /// XML Schema datatypes.
    xsd, "http://www.w3.org/2001/XMLSchema#", {
        /// `xsd:string`.
        string => "string",
        /// `xsd:integer`.
        integer => "integer",
        /// `xsd:decimal`.
        decimal => "decimal",
        /// `xsd:double`.
        double => "double",
        /// `xsd:boolean`.
        boolean => "boolean",
    }
);

vocabulary!(
    /// Friend-of-a-Friend: machine-readable homepages and acquaintance links (§4).
    foaf, "http://xmlns.com/foaf/0.1/", {
        /// `foaf:Person`.
        person => "Person",
        /// `foaf:Agent`.
        agent => "Agent",
        /// `foaf:knows` — plain acquaintance edge.
        knows => "knows",
        /// `foaf:name`.
        name => "name",
        /// `foaf:nick`.
        nick => "nick",
        /// `foaf:homepage`.
        homepage => "homepage",
        /// `foaf:weblog`.
        weblog => "weblog",
        /// `foaf:topic_interest`.
        topic_interest => "topic_interest",
    }
);

vocabulary!(
    /// Trust extension to FOAF (Golbeck et al., ref \[4\]): weighted, signed trust.
    trust, "http://example.org/ns/trust#", {
        /// `trust:Statement` — reified trust assertion.
        statement => "Statement",
        /// `trust:truster` — the agent issuing the statement.
        truster => "truster",
        /// `trust:trustee` — the agent being rated.
        trustee => "trustee",
        /// `trust:value` — continuous trust weight in [-1, +1].
        value => "value",
    }
);

vocabulary!(
    /// Product rating vocabulary (BLAM!-style weblog ratings, §4).
    rec, "http://example.org/ns/rec#", {
        /// `rec:Rating` — reified product rating.
        rating => "Rating",
        /// `rec:rater` — the agent issuing the rating.
        rater => "rater",
        /// `rec:product` — the rated product (e.g. a `urn:isbn:` IRI).
        product => "product",
        /// `rec:score` — continuous rating in [-1, +1].
        score => "score",
        /// `rec:Product` — a catalogued product.
        product_class => "Product",
        /// `rec:topic` — descriptor assignment f: product → taxonomy topic.
        topic => "topic",
        /// `rec:Topic` — a taxonomy topic (category).
        topic_class => "Topic",
    }
);

/// Default prefix table used by the Turtle writer.
pub fn default_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", rdf::NS),
        ("rdfs", rdfs::NS),
        ("xsd", xsd::NS),
        ("foaf", foaf::NS),
        ("trust", trust::NS),
        ("rec", rec::NS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_resolve_in_their_namespace() {
        assert_eq!(foaf::knows().as_str(), "http://xmlns.com/foaf/0.1/knows");
        assert_eq!(rdf::type_().as_str(), "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        assert_eq!(trust::value().as_str(), "http://example.org/ns/trust#value");
        assert_eq!(rec::score().as_str(), "http://example.org/ns/rec#score");
    }

    #[test]
    fn default_prefix_table_is_consistent() {
        let prefixes = default_prefixes();
        assert_eq!(prefixes.len(), 6);
        for (p, ns) in prefixes {
            assert!(!p.is_empty());
            assert!(ns.ends_with('#') || ns.ends_with('/'));
        }
    }
}
