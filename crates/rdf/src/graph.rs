//! An indexed, in-memory RDF graph.
//!
//! Terms are interned into dense `u32` identifiers; triples are stored as
//! integer tuples inside three B-tree indexes (SPO, POS, OSP) so that every
//! basic graph pattern with at least one bound position is answered by a
//! range scan, never a full scan with string comparisons.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::model::{Iri, Subject, Term, Triple};

/// Interned term identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct TermId(u32);

/// A pattern position: bound to a term id or a wildcard.
#[derive(Clone, Copy, Debug)]
enum Pos {
    Bound(TermId),
    Any,
}

/// An in-memory RDF graph with set semantics (duplicate inserts are no-ops).
#[derive(Default, Clone)]
pub struct Graph {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("graph exceeds u32 terms"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    fn lookup(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.intern(triple.subject.into());
        let p = self.intern(Term::Iri(triple.predicate));
        let o = self.intern(triple.object);
        let fresh = self.spo.insert((s, p, o));
        if fresh {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        fresh
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.lookup(&Term::from(triple.subject.clone())),
            self.lookup(&Term::Iri(triple.predicate.clone())),
            self.lookup(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// True if the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.lookup(&Term::from(triple.subject.clone())),
            self.lookup(&Term::Iri(triple.predicate.clone())),
            self.lookup(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Inserts every triple from an iterator.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    fn reconstruct(&self, s: TermId, p: TermId, o: TermId) -> Triple {
        let subject = match self.resolve(s) {
            Term::Iri(iri) => Subject::Iri(iri.clone()),
            Term::Blank(b) => Subject::Blank(b.clone()),
            Term::Literal(_) => unreachable!("literal subjects are unrepresentable"),
        };
        let predicate = match self.resolve(p) {
            Term::Iri(iri) => iri.clone(),
            _ => unreachable!("non-IRI predicates are unrepresentable"),
        };
        Triple { subject, predicate, object: self.resolve(o).clone() }
    }

    /// Iterates all triples matching a basic graph pattern; `None` = wildcard.
    ///
    /// The best index for the bound positions is chosen automatically.
    pub fn triples_matching<'a>(
        &'a self,
        subject: Option<&Subject>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let s = match subject {
            Some(s) => match self.lookup(&Term::from(s.clone())) {
                Some(id) => Pos::Bound(id),
                None => return Box::new(std::iter::empty()),
            },
            None => Pos::Any,
        };
        let p = match predicate {
            Some(p) => match self.lookup(&Term::Iri(p.clone())) {
                Some(id) => Pos::Bound(id),
                None => return Box::new(std::iter::empty()),
            },
            None => Pos::Any,
        };
        let o = match object {
            Some(o) => match self.lookup(o) {
                Some(id) => Pos::Bound(id),
                None => return Box::new(std::iter::empty()),
            },
            None => Pos::Any,
        };

        match (s, p, o) {
            // Subject bound: SPO index.
            (Pos::Bound(s), p, o) => Box::new(
                range3(&self.spo, s, p)
                    .filter(move |&(_, tp, to)| matches(p, tp) && matches(o, to))
                    .map(|(a, b, c)| self.reconstruct(a, b, c)),
            ),
            // Predicate bound (subject free): POS index.
            (Pos::Any, Pos::Bound(p), o) => Box::new(
                range3(&self.pos, p, o)
                    .filter(move |&(_, to, _)| matches(o, to))
                    .map(|(b, c, a)| self.reconstruct(a, b, c)),
            ),
            // Only object bound: OSP index.
            (Pos::Any, Pos::Any, Pos::Bound(o)) => Box::new(
                range3(&self.osp, o, Pos::Any).map(|(c, a, b)| self.reconstruct(a, b, c)),
            ),
            // Full scan.
            (Pos::Any, Pos::Any, Pos::Any) => {
                Box::new(self.spo.iter().map(|&(a, b, c)| self.reconstruct(a, b, c)))
            }
        }
    }

    /// Iterates all triples.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(a, b, c)| self.reconstruct(a, b, c))
    }

    /// All distinct subjects, in insertion-interned order.
    pub fn subjects(&self) -> Vec<Subject> {
        let mut seen = BTreeSet::new();
        for &(s, _, _) in &self.spo {
            seen.insert(s);
        }
        seen.iter()
            .map(|&s| match self.resolve(s) {
                Term::Iri(iri) => Subject::Iri(iri.clone()),
                Term::Blank(b) => Subject::Blank(b.clone()),
                Term::Literal(_) => unreachable!(),
            })
            .collect()
    }

    /// First object of `(subject, predicate, ?)`, if any.
    pub fn object_for(&self, subject: &Subject, predicate: &Iri) -> Option<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .next()
            .map(|t| t.object)
    }

    /// All objects of `(subject, predicate, ?)`.
    pub fn objects_for(&self, subject: &Subject, predicate: &Iri) -> Vec<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .map(|t| t.object)
            .collect()
    }

    /// Merges another graph into this one.
    pub fn merge(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(t);
        }
    }
}

fn matches(pos: Pos, id: TermId) -> bool {
    match pos {
        Pos::Bound(want) => want == id,
        Pos::Any => true,
    }
}

/// Range-scan a (first, second, third) index with the first key bound and the
/// second key either bound or free.
fn range3<'a>(
    index: &'a BTreeSet<(TermId, TermId, TermId)>,
    first: TermId,
    second: Pos,
) -> impl Iterator<Item = (TermId, TermId, TermId)> + 'a {
    let (lo, hi) = match second {
        Pos::Bound(second) => (
            Bound::Included((first, second, TermId(0))),
            Bound::Included((first, second, TermId(u32::MAX))),
        ),
        Pos::Any => (
            Bound::Included((first, TermId(0), TermId(0))),
            Bound::Included((first, TermId(u32::MAX), TermId(u32::MAX))),
        ),
    };
    index.range((lo, hi)).copied()
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} triples, {} terms)", self.len(), self.terms.len())
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        let alice = iri("http://ex.org/alice");
        let bob = iri("http://ex.org/bob");
        let carol = iri("http://ex.org/carol");
        let knows = iri("http://ex.org/knows");
        let name = iri("http://ex.org/name");
        g.insert(Triple::new(alice.clone(), knows.clone(), bob.clone()));
        g.insert(Triple::new(alice.clone(), knows.clone(), carol.clone()));
        g.insert(Triple::new(bob.clone(), knows.clone(), carol.clone()));
        g.insert(Triple::new(alice, name, Literal::simple("Alice")));
        g
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = sample();
        assert_eq!(g.len(), 4);
        let t = Triple::new(
            iri("http://ex.org/alice"),
            iri("http://ex.org/knows"),
            iri("http://ex.org/bob"),
        );
        assert!(!g.insert(t.clone()));
        assert_eq!(g.len(), 4);
        assert!(g.contains(&t));
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        let t = Triple::new(
            iri("http://ex.org/alice"),
            iri("http://ex.org/knows"),
            iri("http://ex.org/bob"),
        );
        assert!(g.remove(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 3);
        assert!(!g.contains(&t));
        assert_eq!(
            g.triples_matching(None, Some(&iri("http://ex.org/knows")), None).count(),
            2
        );
    }

    #[test]
    fn pattern_queries_use_every_index_shape() {
        let g = sample();
        let alice: Subject = iri("http://ex.org/alice").into();
        let knows = iri("http://ex.org/knows");
        let carol: Term = iri("http://ex.org/carol").into();

        // s p o
        assert_eq!(g.triples_matching(Some(&alice), Some(&knows), Some(&carol)).count(), 1);
        // s p ?
        assert_eq!(g.triples_matching(Some(&alice), Some(&knows), None).count(), 2);
        // s ? ?
        assert_eq!(g.triples_matching(Some(&alice), None, None).count(), 3);
        // ? p ?
        assert_eq!(g.triples_matching(None, Some(&knows), None).count(), 3);
        // ? p o
        assert_eq!(g.triples_matching(None, Some(&knows), Some(&carol)).count(), 2);
        // ? ? o
        assert_eq!(g.triples_matching(None, None, Some(&carol)).count(), 2);
        // ? ? ?
        assert_eq!(g.triples_matching(None, None, None).count(), 4);
        // s ? o
        assert_eq!(g.triples_matching(Some(&alice), None, Some(&carol)).count(), 1);
    }

    #[test]
    fn unknown_terms_yield_empty_iterators() {
        let g = sample();
        let ghost: Subject = iri("http://ex.org/ghost").into();
        assert_eq!(g.triples_matching(Some(&ghost), None, None).count(), 0);
        assert_eq!(g.triples_matching(None, Some(&iri("http://ex.org/ghost")), None).count(), 0);
    }

    #[test]
    fn object_accessors() {
        let g = sample();
        let alice: Subject = iri("http://ex.org/alice").into();
        let name = iri("http://ex.org/name");
        let knows = iri("http://ex.org/knows");
        assert_eq!(
            g.object_for(&alice, &name),
            Some(Term::Literal(Literal::simple("Alice")))
        );
        assert_eq!(g.objects_for(&alice, &knows).len(), 2);
        assert_eq!(g.object_for(&alice, &iri("http://ex.org/none")), None);
    }

    #[test]
    fn merge_and_equality() {
        let g = sample();
        let mut h = Graph::new();
        h.merge(&g);
        assert_eq!(g, h);
        h.insert(Triple::new(
            iri("http://ex.org/dave"),
            iri("http://ex.org/knows"),
            iri("http://ex.org/alice"),
        ));
        assert_ne!(g, h);
    }

    #[test]
    fn subjects_are_distinct() {
        let g = sample();
        assert_eq!(g.subjects().len(), 2); // alice, bob
    }

    #[test]
    fn from_iterator_collects() {
        let g: Graph = sample().iter().collect();
        assert_eq!(g.len(), 4);
    }
}
