//! A minimal, namespace-aware XML reader — just enough for RDF/XML.
//!
//! Supports: prolog, comments, CDATA, elements with attributes,
//! self-closing tags, character data with the five predefined entities and
//! numeric character references, and `xmlns`/`xmlns:px` namespace scoping.
//! DTDs and processing instructions beyond the prolog are rejected. This is
//! not a general XML library — it exists so [`crate::rdfxml`] can read the
//! FOAF documents of the paper's era.

use std::collections::HashMap;

use crate::error::{RdfError, Result};

/// A parsed element tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Resolved namespace IRI of the element (empty if none).
    pub namespace: String,
    /// Local name.
    pub local: String,
    /// Attributes with resolved namespaces: `((namespace, local), value)`.
    /// `xmlns` declarations are consumed and not listed.
    pub attributes: Vec<((String, String), String)>,
    /// Child content in document order.
    pub children: Vec<Content>,
}

/// Element content: child elements or character data.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// A nested element.
    Element(Element),
    /// Character data (entity references already resolved).
    Text(String),
}

impl Element {
    /// The concatenated immediate text content, trimmed.
    pub fn text(&self) -> String {
        self.raw_text().trim().to_owned()
    }

    /// The concatenated immediate text content, whitespace preserved —
    /// required for RDF literal content, where whitespace is significant.
    pub fn raw_text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Content::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Child elements only.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            Content::Element(e) => Some(e),
            Content::Text(_) => None,
        })
    }

    /// Attribute value by resolved `(namespace, local)` pair.
    pub fn attribute(&self, namespace: &str, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|((ns, l), _)| ns == namespace && l == local)
            .map(|(_, v)| v.as_str())
    }

    /// True if the element has no child elements (text-only or empty).
    pub fn is_leaf(&self) -> bool {
        self.elements().next().is_none()
    }
}

/// Parses a complete XML document into its root element.
pub fn parse(input: &str) -> Result<Element> {
    let mut parser = Parser { input: input.as_bytes(), pos: 0, line: 1 };
    parser.skip_misc()?;
    // The `xml` prefix is predefined by the XML namespaces spec.
    let scope = HashMap::from([(
        "xml".to_owned(),
        "http://www.w3.org/XML/1998/namespace".to_owned(),
    )]);
    let root = parser.element(&scope)?;
    parser.skip_misc()?;
    if !parser.at_end() {
        return Err(parser.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let c = self.input[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax { line: self.line, column: 0, message: message.into() }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip(&mut self, n: usize) {
        for _ in 0..n {
            if !self.at_end() {
                self.bump();
            }
        }
    }

    fn skip_ws(&mut self) {
        while !self.at_end() && self.peek().is_ascii_whitespace() {
            self.bump();
        }
    }

    /// Skips whitespace, the XML prolog, and comments between markup.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                while !self.at_end() && !self.starts_with("?>") {
                    self.bump();
                }
                if self.at_end() {
                    return Err(self.err("unterminated processing instruction"));
                }
                self.skip(2);
            } else if self.starts_with("<!--") {
                self.skip(4);
                while !self.at_end() && !self.starts_with("-->") {
                    self.bump();
                }
                if self.at_end() {
                    return Err(self.err("unterminated comment"));
                }
                self.skip(3);
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DTDs are not supported"));
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while !self.at_end() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn element(&mut self, scope: &HashMap<String, String>) -> Result<Element> {
        if self.at_end() || self.peek() != b'<' {
            return Err(self.err("expected `<`"));
        }
        self.bump();
        let qname = self.name()?;

        // Raw attributes first: xmlns declarations extend the scope.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            if self.at_end() {
                return Err(self.err("unterminated start tag"));
            }
            if self.peek() == b'>' || self.starts_with("/>") {
                break;
            }
            let attr_name = self.name()?;
            self.skip_ws();
            if self.at_end() || self.peek() != b'=' {
                return Err(self.err("expected `=` in attribute"));
            }
            self.bump();
            self.skip_ws();
            let quote = if self.at_end() { 0 } else { self.bump() };
            if quote != b'"' && quote != b'\'' {
                return Err(self.err("expected quoted attribute value"));
            }
            let mut value = String::new();
            loop {
                if self.at_end() {
                    return Err(self.err("unterminated attribute value"));
                }
                let c = self.bump();
                if c == quote {
                    break;
                }
                if c == b'&' {
                    value.push(self.entity()?);
                } else {
                    push_byte(&mut value, c, self)?;
                }
            }
            raw_attrs.push((attr_name, value));
        }

        let mut local_scope = scope.clone();
        for (name, value) in &raw_attrs {
            if name == "xmlns" {
                local_scope.insert(String::new(), value.clone());
            } else if let Some(prefix) = name.strip_prefix("xmlns:") {
                local_scope.insert(prefix.to_owned(), value.clone());
            }
        }

        let (namespace, local) = resolve(&qname, &local_scope, true, self)?;
        let mut attributes = Vec::new();
        for (name, value) in raw_attrs {
            if name == "xmlns" || name.starts_with("xmlns:") {
                continue;
            }
            let (ns, l) = resolve(&name, &local_scope, false, self)?;
            attributes.push(((ns, l), value));
        }

        let mut element = Element { namespace, local, attributes, children: Vec::new() };

        if self.starts_with("/>") {
            self.skip(2);
            return Ok(element);
        }
        self.bump(); // `>`

        // Content until the matching end tag.
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(self.err(format!("unterminated element `{qname}`")));
            }
            if self.starts_with("</") {
                if !text.is_empty() {
                    element.children.push(Content::Text(std::mem::take(&mut text)));
                }
                self.skip(2);
                let end_name = self.name()?;
                if end_name != qname {
                    return Err(self.err(format!(
                        "mismatched end tag: expected `</{qname}>`, found `</{end_name}>`"
                    )));
                }
                self.skip_ws();
                if self.at_end() || self.bump() != b'>' {
                    return Err(self.err("expected `>` after end tag name"));
                }
                return Ok(element);
            }
            if self.starts_with("<!--") {
                self.skip(4);
                while !self.at_end() && !self.starts_with("-->") {
                    self.bump();
                }
                if self.at_end() {
                    return Err(self.err("unterminated comment"));
                }
                self.skip(3);
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip(9);
                while !self.at_end() && !self.starts_with("]]>") {
                    let c = self.bump();
                    push_byte(&mut text, c, self)?;
                }
                if self.at_end() {
                    return Err(self.err("unterminated CDATA section"));
                }
                self.skip(3);
                continue;
            }
            if self.peek() == b'<' {
                if !text.is_empty() {
                    element.children.push(Content::Text(std::mem::take(&mut text)));
                }
                let child = self.element(&local_scope)?;
                element.children.push(Content::Element(child));
                continue;
            }
            let c = self.bump();
            if c == b'&' {
                text.push(self.entity()?);
            } else {
                push_byte(&mut text, c, self)?;
            }
        }
    }

    /// Resolves an entity reference after the consumed `&`.
    fn entity(&mut self) -> Result<char> {
        let start = self.pos;
        while !self.at_end() && self.peek() != b';' {
            self.bump();
            if self.pos - start > 12 {
                return Err(self.err("unterminated entity reference"));
            }
        }
        if self.at_end() {
            return Err(self.err("unterminated entity reference"));
        }
        let name = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.bump(); // `;`
        match name.as_str() {
            "amp" => Ok('&'),
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => {
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.err("invalid character reference"))
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.err("invalid character reference"))
                } else {
                    Err(self.err(format!("unknown entity `&{name};`")))
                }
            }
        }
    }
}

/// Appends one input byte (possibly the start of a UTF-8 sequence) to `out`.
fn push_byte(out: &mut String, first: u8, parser: &mut Parser<'_>) -> Result<()> {
    if first < 0x80 {
        out.push(first as char);
        return Ok(());
    }
    let mut buf = vec![first];
    while !parser.at_end() && parser.peek() & 0xC0 == 0x80 {
        buf.push(parser.bump());
    }
    out.push_str(
        std::str::from_utf8(&buf).map_err(|_| parser.err("invalid UTF-8 in document"))?,
    );
    Ok(())
}

/// Resolves `prefix:local` against the namespace scope.
fn resolve(
    qname: &str,
    scope: &HashMap<String, String>,
    use_default: bool,
    parser: &Parser<'_>,
) -> Result<(String, String)> {
    match qname.split_once(':') {
        Some((prefix, local)) => {
            let ns = scope
                .get(prefix)
                .ok_or_else(|| parser.err(format!("undeclared namespace prefix `{prefix}`")))?;
            Ok((ns.clone(), local.to_owned()))
        }
        None => {
            // Unprefixed attributes have no namespace; unprefixed elements
            // take the default namespace.
            let ns = if use_default {
                scope.get("").cloned().unwrap_or_default()
            } else {
                String::new()
            };
            Ok((ns, qname.to_owned()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_with_namespaces() {
        let doc = r#"<?xml version="1.0"?>
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                     xmlns:foaf="http://xmlns.com/foaf/0.1/">
              <foaf:Person rdf:about="http://ex.org/alice#me">
                <foaf:name>Alice</foaf:name>
              </foaf:Person>
            </rdf:RDF>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.local, "RDF");
        assert_eq!(root.namespace, "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
        let person = root.elements().next().unwrap();
        assert_eq!(person.local, "Person");
        assert_eq!(person.namespace, "http://xmlns.com/foaf/0.1/");
        assert_eq!(
            person.attribute("http://www.w3.org/1999/02/22-rdf-syntax-ns#", "about"),
            Some("http://ex.org/alice#me")
        );
        let name = person.elements().next().unwrap();
        assert_eq!(name.text(), "Alice");
        assert!(name.is_leaf());
    }

    #[test]
    fn default_namespace_and_self_closing() {
        let doc = r#"<doc xmlns="http://d.example/"><leaf attr="x"/></doc>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.namespace, "http://d.example/");
        let leaf = root.elements().next().unwrap();
        assert_eq!(leaf.namespace, "http://d.example/");
        // Unprefixed attributes carry no namespace.
        assert_eq!(leaf.attribute("", "attr"), Some("x"));
    }

    #[test]
    fn entities_and_character_references() {
        let doc = "<x>a &amp; b &lt;c&gt; &#233; &#x00E9; &quot;q&quot;</x>";
        let root = parse(doc).unwrap();
        assert_eq!(root.text(), "a & b <c> é é \"q\"");
    }

    #[test]
    fn cdata_and_comments() {
        let doc = "<x><!-- note --><![CDATA[<raw & data>]]></x>";
        let root = parse(doc).unwrap();
        assert_eq!(root.text(), "<raw & data>");
    }

    #[test]
    fn error_cases() {
        assert!(parse("<a><b></a></b>").is_err()); // mismatched tags
        assert!(parse("<a>").is_err()); // unterminated
        assert!(parse("<a>&unknown;</a>").is_err());
        assert!(parse("<p:a xmlns:q=\"http://x/\"/>").is_err()); // undeclared prefix
        assert!(parse("<!DOCTYPE html><a/>").is_err()); // DTD rejected
        assert!(parse("<a/><b/>").is_err()); // two roots
        assert!(parse("").is_err());
    }

    #[test]
    fn mixed_content_order_is_preserved() {
        let doc = "<x>one<y/>two</x>";
        let root = parse(doc).unwrap();
        assert_eq!(root.children.len(), 3);
        assert!(matches!(&root.children[0], Content::Text(t) if t == "one"));
        assert!(matches!(&root.children[1], Content::Element(e) if e.local == "y"));
        assert!(matches!(&root.children[2], Content::Text(t) if t == "two"));
    }

    #[test]
    fn namespace_scoping_is_lexical() {
        let doc = r#"<a xmlns:p="http://one/"><p:b/><c xmlns:p="http://two/"><p:d/></c></a>"#;
        let root = parse(doc).unwrap();
        let kids: Vec<&Element> = root.elements().collect();
        assert_eq!(kids[0].namespace, "http://one/");
        let d = kids[1].elements().next().unwrap();
        assert_eq!(d.namespace, "http://two/");
    }
}
