//! Error types for the RDF substrate.

use std::fmt;

/// Result alias for RDF operations.
pub type Result<T> = std::result::Result<T, RdfError>;

/// Errors arising from RDF model construction, parsing or serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A malformed IRI, with the offending value and a short reason.
    InvalidIri {
        /// The rejected IRI (truncated for display when very long).
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A malformed blank node label.
    InvalidBlankNode(String),
    /// A malformed language tag.
    InvalidLanguageTag(String),
    /// A syntax error while parsing Turtle or N-Triples.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// A prefixed name referenced an undeclared prefix.
    UnknownPrefix {
        /// 1-based source line.
        line: usize,
        /// The undeclared prefix (without the colon).
        prefix: String,
    },
}

impl RdfError {
    pub(crate) fn invalid_iri(value: &str, reason: &'static str) -> Self {
        RdfError::InvalidIri { value: truncate(value), reason }
    }

    pub(crate) fn syntax(line: usize, column: usize, message: impl Into<String>) -> Self {
        RdfError::Syntax { line, column, message: message.into() }
    }

    /// The 1-based source line for parse errors, if applicable.
    pub fn line(&self) -> Option<usize> {
        match self {
            RdfError::Syntax { line, .. } | RdfError::UnknownPrefix { line, .. } => Some(*line),
            _ => None,
        }
    }
}

fn truncate(value: &str) -> String {
    const MAX: usize = 80;
    if value.len() <= MAX {
        value.to_owned()
    } else {
        let mut end = MAX;
        while !value.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &value[..end])
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::InvalidIri { value, reason } => {
                write!(f, "invalid IRI `{value}`: {reason}")
            }
            RdfError::InvalidBlankNode(label) => write!(f, "invalid blank node label `{label}`"),
            RdfError::InvalidLanguageTag(tag) => write!(f, "invalid language tag `{tag}`"),
            RdfError::Syntax { line, column, message } => {
                write!(f, "syntax error at {line}:{column}: {message}")
            }
            RdfError::UnknownPrefix { line, prefix } => {
                write!(f, "unknown prefix `{prefix}:` at line {line}")
            }
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let err = RdfError::syntax(3, 7, "unexpected `;`");
        assert_eq!(err.to_string(), "syntax error at 3:7: unexpected `;`");
        assert_eq!(err.line(), Some(3));

        let err = RdfError::invalid_iri("x y", "forbidden character");
        assert!(err.to_string().contains("x y"));
        assert_eq!(err.line(), None);
    }

    #[test]
    fn long_iri_values_are_truncated() {
        let long = "h".repeat(500);
        let err = RdfError::invalid_iri(&long, "missing scheme");
        assert!(err.to_string().len() < 200);
    }
}
