//! Basic graph pattern matching — a SPARQL-subset query engine.
//!
//! Agents "understand and reason about" published metadata (§2, ontological
//! commitment); the practical form is conjunctive triple-pattern queries
//! with shared variables. The solver picks, at every step, the most
//! selective remaining pattern under the current bindings (fewest wildcards
//! first), then extends bindings via the graph's indexes — no full scans
//! unless a pattern is genuinely unconstrained.
//!
//! ```
//! use semrec_rdf::{graph::Graph, model::{Iri, Triple}, query::{select, var, TriplePattern}};
//!
//! let mut g = Graph::new();
//! let knows = Iri::new("http://ex.org/knows").unwrap();
//! g.insert(Triple::new(Iri::new("http://ex.org/a").unwrap(), knows.clone(),
//!                      Iri::new("http://ex.org/b").unwrap()));
//! g.insert(Triple::new(Iri::new("http://ex.org/b").unwrap(), knows.clone(),
//!                      Iri::new("http://ex.org/c").unwrap()));
//!
//! // ?x knows ?y . ?y knows ?z  — friend-of-a-friend.
//! let solutions = select(&g, &[
//!     TriplePattern::new(var("x"), knows.clone().into(), var("y")),
//!     TriplePattern::new(var("y"), knows.into(), var("z")),
//! ]);
//! assert_eq!(solutions.len(), 1);
//! assert_eq!(solutions[0].get("z").unwrap().as_iri().unwrap().as_str(), "http://ex.org/c");
//! ```

use std::collections::BTreeMap;

use crate::graph::Graph;
use crate::model::{Iri, Subject, Term};

/// A pattern position: a concrete term or a named variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryTerm {
    /// A concrete term that must match exactly.
    Term(Term),
    /// A variable, bound on first match and joined thereafter.
    Var(String),
}

impl From<Term> for QueryTerm {
    fn from(value: Term) -> Self {
        QueryTerm::Term(value)
    }
}

impl From<Iri> for QueryTerm {
    fn from(value: Iri) -> Self {
        QueryTerm::Term(Term::Iri(value))
    }
}

impl From<crate::model::Literal> for QueryTerm {
    fn from(value: crate::model::Literal) -> Self {
        QueryTerm::Term(Term::Literal(value))
    }
}

/// Shorthand for a variable query term.
pub fn var(name: impl Into<String>) -> QueryTerm {
    QueryTerm::Var(name.into())
}

/// One triple pattern of a basic graph pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: QueryTerm,
    /// Predicate position (must resolve to an IRI).
    pub predicate: QueryTerm,
    /// Object position.
    pub object: QueryTerm,
}

impl TriplePattern {
    /// Builds a pattern.
    pub fn new(subject: QueryTerm, predicate: QueryTerm, object: QueryTerm) -> Self {
        TriplePattern { subject, predicate, object }
    }
}

/// One solution: variable name → bound term.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings(BTreeMap<String, Term>);

impl Bindings {
    /// The term bound to a variable, if any.
    pub fn get(&self, name: &str) -> Option<&Term> {
        self.0.get(name)
    }

    /// Iterates `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Resolves a query term under bindings to a concrete term, if possible.
fn resolve(term: &QueryTerm, bindings: &Bindings) -> Option<Term> {
    match term {
        QueryTerm::Term(t) => Some(t.clone()),
        QueryTerm::Var(name) => bindings.0.get(name).cloned(),
    }
}

/// Number of positions unresolved under the bindings (lower = more selective).
fn wildcards(pattern: &TriplePattern, bindings: &Bindings) -> usize {
    [&pattern.subject, &pattern.predicate, &pattern.object]
        .into_iter()
        .filter(|qt| resolve(qt, bindings).is_none())
        .count()
}

/// Solves a basic graph pattern, returning all solutions.
///
/// Join order is greedy most-selective-first, re-evaluated after every
/// binding extension. Patterns whose predicate resolves to a non-IRI yield
/// no solutions (predicates are IRIs in RDF).
pub fn select(graph: &Graph, patterns: &[TriplePattern]) -> Vec<Bindings> {
    let mut solutions = Vec::new();
    let remaining: Vec<&TriplePattern> = patterns.iter().collect();
    solve(graph, &remaining, Bindings::default(), &mut solutions);
    solutions
}

fn solve(
    graph: &Graph,
    remaining: &[&TriplePattern],
    bindings: Bindings,
    solutions: &mut Vec<Bindings>,
) {
    if remaining.is_empty() {
        solutions.push(bindings);
        return;
    }
    // Pick the most selective pattern under the current bindings.
    let (pick, _) = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| wildcards(p, &bindings))
        .expect("non-empty");
    let pattern = remaining[pick];
    let rest: Vec<&TriplePattern> =
        remaining.iter().enumerate().filter(|&(i, _)| i != pick).map(|(_, p)| *p).collect();

    let s_term = resolve(&pattern.subject, &bindings);
    let p_term = resolve(&pattern.predicate, &bindings);
    let o_term = resolve(&pattern.object, &bindings);

    // Subjects must be IRI/blank; predicates IRIs. Mismatched resolved terms
    // simply produce no solutions.
    let subject: Option<Subject> = match &s_term {
        Some(Term::Iri(iri)) => Some(Subject::Iri(iri.clone())),
        Some(Term::Blank(b)) => Some(Subject::Blank(b.clone())),
        Some(Term::Literal(_)) => return,
        None => None,
    };
    let predicate: Option<Iri> = match &p_term {
        Some(Term::Iri(iri)) => Some(iri.clone()),
        Some(_) => return,
        None => None,
    };

    for triple in graph.triples_matching(subject.as_ref(), predicate.as_ref(), o_term.as_ref()) {
        let mut extended = bindings.clone();
        if extend(&mut extended, &pattern.subject, Term::from(triple.subject.clone()))
            && extend(&mut extended, &pattern.predicate, Term::Iri(triple.predicate.clone()))
            && extend(&mut extended, &pattern.object, triple.object.clone())
        {
            solve(graph, &rest, extended, solutions);
        }
    }
}

/// Binds a variable (or checks consistency); `true` if the row still joins.
fn extend(bindings: &mut Bindings, position: &QueryTerm, value: Term) -> bool {
    match position {
        QueryTerm::Term(t) => *t == value,
        QueryTerm::Var(name) => match bindings.0.get(name) {
            Some(existing) => *existing == value,
            None => {
                bindings.0.insert(name.clone(), value);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Literal, Triple};
    use crate::vocab;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    /// alice knows bob,carol; bob knows carol; names for alice and bob.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let knows = iri("http://ex.org/knows");
        let name = iri("http://ex.org/name");
        for (a, b) in [("alice", "bob"), ("alice", "carol"), ("bob", "carol")] {
            g.insert(Triple::new(
                iri(&format!("http://ex.org/{a}")),
                knows.clone(),
                iri(&format!("http://ex.org/{b}")),
            ));
        }
        g.insert(Triple::new(iri("http://ex.org/alice"), name.clone(), Literal::simple("Alice")));
        g.insert(Triple::new(iri("http://ex.org/bob"), name, Literal::simple("Bob")));
        g
    }

    #[test]
    fn single_pattern_all_variables() {
        let g = sample();
        let solutions = select(&g, &[TriplePattern::new(var("s"), var("p"), var("o"))]);
        assert_eq!(solutions.len(), g.len());
    }

    #[test]
    fn join_on_shared_variable() {
        let g = sample();
        let knows = iri("http://ex.org/knows");
        // ?x knows ?y . ?y knows ?z  → only alice→bob→carol chains.
        let solutions = select(
            &g,
            &[
                TriplePattern::new(var("x"), knows.clone().into(), var("y")),
                TriplePattern::new(var("y"), knows.into(), var("z")),
            ],
        );
        assert_eq!(solutions.len(), 1);
        let s = &solutions[0];
        assert_eq!(s.get("x").unwrap().as_iri().unwrap().as_str(), "http://ex.org/alice");
        assert_eq!(s.get("y").unwrap().as_iri().unwrap().as_str(), "http://ex.org/bob");
        assert_eq!(s.get("z").unwrap().as_iri().unwrap().as_str(), "http://ex.org/carol");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn join_with_literal_constraint() {
        let g = sample();
        let knows = iri("http://ex.org/knows");
        let name = iri("http://ex.org/name");
        // Who does the person named "Alice" know?
        let solutions = select(
            &g,
            &[
                TriplePattern::new(var("who"), name.into(), Literal::simple("Alice").into()),
                TriplePattern::new(var("who"), knows.into(), var("peer")),
            ],
        );
        assert_eq!(solutions.len(), 2);
    }

    #[test]
    fn no_solutions_when_join_fails() {
        let g = sample();
        let knows = iri("http://ex.org/knows");
        // carol knows nobody.
        let solutions = select(
            &g,
            &[TriplePattern::new(
                QueryTerm::Term(Term::Iri(iri("http://ex.org/carol"))),
                knows.into(),
                var("x"),
            )],
        );
        assert!(solutions.is_empty());
    }

    #[test]
    fn same_variable_in_two_positions() {
        let mut g = sample();
        let likes = iri("http://ex.org/endorses");
        // dave endorses himself.
        g.insert(Triple::new(iri("http://ex.org/dave"), likes.clone(), iri("http://ex.org/dave")));
        g.insert(Triple::new(iri("http://ex.org/dave"), likes.clone(), iri("http://ex.org/alice")));
        let solutions =
            select(&g, &[TriplePattern::new(var("x"), likes.into(), var("x"))]);
        assert_eq!(solutions.len(), 1);
        assert_eq!(solutions[0].get("x").unwrap().as_iri().unwrap().as_str(), "http://ex.org/dave");
    }

    #[test]
    fn empty_pattern_list_yields_one_empty_solution() {
        let g = sample();
        let solutions = select(&g, &[]);
        assert_eq!(solutions.len(), 1);
        assert!(solutions[0].is_empty());
    }

    #[test]
    fn literal_in_predicate_position_yields_nothing() {
        let g = sample();
        let solutions = select(
            &g,
            &[TriplePattern::new(var("s"), Literal::simple("x").into(), var("o"))],
        );
        assert!(solutions.is_empty());
    }

    #[test]
    fn reified_trust_statement_query() {
        // The exact query the recommender needs: all (trustee, value) pairs
        // asserted by one agent, through the reified trust vocabulary.
        let mut g = Graph::new();
        let me = iri("http://ex.org/alice#me");
        for (i, (peer, value)) in [("bob", 0.75), ("carol", -0.25)].iter().enumerate() {
            let stmt = crate::model::BlankNode::new(format!("t{i}")).unwrap();
            g.insert(Triple::new(stmt.clone(), vocab::rdf::type_(), vocab::trust::statement()));
            g.insert(Triple::new(stmt.clone(), vocab::trust::truster(), me.clone()));
            g.insert(Triple::new(
                stmt.clone(),
                vocab::trust::trustee(),
                iri(&format!("http://ex.org/{peer}#me")),
            ));
            g.insert(Triple::new(stmt, vocab::trust::value(), Literal::decimal(*value)));
        }
        let solutions = select(
            &g,
            &[
                TriplePattern::new(var("stmt"), vocab::trust::truster().into(), me.into()),
                TriplePattern::new(var("stmt"), vocab::trust::trustee().into(), var("peer")),
                TriplePattern::new(var("stmt"), vocab::trust::value().into(), var("value")),
            ],
        );
        assert_eq!(solutions.len(), 2);
        for s in &solutions {
            assert!(s.get("peer").is_some());
            assert!(s.get("value").unwrap().as_literal().unwrap().as_double().is_some());
        }
    }

    #[test]
    fn bindings_iteration_is_ordered() {
        let g = sample();
        let knows = iri("http://ex.org/knows");
        let solutions =
            select(&g, &[TriplePattern::new(var("b"), knows.into(), var("a"))]);
        let names: Vec<&str> = solutions[0].iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
