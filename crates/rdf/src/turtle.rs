//! A Turtle parser covering the subset the recommender infrastructure emits:
//! `@prefix` / `@base` directives, prefixed names, IRI references with
//! `\u`/`\U` escapes, blank node labels and anonymous property lists,
//! string / numeric / boolean literals, language tags, datatypes, the `a`
//! keyword, and `;` / `,` object lists.
//!
//! N-Triples documents are a syntactic subset of Turtle, so
//! [`crate::ntriples`] reuses this parser.

use std::collections::HashMap;

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{BlankNode, Iri, Literal, Subject, Term, Triple};
use crate::vocab;

/// Parses a Turtle document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph> {
    let mut parser = Parser::new(input);
    parser.run()?;
    Ok(parser.graph)
}

/// Parses a Turtle document, returning the graph and the declared prefixes.
pub fn parse_with_prefixes(input: &str) -> Result<(Graph, HashMap<String, String>)> {
    let mut parser = Parser::new(input);
    parser.run()?;
    Ok((parser.graph, parser.prefixes))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    prefixes: HashMap<String, String>,
    base: Option<String>,
    graph: Graph,
    anon_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            prefixes: HashMap::new(),
            base: None,
            graph: Graph::new(),
            anon_counter: 0,
        }
    }

    fn run(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.at_end() {
                return Ok(());
            }
            if self.peek() == b'@' {
                self.directive()?;
            } else if self.peek_keyword("PREFIX") {
                self.pos += 6;
                self.sparql_prefix()?;
            } else if self.peek_keyword("BASE") {
                self.pos += 4;
                self.sparql_base()?;
            } else {
                self.statement()?;
            }
        }
    }

    // --- character machinery -------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.input.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> u8 {
        let c = self.input[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        c
    }

    fn column(&self) -> usize {
        self.pos - self.line_start + 1
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::syntax(self.line, self.column(), message)
    }

    fn skip_ws(&mut self) {
        while !self.at_end() {
            let c = self.peek();
            if c == b'#' {
                while !self.at_end() && self.peek() != b'\n' {
                    self.bump();
                }
            } else if c.is_ascii_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        self.skip_ws();
        if self.at_end() || self.peek() != c {
            return Err(self.err(format!("expected `{}`", c as char)));
        }
        self.bump();
        Ok(())
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        let bytes = kw.as_bytes();
        if self.pos + bytes.len() > self.input.len() {
            return false;
        }
        self.input[self.pos..self.pos + bytes.len()].eq_ignore_ascii_case(bytes)
            && self
                .input
                .get(self.pos + bytes.len())
                .is_none_or(|c| c.is_ascii_whitespace() || *c == b'<')
    }

    // --- directives ----------------------------------------------------------

    fn directive(&mut self) -> Result<()> {
        // self.peek() == b'@'
        self.bump();
        let word = self.bare_word();
        match word.as_str() {
            "prefix" => {
                self.sparql_prefix()?;
                self.expect(b'.')
            }
            "base" => {
                self.sparql_base()?;
                self.expect(b'.')
            }
            other => Err(self.err(format!("unknown directive `@{other}`"))),
        }
    }

    fn bare_word(&mut self) -> String {
        let start = self.pos;
        while !self.at_end() && self.peek().is_ascii_alphabetic() {
            self.bump();
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned()
    }

    fn sparql_prefix(&mut self) -> Result<()> {
        self.skip_ws();
        let prefix = self.pname_prefix()?;
        self.expect(b':')?;
        self.skip_ws();
        let iri = self.iriref()?;
        self.prefixes.insert(prefix, iri);
        Ok(())
    }

    fn sparql_base(&mut self) -> Result<()> {
        self.skip_ws();
        let iri = self.iriref()?;
        self.base = Some(iri);
        Ok(())
    }

    fn pname_prefix(&mut self) -> Result<String> {
        let start = self.pos;
        while !self.at_end() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.bump();
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    // --- statements ----------------------------------------------------------

    fn statement(&mut self) -> Result<()> {
        let subject = self.subject()?;
        self.predicate_object_list(&subject)?;
        self.expect(b'.')
    }

    fn subject(&mut self) -> Result<Subject> {
        self.skip_ws();
        if self.at_end() {
            return Err(self.err("expected subject"));
        }
        match self.peek() {
            b'<' => {
                let iri = self.iriref()?;
                Ok(Subject::Iri(self.make_iri(iri)?))
            }
            b'_' => Ok(Subject::Blank(self.blank_node_label()?)),
            b'[' => {
                let node = self.blank_node_property_list()?;
                Ok(Subject::Blank(node))
            }
            _ => {
                let iri = self.prefixed_name()?;
                Ok(Subject::Iri(iri))
            }
        }
    }

    fn predicate_object_list(&mut self, subject: &Subject) -> Result<()> {
        loop {
            let predicate = self.predicate()?;
            loop {
                let object = self.object()?;
                self.graph.insert(Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_ws();
                if !self.at_end() && self.peek() == b',' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if !self.at_end() && self.peek() == b';' {
                self.bump();
                self.skip_ws();
                // Trailing `;` before `.` or `]` is legal Turtle.
                if self.at_end() || self.peek() == b'.' || self.peek() == b']' {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn predicate(&mut self) -> Result<Iri> {
        self.skip_ws();
        if self.at_end() {
            return Err(self.err("expected predicate"));
        }
        match self.peek() {
            b'<' => {
                let iri = self.iriref()?;
                self.make_iri(iri)
            }
            b'a' if self
                .peek_at(1)
                .is_none_or(|c| c.is_ascii_whitespace() || c == b'<' || c == b'[' || c == b'_') =>
            {
                self.bump();
                Ok(vocab::rdf::type_())
            }
            _ => self.prefixed_name(),
        }
    }

    fn object(&mut self) -> Result<Term> {
        self.skip_ws();
        if self.at_end() {
            return Err(self.err("expected object"));
        }
        match self.peek() {
            b'<' => {
                let iri = self.iriref()?;
                Ok(Term::Iri(self.make_iri(iri)?))
            }
            b'_' => Ok(Term::Blank(self.blank_node_label()?)),
            b'[' => Ok(Term::Blank(self.blank_node_property_list()?)),
            b'"' | b'\'' => Ok(Term::Literal(self.literal()?)),
            c if c == b'+' || c == b'-' || c.is_ascii_digit() => {
                Ok(Term::Literal(self.numeric_literal()?))
            }
            _ => {
                // `true` / `false` keywords, otherwise a prefixed name.
                if self.peek_keyword_strict("true") {
                    self.pos += 4;
                    Ok(Term::Literal(Literal::boolean(true)))
                } else if self.peek_keyword_strict("false") {
                    self.pos += 5;
                    Ok(Term::Literal(Literal::boolean(false)))
                } else {
                    Ok(Term::Iri(self.prefixed_name()?))
                }
            }
        }
    }

    fn peek_keyword_strict(&self, kw: &str) -> bool {
        let bytes = kw.as_bytes();
        if self.pos + bytes.len() > self.input.len() {
            return false;
        }
        &self.input[self.pos..self.pos + bytes.len()] == bytes
            && self.input.get(self.pos + bytes.len()).is_none_or(|c| {
                c.is_ascii_whitespace() || matches!(c, b'.' | b';' | b',' | b']' | b')' | b'#')
            })
    }

    // --- terminals -----------------------------------------------------------

    fn iriref(&mut self) -> Result<String> {
        if self.at_end() || self.peek() != b'<' {
            return Err(self.err("expected `<`"));
        }
        self.bump();
        let mut out = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unterminated IRI"));
            }
            match self.bump() {
                b'>' => break,
                b'\\' => {
                    let esc = if self.at_end() { 0 } else { self.bump() };
                    match esc {
                        b'u' => out.push(self.unicode_escape(4)?),
                        b'U' => out.push(self.unicode_escape(8)?),
                        _ => return Err(self.err("invalid IRI escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let mut buf = vec![c];
                    while !self.at_end() && self.peek() & 0xC0 == 0x80 {
                        buf.push(self.bump());
                    }
                    out.push_str(
                        std::str::from_utf8(&buf).map_err(|_| self.err("invalid UTF-8 in IRI"))?,
                    );
                }
            }
        }
        Ok(out)
    }

    fn make_iri(&self, raw: String) -> Result<Iri> {
        // Resolve against @base when the reference is relative.
        if !raw.contains(':') {
            if let Some(base) = &self.base {
                return Iri::new(format!("{base}{raw}"));
            }
        }
        Iri::new(raw)
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char> {
        let mut value: u32 = 0;
        for _ in 0..digits {
            if self.at_end() {
                return Err(self.err("truncated unicode escape"));
            }
            let c = self.bump() as char;
            let d = c.to_digit(16).ok_or_else(|| self.err("invalid unicode escape"))?;
            value = value * 16 + d;
        }
        char::from_u32(value).ok_or_else(|| self.err("escape is not a valid code point"))
    }

    fn blank_node_label(&mut self) -> Result<BlankNode> {
        // self.peek() == b'_'
        self.bump();
        if self.at_end() || self.peek() != b':' {
            return Err(self.err("expected `:` after `_` in blank node"));
        }
        self.bump();
        let start = self.pos;
        while !self.at_end() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                // A trailing dot terminates the statement rather than the label.
                if c == b'.'
                    && self
                        .peek_at(1)
                        .is_none_or(|n| !(n.is_ascii_alphanumeric() || n == b'_' || n == b'-'))
                {
                    break;
                }
                self.bump();
            } else {
                break;
            }
        }
        let label = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        BlankNode::new(label).map_err(|e| self.err(e.to_string()))
    }

    fn blank_node_property_list(&mut self) -> Result<BlankNode> {
        // self.peek() == b'['
        self.bump();
        self.anon_counter += 1;
        let node = BlankNode::new(format!("anon{}", self.anon_counter))
            .expect("generated labels are valid");
        self.skip_ws();
        if !self.at_end() && self.peek() == b']' {
            self.bump();
            return Ok(node);
        }
        let subject = Subject::Blank(node.clone());
        self.predicate_object_list(&subject)?;
        self.expect(b']')?;
        Ok(node)
    }

    fn prefixed_name(&mut self) -> Result<Iri> {
        let line = self.line;
        let prefix = self.pname_prefix()?;
        // `prefix` may legally end in '.', but a trailing '.' belongs to the
        // statement terminator; pname_prefix is greedy so back off.
        let mut prefix = prefix;
        while prefix.ends_with('.') {
            prefix.pop();
            self.pos -= 1;
        }
        if self.at_end() || self.peek() != b':' {
            return Err(self.err(format!("expected `:` in prefixed name after `{prefix}`")));
        }
        self.bump();
        let start = self.pos;
        while !self.at_end() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'%' {
                self.bump();
            } else if c == b'.' {
                // Dots are legal mid-local (including runs of dots) but a
                // trailing dot terminates the statement instead. Look past
                // the run of dots to decide.
                let mut ahead = 1;
                while self.peek_at(ahead) == Some(b'.') {
                    ahead += 1;
                }
                let continues = self
                    .peek_at(ahead)
                    .is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_' || n == b'-');
                if continues {
                    for _ in 0..ahead {
                        self.bump();
                    }
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let local = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or(RdfError::UnknownPrefix { line, prefix: prefix.clone() })?;
        Iri::new(format!("{ns}{local}"))
    }

    fn literal(&mut self) -> Result<Literal> {
        let quote = self.bump(); // `"` or `'`
        let triple_quoted = self.peek_at(0) == Some(quote) && self.peek_at(1) == Some(quote);
        if triple_quoted {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unterminated string literal"));
            }
            let c = self.bump();
            if c == quote {
                if !triple_quoted {
                    break;
                }
                if self.peek_at(0) == Some(quote) && self.peek_at(1) == Some(quote) {
                    self.bump();
                    self.bump();
                    break;
                }
                out.push(quote as char);
                continue;
            }
            if c == b'\\' {
                if self.at_end() {
                    return Err(self.err("truncated escape"));
                }
                match self.bump() {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'"' => out.push('"'),
                    b'\'' => out.push('\''),
                    b'\\' => out.push('\\'),
                    b'u' => out.push(self.unicode_escape(4)?),
                    b'U' => out.push(self.unicode_escape(8)?),
                    other => {
                        return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                    }
                }
                continue;
            }
            if c < 0x80 {
                if !triple_quoted && (c == b'\n' || c == b'\r') {
                    return Err(self.err("raw newline in single-quoted literal"));
                }
                out.push(c as char);
            } else {
                let mut buf = vec![c];
                while !self.at_end() && self.peek() & 0xC0 == 0x80 {
                    buf.push(self.bump());
                }
                out.push_str(
                    std::str::from_utf8(&buf).map_err(|_| self.err("invalid UTF-8 in literal"))?,
                );
            }
        }
        // Optional language tag or datatype.
        if !self.at_end() && self.peek() == b'@' {
            self.bump();
            let start = self.pos;
            while !self.at_end()
                && (self.peek().is_ascii_alphanumeric() || self.peek() == b'-')
            {
                self.bump();
            }
            let tag = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            return Literal::lang(out, tag).map_err(|e| self.err(e.to_string()));
        }
        if self.peek_at(0) == Some(b'^') && self.peek_at(1) == Some(b'^') {
            self.bump();
            self.bump();
            self.skip_ws();
            let dt = if !self.at_end() && self.peek() == b'<' {
                let raw = self.iriref()?;
                self.make_iri(raw)?
            } else {
                self.prefixed_name()?
            };
            if dt.as_str() == vocab::xsd::string().as_str() {
                return Ok(Literal::simple(out));
            }
            return Ok(Literal::typed(out, dt));
        }
        Ok(Literal::simple(out))
    }

    fn numeric_literal(&mut self) -> Result<Literal> {
        let start = self.pos;
        if self.peek() == b'+' || self.peek() == b'-' {
            self.bump();
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while !self.at_end() {
            let c = self.peek();
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' && !saw_dot && !saw_exp {
                // A dot followed by a non-digit terminates the statement.
                if self.peek_at(1).is_some_and(|n| n.is_ascii_digit()) {
                    saw_dot = true;
                    self.bump();
                } else {
                    break;
                }
            } else if (c == b'e' || c == b'E') && !saw_exp {
                saw_exp = true;
                self.bump();
                if !self.at_end() && (self.peek() == b'+' || self.peek() == b'-') {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        if text.is_empty() || text == "+" || text == "-" {
            return Err(self.err("malformed numeric literal"));
        }
        let datatype = if saw_exp {
            vocab::xsd::double()
        } else if saw_dot {
            vocab::xsd::decimal()
        } else {
            vocab::xsd::integer()
        };
        Ok(Literal::typed(text, datatype))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_statements() {
        let g = parse(
            "@prefix ex: <http://ex.org/> .\n\
             ex:alice ex:knows ex:bob , ex:carol ;\n\
                      ex:name \"Alice\"@en .\n",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        let alice: Subject = Iri::new("http://ex.org/alice").unwrap().into();
        assert_eq!(g.triples_matching(Some(&alice), None, None).count(), 3);
    }

    #[test]
    fn parses_a_keyword_and_booleans() {
        let g = parse(
            "@prefix ex: <http://ex.org/> .\n\
             ex:x a ex:Thing ; ex:flag true ; ex:other false .\n",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
        let x: Subject = Iri::new("http://ex.org/x").unwrap().into();
        assert_eq!(
            g.object_for(&x, &vocab::rdf::type_()),
            Some(Term::Iri(Iri::new("http://ex.org/Thing").unwrap()))
        );
        assert_eq!(
            g.object_for(&x, &Iri::new("http://ex.org/flag").unwrap()),
            Some(Term::Literal(Literal::boolean(true)))
        );
    }

    #[test]
    fn parses_numeric_literals() {
        let g = parse(
            "@prefix ex: <http://ex.org/> .\n\
             ex:x ex:i 42 ; ex:d -0.75 ; ex:e 1.5e3 .\n",
        )
        .unwrap();
        let x: Subject = Iri::new("http://ex.org/x").unwrap().into();
        let i = g.object_for(&x, &Iri::new("http://ex.org/i").unwrap()).unwrap();
        assert_eq!(i.as_literal().unwrap().as_integer(), Some(42));
        let d = g.object_for(&x, &Iri::new("http://ex.org/d").unwrap()).unwrap();
        assert_eq!(d.as_literal().unwrap().as_double(), Some(-0.75));
        let e = g.object_for(&x, &Iri::new("http://ex.org/e").unwrap()).unwrap();
        assert_eq!(e.as_literal().unwrap().as_double(), Some(1500.0));
    }

    #[test]
    fn parses_datatyped_and_escaped_literals() {
        let g = parse(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             <http://ex.org/x> <http://ex.org/p> \"3.14\"^^xsd:decimal ;\n\
               <http://ex.org/q> \"line\\nbreak \\\"quoted\\\" \\u00e9\" .\n",
        )
        .unwrap();
        let x: Subject = Iri::new("http://ex.org/x").unwrap().into();
        let q = g.object_for(&x, &Iri::new("http://ex.org/q").unwrap()).unwrap();
        assert_eq!(q.as_literal().unwrap().lexical(), "line\nbreak \"quoted\" é");
    }

    #[test]
    fn parses_blank_nodes_and_property_lists() {
        let g = parse(
            "@prefix ex: <http://ex.org/> .\n\
             _:b1 ex:p ex:o .\n\
             ex:s ex:q [ ex:inner 1 ; ex:more 2 ] .\n",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        // The anonymous node is the object of ex:q and the subject of two triples.
        let s: Subject = Iri::new("http://ex.org/s").unwrap().into();
        let obj = g.object_for(&s, &Iri::new("http://ex.org/q").unwrap()).unwrap();
        let Term::Blank(b) = obj else { panic!("expected blank node") };
        let bs: Subject = b.into();
        assert_eq!(g.triples_matching(Some(&bs), None, None).count(), 2);
    }

    #[test]
    fn base_resolution() {
        let g = parse("@base <http://ex.org/> . <alice> <knows> <bob> .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject.as_iri().unwrap().as_str(), "http://ex.org/alice");
    }

    #[test]
    fn sparql_style_directives() {
        let g = parse("PREFIX ex: <http://ex.org/>\nex:a ex:b ex:c .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_are_skipped() {
        let g = parse(
            "# leading comment\n\
             @prefix ex: <http://ex.org/> . # trailing\n\
             ex:a ex:b ex:c . # done\n",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn triple_quoted_strings() {
        let g = parse("<http://e.org/s> <http://e.org/p> \"\"\"multi\nline \"quote\" ok\"\"\" .")
            .unwrap();
        let lit = g.iter().next().unwrap().object;
        assert_eq!(lit.as_literal().unwrap().lexical(), "multi\nline \"quote\" ok");
    }

    #[test]
    fn error_reports_position() {
        let err = parse("@prefix ex: <http://ex.org/> .\nex:a ex:b ;;; .").unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn unknown_prefix_is_reported() {
        let err = parse("nope:a <http://e.org/p> <http://e.org/o> .").unwrap_err();
        assert!(matches!(err, RdfError::UnknownPrefix { ref prefix, .. } if prefix == "nope"));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        assert!(parse("<http://e.org/s> <http://e.org/p> \"oops .").is_err());
    }

    #[test]
    fn trailing_semicolon_is_legal() {
        let g = parse("@prefix ex: <http://ex.org/> . ex:a ex:b ex:c ; .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn local_names_with_dots_and_digits() {
        let g = parse("@prefix ex: <http://ex.org/> . ex:v1.2 ex:p ex:o .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject.as_iri().unwrap().as_str(), "http://ex.org/v1.2");
    }
}
