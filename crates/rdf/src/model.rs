//! The RDF data model: IRIs, blank nodes, literals, terms and triples.
//!
//! This is a deliberately small, allocation-conscious model. Terms own their
//! lexical data as `String`s; the [`crate::graph::Graph`] interns them into
//! dense integer identifiers so that indexing and pattern matching never
//! compare strings on the hot path.

use std::borrow::Cow;
use std::fmt;

use crate::error::{RdfError, Result};

/// An absolute IRI (Internationalized Resource Identifier).
///
/// Validation is intentionally light: we require a scheme (`[a-zA-Z][a-zA-Z0-9+.-]*:`)
/// and reject characters that Turtle/N-Triples forbid inside `<...>` delimiters
/// (whitespace, `<`, `>`, `"`, `{`, `}`, `|`, `^`, backtick, backslash).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

impl Iri {
    /// Creates a validated IRI.
    pub fn new(value: impl Into<String>) -> Result<Self> {
        let value = value.into();
        Self::validate(&value)?;
        Ok(Iri(value))
    }

    /// Creates an IRI without validation.
    ///
    /// Intended for static vocabulary constants whose validity is ensured by
    /// construction; invalid input surfaces later as serializer errors.
    pub fn new_unchecked(value: impl Into<String>) -> Self {
        Iri(value.into())
    }

    fn validate(value: &str) -> Result<()> {
        let mut chars = value.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() => {}
            _ => return Err(RdfError::invalid_iri(value, "missing scheme")),
        }
        let mut saw_colon = false;
        for c in value.chars() {
            if c == ':' {
                saw_colon = true;
            }
            if c.is_whitespace() || matches!(c, '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\')
            {
                return Err(RdfError::invalid_iri(value, "forbidden character"));
            }
        }
        if !saw_colon {
            return Err(RdfError::invalid_iri(value, "missing scheme"));
        }
        Ok(())
    }

    /// The IRI as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Consumes the IRI, returning its string.
    pub fn into_string(self) -> String {
        self.0
    }

    /// Splits the IRI at the last `#`, `/` or `:` into `(namespace, local)`.
    ///
    /// Used by the Turtle writer to emit prefixed names when possible.
    pub fn split_namespace(&self) -> (&str, &str) {
        match self.0.rfind(['#', '/', ':']) {
            Some(idx) => self.0.split_at(idx + 1),
            None => ("", &self.0),
        }
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A blank (anonymous) node, identified by a document-scoped label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(String);

impl BlankNode {
    /// Creates a blank node with the given label (without the `_:` prefix).
    pub fn new(label: impl Into<String>) -> Result<Self> {
        let label = label.into();
        if label.is_empty()
            || !label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
            || label.starts_with('.')
            || label.ends_with('.')
        {
            return Err(RdfError::InvalidBlankNode(label));
        }
        Ok(BlankNode(label))
    }

    /// The label (without the `_:` prefix).
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus either a language tag or a datatype IRI.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: String,
    kind: LiteralKind,
}

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum LiteralKind {
    /// Plain `xsd:string` literal.
    Simple,
    /// Language-tagged string (`"..."@en`).
    LangTagged(String),
    /// Datatyped literal (`"..."^^<iri>`).
    Typed(Iri),
}

impl Literal {
    /// A simple (`xsd:string`) literal.
    pub fn simple(lexical: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), kind: LiteralKind::Simple }
    }

    /// A language-tagged string literal. Tags are normalized to lowercase.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Result<Self> {
        let tag: String = tag.into();
        if tag.is_empty()
            || !tag.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
            || tag.starts_with('-')
        {
            return Err(RdfError::InvalidLanguageTag(tag));
        }
        Ok(Literal { lexical: lexical.into(), kind: LiteralKind::LangTagged(tag.to_ascii_lowercase()) })
    }

    /// A datatyped literal.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        Literal { lexical: lexical.into(), kind: LiteralKind::Typed(datatype) }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::integer())
    }

    /// An `xsd:decimal` literal rendered with full precision.
    pub fn decimal(value: f64) -> Self {
        // Turtle decimals require a '.'; format accordingly.
        let mut s = format!("{value}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
            s.push_str(".0");
        }
        Literal::typed(s, crate::vocab::xsd::decimal())
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(if value { "true" } else { "false" }, crate::vocab::xsd::boolean())
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag, if language-tagged.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::LangTagged(tag) => Some(tag),
            _ => None,
        }
    }

    /// The datatype IRI: `rdf:langString` for tagged, `xsd:string` for simple.
    pub fn datatype(&self) -> Cow<'_, Iri> {
        match &self.kind {
            LiteralKind::Simple => Cow::Owned(crate::vocab::xsd::string()),
            LiteralKind::LangTagged(_) => Cow::Owned(crate::vocab::rdf::lang_string()),
            LiteralKind::Typed(iri) => Cow::Borrowed(iri),
        }
    }

    /// True if this is a plain `xsd:string` literal without a language tag.
    pub fn is_simple(&self) -> bool {
        matches!(self.kind, LiteralKind::Simple)
    }

    /// Parses the lexical form as an `i64` when the datatype is numeric.
    pub fn as_integer(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }

    /// Parses the lexical form as an `f64` when the datatype is numeric.
    pub fn as_double(&self) -> Option<f64> {
        self.lexical.parse().ok()
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LiteralKind::Simple => write!(f, "{:?}", self.lexical),
            LiteralKind::LangTagged(tag) => write!(f, "{:?}@{}", self.lexical, tag),
            LiteralKind::Typed(dt) => write!(f, "{:?}^^{:?}", self.lexical, dt),
        }
    }
}

/// A subject position term: IRI or blank node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subject {
    /// An IRI-identified resource.
    Iri(Iri),
    /// An anonymous resource.
    Blank(BlankNode),
}

impl Subject {
    /// The IRI, if this subject is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Subject::Iri(iri) => Some(iri),
            Subject::Blank(_) => None,
        }
    }
}

impl From<Iri> for Subject {
    fn from(value: Iri) -> Self {
        Subject::Iri(value)
    }
}

impl From<BlankNode> for Subject {
    fn from(value: BlankNode) -> Self {
        Subject::Blank(value)
    }
}

/// Any term: IRI, blank node, or literal (object position).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI-identified resource.
    Iri(Iri),
    /// An anonymous resource.
    Blank(BlankNode),
    /// A literal value (object position only).
    Literal(Literal),
}

impl Term {
    /// The IRI, if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<BlankNode> for Term {
    fn from(value: BlankNode) -> Self {
        Term::Blank(value)
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

impl From<Subject> for Term {
    fn from(value: Subject) -> Self {
        match value {
            Subject::Iri(iri) => Term::Iri(iri),
            Subject::Blank(b) => Term::Blank(b),
        }
    }
}

/// An RDF triple (statement).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The statement's subject.
    pub subject: Subject,
    /// The statement's predicate (always an IRI).
    pub predicate: Iri,
    /// The statement's object.
    pub object: Term,
}

impl Triple {
    /// Builds a triple from anything convertible into its component types.
    pub fn new(
        subject: impl Into<Subject>,
        predicate: Iri,
        object: impl Into<Term>,
    ) -> Self {
        Triple { subject: subject.into(), predicate, object: object.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_requires_scheme() {
        assert!(Iri::new("http://example.org/a").is_ok());
        assert!(Iri::new("urn:isbn:0387954521").is_ok());
        assert!(Iri::new("no-scheme-here").is_err());
        assert!(Iri::new("").is_err());
        assert!(Iri::new("1http://x").is_err());
    }

    #[test]
    fn iri_rejects_forbidden_characters() {
        assert!(Iri::new("http://example.org/a b").is_err());
        assert!(Iri::new("http://example.org/<x>").is_err());
        assert!(Iri::new("http://example.org/\"x\"").is_err());
        assert!(Iri::new("http://example.org/x\\y").is_err());
    }

    #[test]
    fn iri_namespace_split() {
        let iri = Iri::new("http://xmlns.com/foaf/0.1/knows").unwrap();
        assert_eq!(iri.split_namespace(), ("http://xmlns.com/foaf/0.1/", "knows"));
        let hash = Iri::new("http://example.org/ns#topic").unwrap();
        assert_eq!(hash.split_namespace(), ("http://example.org/ns#", "topic"));
    }

    #[test]
    fn blank_node_labels() {
        assert!(BlankNode::new("b0").is_ok());
        assert!(BlankNode::new("user-profile_1").is_ok());
        assert!(BlankNode::new("").is_err());
        assert!(BlankNode::new("has space").is_err());
        assert!(BlankNode::new(".dot").is_err());
    }

    #[test]
    fn literal_kinds() {
        let s = Literal::simple("hello");
        assert!(s.is_simple());
        assert_eq!(s.datatype().as_str(), "http://www.w3.org/2001/XMLSchema#string");

        let l = Literal::lang("hallo", "DE").unwrap();
        assert_eq!(l.language(), Some("de"));
        assert_eq!(
            l.datatype().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
        );

        let t = Literal::integer(42);
        assert_eq!(t.as_integer(), Some(42));
        assert_eq!(t.datatype().as_str(), "http://www.w3.org/2001/XMLSchema#integer");
    }

    #[test]
    fn literal_decimal_always_has_point() {
        assert_eq!(Literal::decimal(1.0).lexical(), "1.0");
        assert_eq!(Literal::decimal(-0.25).lexical(), "-0.25");
    }

    #[test]
    fn invalid_language_tags() {
        assert!(Literal::lang("x", "").is_err());
        assert!(Literal::lang("x", "-en").is_err());
        assert!(Literal::lang("x", "en US").is_err());
    }

    #[test]
    fn term_conversions() {
        let iri = Iri::new("http://example.org/x").unwrap();
        let term: Term = iri.clone().into();
        assert_eq!(term.as_iri(), Some(&iri));
        let subject: Subject = iri.clone().into();
        let as_term: Term = subject.into();
        assert_eq!(as_term, term);
    }
}
