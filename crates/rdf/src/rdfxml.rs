//! RDF/XML reading and writing — the exchange syntax of the paper's era.
//!
//! In 2004, FOAF homepages were published as RDF/XML ("machine-readable
//! homepages based upon RDF", §4); Turtle was still a draft. This module
//! covers the striped-syntax subset those documents used:
//!
//! * `rdf:RDF` roots with `rdf:Description` or typed node elements,
//! * `rdf:about` / `rdf:nodeID` subjects (fresh blank nodes when absent),
//! * property elements with `rdf:resource`, `rdf:nodeID`, nested node
//!   elements, `rdf:parseType="Resource"`, literal text with
//!   `rdf:datatype` or `xml:lang`,
//! * property attributes on node elements (string literal shorthand).
//!
//! Unsupported RDF/XML exotica (`rdf:ID`, `rdf:li`/containers, reification
//! attributes, `parseType="Collection"`/`"Literal"`) are rejected with
//! parse errors rather than mis-read.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{BlankNode, Iri, Literal, Subject, Term, Triple};
use crate::vocab;
use crate::xml::{self, Element};

const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// Parses an RDF/XML document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph> {
    let root = xml::parse(input)?;
    let mut state = ParseState { graph: Graph::new(), anon: 0 };
    if root.namespace == RDF_NS && root.local == "RDF" {
        for node in root.elements() {
            state.node_element(node)?;
        }
    } else {
        // A single node element as document root is legal RDF/XML.
        state.node_element(&root)?;
    }
    Ok(state.graph)
}

struct ParseState {
    graph: Graph,
    anon: usize,
}

impl ParseState {
    fn fresh_blank(&mut self) -> BlankNode {
        self.anon += 1;
        BlankNode::new(format!("rx{}", self.anon)).expect("generated labels are valid")
    }

    fn syntax(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax { line: 0, column: 0, message: message.into() }
    }

    /// Parses a node element, returning its subject.
    fn node_element(&mut self, node: &Element) -> Result<Subject> {
        let subject: Subject = if let Some(about) = node.attribute(RDF_NS, "about") {
            Subject::Iri(Iri::new(about)?)
        } else if let Some(id) = node.attribute(RDF_NS, "nodeID") {
            Subject::Blank(BlankNode::new(id)?)
        } else if node.attribute(RDF_NS, "ID").is_some() {
            return Err(self.syntax("rdf:ID requires base resolution and is not supported"));
        } else {
            Subject::Blank(self.fresh_blank())
        };

        // Typed node element: the element name is the type.
        if !(node.namespace == RDF_NS && node.local == "Description") {
            let type_iri = Iri::new(format!("{}{}", node.namespace, node.local))?;
            self.graph.insert(Triple::new(subject.clone(), vocab::rdf::type_(), type_iri));
        }

        // Property attributes (string literal shorthand).
        for ((ns, local), value) in &node.attributes {
            if ns == RDF_NS || ns == XML_NS || ns.is_empty() {
                continue;
            }
            let predicate = Iri::new(format!("{ns}{local}"))?;
            self.graph.insert(Triple::new(
                subject.clone(),
                predicate,
                Literal::simple(value.clone()),
            ));
        }

        let lang = node.attribute(XML_NS, "lang").map(str::to_owned);
        for property in node.elements() {
            self.property_element(&subject, property, lang.as_deref())?;
        }
        Ok(subject)
    }

    fn property_element(
        &mut self,
        subject: &Subject,
        property: &Element,
        inherited_lang: Option<&str>,
    ) -> Result<()> {
        if property.namespace == RDF_NS && matches!(property.local.as_str(), "li" | "Bag" | "Seq" | "Alt") {
            return Err(self.syntax("rdf containers are not supported"));
        }
        let predicate = Iri::new(format!("{}{}", property.namespace, property.local))?;

        if let Some(parse_type) = property.attribute(RDF_NS, "parseType") {
            match parse_type {
                "Resource" => {
                    // Implicit blank node with nested property elements.
                    let inner = Subject::Blank(self.fresh_blank());
                    self.graph.insert(Triple::new(
                        subject.clone(),
                        predicate,
                        Term::from(inner.clone()),
                    ));
                    let lang = property.attribute(XML_NS, "lang").or(inherited_lang);
                    for nested in property.elements() {
                        self.property_element(&inner, nested, lang)?;
                    }
                    return Ok(());
                }
                other => {
                    return Err(self.syntax(format!("parseType=\"{other}\" is not supported")))
                }
            }
        }

        if let Some(resource) = property.attribute(RDF_NS, "resource") {
            self.graph.insert(Triple::new(subject.clone(), predicate, Iri::new(resource)?));
            return Ok(());
        }
        if let Some(node_id) = property.attribute(RDF_NS, "nodeID") {
            self.graph.insert(Triple::new(subject.clone(), predicate, BlankNode::new(node_id)?));
            return Ok(());
        }

        // Nested node element?
        let nested: Vec<&Element> = property.elements().collect();
        if !nested.is_empty() {
            if nested.len() > 1 {
                return Err(self.syntax("property element with multiple nested nodes"));
            }
            let object = self.node_element(nested[0])?;
            self.graph.insert(Triple::new(subject.clone(), predicate, Term::from(object)));
            return Ok(());
        }

        // Literal (whitespace is significant in RDF literal content).
        let text = property.raw_text();
        let literal = if let Some(datatype) = property.attribute(RDF_NS, "datatype") {
            let dt = Iri::new(datatype)?;
            if dt.as_str() == vocab::xsd::string().as_str() {
                Literal::simple(text)
            } else {
                Literal::typed(text, dt)
            }
        } else if let Some(lang) = property.attribute(XML_NS, "lang").or(inherited_lang) {
            Literal::lang(text, lang)?
        } else {
            Literal::simple(text)
        };
        self.graph.insert(Triple::new(subject.clone(), predicate, literal));
        Ok(())
    }
}

/// Serializes a graph as RDF/XML.
///
/// Every predicate (and type IRI) must split into `namespace + XML-name
/// local part`; others are reported as [`RdfError::InvalidIri`].
pub fn to_rdfxml(graph: &Graph) -> Result<String> {
    // Collect namespaces for predicates and type objects.
    let mut namespaces: Vec<String> = Vec::new();
    let mut prefix_of: HashMap<String, String> = HashMap::new();
    let ensure_ns = |ns: &str, namespaces: &mut Vec<String>, prefix_of: &mut HashMap<String, String>| {
        if !prefix_of.contains_key(ns) {
            // Reuse well-known prefixes where possible.
            let known = vocab::default_prefixes()
                .into_iter()
                .find(|(_, n)| *n == ns)
                .map(|(p, _)| p.to_owned());
            let prefix = known.unwrap_or_else(|| format!("ns{}", namespaces.len()));
            prefix_of.insert(ns.to_owned(), prefix);
            namespaces.push(ns.to_owned());
        }
    };

    let mut by_subject: Vec<(Subject, Vec<Triple>)> = Vec::new();
    for subject in graph.subjects() {
        let triples: Vec<Triple> = graph.triples_matching(Some(&subject), None, None).collect();
        for t in &triples {
            let (ns, local) = t.predicate.split_namespace();
            if ns.is_empty() || !is_xml_name(local) {
                return Err(RdfError::invalid_iri(
                    t.predicate.as_str(),
                    "predicate cannot be split for RDF/XML",
                ));
            }
            ensure_ns(ns, &mut namespaces, &mut prefix_of);
        }
        by_subject.push((subject, triples));
    }
    ensure_ns(RDF_NS, &mut namespaces, &mut prefix_of);

    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<rdf:RDF");
    let mut sorted_ns: Vec<&String> = namespaces.iter().collect();
    sorted_ns.sort();
    for ns in sorted_ns {
        let _ = write!(out, "\n  xmlns:{}=\"{}\"", prefix_of[ns], escape_attr(ns));
    }
    out.push_str(">\n");

    for (subject, triples) in &by_subject {
        out.push_str("  <rdf:Description ");
        match subject {
            Subject::Iri(iri) => {
                let _ = write!(out, "rdf:about=\"{}\"", escape_attr(iri.as_str()));
            }
            Subject::Blank(b) => {
                let _ = write!(out, "rdf:nodeID=\"{}\"", escape_attr(b.label()));
            }
        }
        out.push_str(">\n");
        for t in triples {
            let (ns, local) = t.predicate.split_namespace();
            let prefix = &prefix_of[ns];
            match &t.object {
                Term::Iri(iri) => {
                    let _ = writeln!(
                        out,
                        "    <{prefix}:{local} rdf:resource=\"{}\"/>",
                        escape_attr(iri.as_str())
                    );
                }
                Term::Blank(b) => {
                    let _ = writeln!(
                        out,
                        "    <{prefix}:{local} rdf:nodeID=\"{}\"/>",
                        escape_attr(b.label())
                    );
                }
                Term::Literal(lit) => {
                    let mut open = format!("<{prefix}:{local}");
                    if let Some(tag) = lit.language() {
                        let _ = write!(open, " xml:lang=\"{}\"", escape_attr(tag));
                    } else if !lit.is_simple() {
                        let _ = write!(
                            open,
                            " rdf:datatype=\"{}\"",
                            escape_attr(lit.datatype().as_str())
                        );
                    }
                    let _ = writeln!(
                        out,
                        "    {open}>{}</{prefix}:{local}>",
                        escape_text(lit.lexical())
                    );
                }
            }
        }
        out.push_str("  </rdf:Description>\n");
    }
    out.push_str("</rdf:RDF>\n");
    Ok(out)
}

fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_2004_style_foaf_document() {
        let doc = r#"<?xml version="1.0"?>
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                     xmlns:foaf="http://xmlns.com/foaf/0.1/"
                     xmlns:trust="http://example.org/ns/trust#">
              <foaf:Person rdf:about="http://ex.org/alice#me">
                <foaf:name xml:lang="en">Alice</foaf:name>
                <foaf:knows rdf:resource="http://ex.org/bob#me"/>
              </foaf:Person>
              <trust:Statement rdf:nodeID="t0">
                <trust:truster rdf:resource="http://ex.org/alice#me"/>
                <trust:trustee rdf:resource="http://ex.org/bob#me"/>
                <trust:value rdf:datatype="http://www.w3.org/2001/XMLSchema#decimal">0.75</trust:value>
              </trust:Statement>
            </rdf:RDF>"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 7);
        let alice: Subject = Iri::new("http://ex.org/alice#me").unwrap().into();
        assert_eq!(
            g.object_for(&alice, &vocab::rdf::type_()),
            Some(Term::Iri(vocab::foaf::person()))
        );
        assert_eq!(
            g.object_for(&alice, &vocab::foaf::name()),
            Some(Term::Literal(Literal::lang("Alice", "en").unwrap()))
        );
        let stmt: Subject = BlankNode::new("t0").unwrap().into();
        let value = g.object_for(&stmt, &vocab::trust::value()).unwrap();
        assert_eq!(value.as_literal().unwrap().as_double(), Some(0.75));
    }

    #[test]
    fn nested_node_elements() {
        let doc = r#"
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                     xmlns:foaf="http://xmlns.com/foaf/0.1/">
              <foaf:Person rdf:about="http://ex.org/a">
                <foaf:knows>
                  <foaf:Person rdf:about="http://ex.org/b">
                    <foaf:name>B</foaf:name>
                  </foaf:Person>
                </foaf:knows>
              </foaf:Person>
            </rdf:RDF>"#;
        let g = parse(doc).unwrap();
        let a: Subject = Iri::new("http://ex.org/a").unwrap().into();
        assert_eq!(
            g.object_for(&a, &vocab::foaf::knows()),
            Some(Term::Iri(Iri::new("http://ex.org/b").unwrap()))
        );
        let b: Subject = Iri::new("http://ex.org/b").unwrap().into();
        assert_eq!(g.triples_matching(Some(&b), None, None).count(), 2);
    }

    #[test]
    fn property_attributes_and_anonymous_nodes() {
        let doc = r#"
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                     xmlns:foaf="http://xmlns.com/foaf/0.1/">
              <foaf:Person foaf:nick="zed"/>
            </rdf:RDF>"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 2); // type + nick on a fresh blank node
        let nick = g
            .triples_matching(None, Some(&vocab::foaf::nick()), None)
            .next()
            .unwrap();
        assert!(matches!(nick.subject, Subject::Blank(_)));
        assert_eq!(nick.object.as_literal().unwrap().lexical(), "zed");
    }

    #[test]
    fn parse_type_resource() {
        let doc = r#"
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                     xmlns:ex="http://ex.org/ns#">
              <rdf:Description rdf:about="http://ex.org/s">
                <ex:shipping rdf:parseType="Resource">
                  <ex:days>3</ex:days>
                </ex:shipping>
              </rdf:Description>
            </rdf:RDF>"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 2);
        let s: Subject = Iri::new("http://ex.org/s").unwrap().into();
        let inner = g.object_for(&s, &Iri::new("http://ex.org/ns#shipping").unwrap()).unwrap();
        assert!(matches!(inner, Term::Blank(_)));
    }

    #[test]
    fn unsupported_constructs_are_rejected() {
        let with = |body: &str| {
            format!(
                r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                           xmlns:ex="http://ex.org/ns#">{body}</rdf:RDF>"#
            )
        };
        assert!(parse(&with(r#"<rdf:Description rdf:ID="frag"/>"#)).is_err());
        assert!(parse(&with(
            r#"<rdf:Description rdf:about="http://e.org/x">
                 <ex:p rdf:parseType="Collection"/>
               </rdf:Description>"#
        ))
        .is_err());
    }

    #[test]
    fn round_trips_through_the_writer() {
        let mut g = Graph::new();
        let alice = Iri::new("http://ex.org/alice#me").unwrap();
        g.insert(Triple::new(alice.clone(), vocab::rdf::type_(), vocab::foaf::person()));
        g.insert(Triple::new(
            alice.clone(),
            vocab::foaf::name(),
            Literal::lang("Alice <& Co>", "en").unwrap(),
        ));
        g.insert(Triple::new(
            alice.clone(),
            vocab::trust::value(),
            Literal::decimal(0.75),
        ));
        g.insert(Triple::new(
            BlankNode::new("n1").unwrap(),
            vocab::foaf::knows(),
            alice,
        ));
        let doc = to_rdfxml(&g).unwrap();
        assert!(doc.contains("xmlns:foaf"));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn writer_rejects_unsplittable_predicates() {
        let mut g = Graph::new();
        // Local part ends with characters that no XML name allows.
        g.insert(Triple::new(
            Iri::new("http://ex.org/s").unwrap(),
            Iri::new("http://ex.org/9starts-with-digit").unwrap(),
            Literal::simple("x"),
        ));
        assert!(to_rdfxml(&g).is_err());
    }

    #[test]
    fn single_node_root_without_rdf_wrapper() {
        let doc = r#"<foaf:Person xmlns:foaf="http://xmlns.com/foaf/0.1/"
                        xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                        rdf:about="http://ex.org/a"/>"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
    }
}
