//! N-Triples I/O.
//!
//! N-Triples is the line-oriented exchange syntax: one triple per line, no
//! prefixes, no abbreviation. It is a syntactic subset of Turtle, so parsing
//! delegates to [`crate::turtle`]; the writer here guarantees strict
//! N-Triples output (absolute IRIs only, escaped literals, `\n` terminators).

use crate::error::Result;
use crate::graph::Graph;
use crate::model::{Literal, Subject, Term};

/// Parses an N-Triples document.
///
/// Accepts any document in the N-Triples subset of Turtle.
pub fn parse(input: &str) -> Result<Graph> {
    crate::turtle::parse(input)
}

/// Serializes a graph as canonical N-Triples (sorted lines).
pub fn to_ntriples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph
        .iter()
        .map(|t| {
            format!(
                "{} <{}> {} .",
                subject_str(&t.subject),
                t.predicate.as_str(),
                term_str(&t.object)
            )
        })
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn subject_str(subject: &Subject) -> String {
    match subject {
        Subject::Iri(iri) => format!("<{}>", iri.as_str()),
        Subject::Blank(b) => format!("_:{}", b.label()),
    }
}

fn term_str(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("<{}>", iri.as_str()),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(lit) => literal_str(lit),
    }
}

fn literal_str(lit: &Literal) -> String {
    let mut out = String::with_capacity(lit.lexical().len() + 2);
    out.push('"');
    for c in lit.lexical().chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    if let Some(tag) = lit.language() {
        out.push('@');
        out.push_str(tag);
    } else if !lit.is_simple() {
        out.push_str("^^<");
        out.push_str(lit.datatype().as_str());
        out.push('>');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Iri, Triple};
    use crate::vocab;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn writes_one_sorted_line_per_triple() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("http://z.org/s"), iri("http://z.org/p"), iri("http://z.org/o")));
        g.insert(Triple::new(iri("http://a.org/s"), iri("http://a.org/p"), Literal::integer(1)));
        let doc = to_ntriples(&g);
        let lines: Vec<_> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("<http://a.org/"));
        assert!(lines[1].starts_with("<http://z.org/"));
        assert!(lines.iter().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn round_trips() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://ex.org/a"),
            vocab::foaf::name(),
            Literal::lang("Grüße\n\"x\"", "de").unwrap(),
        ));
        g.insert(Triple::new(
            iri("http://ex.org/a"),
            vocab::trust::value(),
            Literal::decimal(-0.5),
        ));
        let doc = to_ntriples(&g);
        assert_eq!(parse(&doc).unwrap(), g);
    }

    #[test]
    fn empty_graph_writes_empty_document() {
        assert_eq!(to_ntriples(&Graph::new()), "");
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn output_is_strict_ntriples() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("http://ex.org/a"), vocab::rdf::type_(), vocab::foaf::person()));
        let doc = to_ntriples(&g);
        // No prefixed names, no `a` keyword in strict N-Triples.
        assert!(!doc.contains("foaf:"));
        assert!(doc.contains("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"));
    }
}
