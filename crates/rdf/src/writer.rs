//! Turtle serialization.
//!
//! The writer groups triples by subject, abbreviates predicates/objects with
//! the supplied prefix table when the local part is a safe `PN_LOCAL`, and
//! always emits documents the parser in [`crate::turtle`] round-trips.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::model::{Iri, Literal, Subject, Term};
use crate::vocab;

/// Options controlling Turtle output.
#[derive(Clone, Debug)]
pub struct TurtleWriterOptions {
    /// `(prefix, namespace)` pairs used for abbreviation.
    pub prefixes: Vec<(String, String)>,
    /// Emit `a` instead of `rdf:type` in the predicate position.
    pub use_a_keyword: bool,
}

impl Default for TurtleWriterOptions {
    fn default() -> Self {
        TurtleWriterOptions {
            prefixes: vocab::default_prefixes()
                .into_iter()
                .map(|(p, ns)| (p.to_owned(), ns.to_owned()))
                .collect(),
            use_a_keyword: true,
        }
    }
}

/// Serializes a graph to a Turtle document with default options.
pub fn to_turtle(graph: &Graph) -> String {
    to_turtle_with(graph, &TurtleWriterOptions::default())
}

/// Serializes a graph to a Turtle document.
pub fn to_turtle_with(graph: &Graph, options: &TurtleWriterOptions) -> String {
    let mut out = String::new();
    let used: Vec<&(String, String)> = options
        .prefixes
        .iter()
        .filter(|(_, ns)| {
            graph.iter().any(|t| {
                t.predicate.as_str().starts_with(ns.as_str())
                    || t.subject
                        .as_iri()
                        .is_some_and(|iri| iri.as_str().starts_with(ns.as_str()))
                    || t.object
                        .as_iri()
                        .is_some_and(|iri| iri.as_str().starts_with(ns.as_str()))
                    || t.object.as_literal().is_some_and(|lit| {
                        !lit.is_simple()
                            && lit.language().is_none()
                            && lit.datatype().as_str().starts_with(ns.as_str())
                    })
            })
        })
        .collect();
    for (prefix, ns) in &used {
        let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
    }
    if !used.is_empty() {
        out.push('\n');
    }

    for subject in graph.subjects() {
        let triples: Vec<_> =
            graph.triples_matching(Some(&subject), None, None).collect();
        if triples.is_empty() {
            continue;
        }
        out.push_str(&subject_str(&subject, options));
        // Group consecutive triples sharing a predicate into object lists.
        let mut by_pred: Vec<(Iri, Vec<Term>)> = Vec::new();
        for t in triples {
            match by_pred.iter_mut().find(|(p, _)| *p == t.predicate) {
                Some((_, objs)) => objs.push(t.object),
                None => by_pred.push((t.predicate, vec![t.object])),
            }
        }
        for (i, (pred, objects)) in by_pred.iter().enumerate() {
            if i > 0 {
                out.push_str(" ;\n   ");
            }
            out.push(' ');
            out.push_str(&predicate_str(pred, options));
            for (j, object) in objects.iter().enumerate() {
                if j > 0 {
                    out.push_str(" ,");
                }
                out.push(' ');
                out.push_str(&term_str(object, options));
            }
        }
        out.push_str(" .\n");
    }
    out
}

fn subject_str(subject: &Subject, options: &TurtleWriterOptions) -> String {
    match subject {
        Subject::Iri(iri) => iri_str(iri, options),
        Subject::Blank(b) => format!("_:{}", b.label()),
    }
}

fn predicate_str(pred: &Iri, options: &TurtleWriterOptions) -> String {
    if options.use_a_keyword && pred.as_str() == vocab::rdf::type_().as_str() {
        return "a".to_owned();
    }
    iri_str(pred, options)
}

fn term_str(term: &Term, options: &TurtleWriterOptions) -> String {
    match term {
        Term::Iri(iri) => iri_str(iri, options),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(lit) => literal_str(lit, options),
    }
}

fn iri_str(iri: &Iri, options: &TurtleWriterOptions) -> String {
    for (prefix, ns) in &options.prefixes {
        if let Some(local) = iri.as_str().strip_prefix(ns.as_str()) {
            if is_safe_local(local) {
                return format!("{prefix}:{local}");
            }
        }
    }
    format!("<{}>", escape_iri(iri.as_str()))
}

/// Conservative PN_LOCAL check: what we emit must parse back identically.
fn is_safe_local(local: &str) -> bool {
    !local.is_empty()
        && !local.starts_with('.')
        && !local.ends_with('.')
        && local
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

fn escape_iri(iri: &str) -> String {
    // Validation already rejects characters needing escapes; pass through.
    iri.to_owned()
}

fn literal_str(lit: &Literal, options: &TurtleWriterOptions) -> String {
    let mut out = String::with_capacity(lit.lexical().len() + 2);
    out.push('"');
    for c in lit.lexical().chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            other => out.push(other),
        }
    }
    out.push('"');
    if let Some(tag) = lit.language() {
        let _ = write!(out, "@{tag}");
    } else if !lit.is_simple() {
        let dt = lit.datatype().into_owned();
        let _ = write!(out, "^^{}", iri_str(&dt, options));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Triple;
    use crate::turtle;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn round_trips_a_mixed_graph() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://ex.org/alice"),
            vocab::foaf::knows(),
            iri("http://ex.org/bob"),
        ));
        g.insert(Triple::new(
            iri("http://ex.org/alice"),
            vocab::foaf::name(),
            Literal::lang("Alice", "en").unwrap(),
        ));
        g.insert(Triple::new(
            iri("http://ex.org/alice"),
            vocab::rdf::type_(),
            vocab::foaf::person(),
        ));
        g.insert(Triple::new(
            iri("http://ex.org/alice"),
            vocab::trust::value(),
            Literal::decimal(0.75),
        ));
        let doc = to_turtle(&g);
        let parsed = turtle::parse(&doc).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn abbreviates_known_namespaces() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://ex.org/a"),
            vocab::foaf::knows(),
            iri("http://ex.org/b"),
        ));
        let doc = to_turtle(&g);
        assert!(doc.contains("foaf:knows"));
        assert!(doc.contains("@prefix foaf:"));
        // Unused prefixes are not declared.
        assert!(!doc.contains("@prefix trust:"));
    }

    #[test]
    fn escapes_special_characters_in_literals() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://ex.org/a"),
            iri("http://ex.org/p"),
            Literal::simple("line\nwith \"quotes\" and \\slash\\ and\ttab"),
        ));
        let doc = to_turtle(&g);
        let parsed = turtle::parse(&doc).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn uses_a_keyword_for_rdf_type() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://ex.org/a"),
            vocab::rdf::type_(),
            vocab::foaf::person(),
        ));
        assert!(to_turtle(&g).contains(" a foaf:Person"));

        let opts = TurtleWriterOptions { use_a_keyword: false, ..Default::default() };
        assert!(to_turtle_with(&g, &opts).contains("rdf:type"));
    }

    #[test]
    fn unsafe_locals_fall_back_to_full_iris() {
        let mut g = Graph::new();
        // Local part with a '/' cannot be written as a prefixed name.
        g.insert(Triple::new(
            iri("http://xmlns.com/foaf/0.1/strange/deep"),
            iri("http://ex.org/p"),
            iri("http://ex.org/o"),
        ));
        let doc = to_turtle(&g);
        assert!(doc.contains("<http://xmlns.com/foaf/0.1/strange/deep>"));
        assert_eq!(turtle::parse(&doc).unwrap(), g);
    }

    #[test]
    fn blank_nodes_round_trip() {
        let mut g = Graph::new();
        let b = crate::model::BlankNode::new("n1").unwrap();
        g.insert(Triple::new(b.clone(), iri("http://ex.org/p"), Literal::integer(3)));
        g.insert(Triple::new(iri("http://ex.org/s"), iri("http://ex.org/q"), b));
        let doc = to_turtle(&g);
        assert_eq!(turtle::parse(&doc).unwrap(), g);
    }

    #[test]
    fn object_lists_are_grouped() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("http://ex.org/a"), vocab::foaf::knows(), iri("http://ex.org/b")));
        g.insert(Triple::new(iri("http://ex.org/a"), vocab::foaf::knows(), iri("http://ex.org/c")));
        let doc = to_turtle(&g);
        // One subject block, a comma-separated object list.
        assert_eq!(doc.matches("foaf:knows").count(), 1);
        assert!(doc.contains(" ,"));
    }
}
