//! # semrec-rdf — the Semantic Web substrate
//!
//! A minimal, dependency-free RDF stack: the data model ([`model`]), an
//! indexed in-memory graph ([`graph`]), Turtle, N-Triples and RDF/XML
//! parsing and serialization ([`turtle`], [`ntriples`], [`writer`],
//! [`rdfxml`] — the last being the syntax FOAF actually shipped in 2004),
//! and the
//! vocabularies ([`vocab`]) the decentralized recommender publishes —
//! FOAF acquaintance networks plus trust and product-rating extensions —
//! and a basic-graph-pattern query engine ([`query`]).
//!
//! The paper's information model (§3.1) "allows facile mapping into RDF";
//! this crate is that mapping's carrier. Agents publish machine-readable
//! homepages as Turtle documents, crawlers parse them back, and everything
//! above this layer works on the extracted model.
//!
//! ```
//! use semrec_rdf::{model::{Iri, Triple}, graph::Graph, turtle, vocab};
//!
//! let mut g = Graph::new();
//! g.insert(Triple::new(
//!     Iri::new("http://example.org/alice").unwrap(),
//!     vocab::foaf::knows(),
//!     Iri::new("http://example.org/bob").unwrap(),
//! ));
//! let doc = semrec_rdf::writer::to_turtle(&g);
//! assert_eq!(turtle::parse(&doc).unwrap(), g);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod model;
pub mod ntriples;
pub mod query;
pub mod rdfxml;
pub mod turtle;
pub mod vocab;
pub mod writer;
pub mod xml;

pub use error::{RdfError, Result};
pub use graph::Graph;
pub use model::{BlankNode, Iri, Literal, Subject, Term, Triple};
