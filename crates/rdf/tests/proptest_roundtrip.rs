//! Property-based round-trip tests: any graph assembled from generated terms
//! must survive Turtle and N-Triples serialization → parsing unchanged.

use proptest::prelude::*;
use semrec_rdf::{ntriples, turtle, writer, BlankNode, Graph, Iri, Literal, Subject, Term, Triple};

fn arb_iri() -> impl Strategy<Value = Iri> {
    (
        prop_oneof![
            Just("http://example.org/"),
            Just("http://xmlns.com/foaf/0.1/"),
            Just("urn:isbn:"),
        ],
        "[A-Za-z][A-Za-z0-9_.-]{0,12}",
    )
        .prop_map(|(ns, local)| Iri::new(format!("{ns}{local}")).unwrap())
}

fn arb_blank() -> impl Strategy<Value = BlankNode> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|l| BlankNode::new(l).unwrap())
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Arbitrary unicode content including characters needing escapes.
        "[ -~äöüß\n\t\"\\\\]{0,20}".prop_map(Literal::simple),
        ("[ -~]{0,10}", "[a-z]{2}").prop_map(|(s, t)| Literal::lang(s, t).unwrap()),
        any::<i64>().prop_map(Literal::integer),
        (-1000i32..1000, 1u32..100)
            .prop_map(|(n, d)| Literal::decimal(f64::from(n) / f64::from(d))),
        any::<bool>().prop_map(Literal::boolean),
    ]
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![
        arb_iri().prop_map(Subject::Iri),
        arb_blank().prop_map(Subject::Blank),
    ]
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        arb_blank().prop_map(Term::Blank),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_subject(), arb_iri(), arb_object())
        .prop_map(|(s, p, o)| Triple { subject: s, predicate: p, object: o })
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(arb_triple(), 0..40).prop_map(|ts| ts.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn turtle_round_trip(g in arb_graph()) {
        let doc = writer::to_turtle(&g);
        let parsed = turtle::parse(&doc).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn ntriples_round_trip(g in arb_graph()) {
        let doc = ntriples::to_ntriples(&g);
        let parsed = ntriples::parse(&doc).unwrap();
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn ntriples_output_is_canonical(g in arb_graph()) {
        // Serializing a parsed graph again yields the identical document.
        let doc = ntriples::to_ntriples(&g);
        let again = ntriples::to_ntriples(&ntriples::parse(&doc).unwrap());
        prop_assert_eq!(doc, again);
    }

    #[test]
    fn insert_then_remove_restores_length(g in arb_graph(), t in arb_triple()) {
        let mut h = g.clone();
        let had = h.contains(&t);
        h.insert(t.clone());
        h.remove(&t);
        if had {
            // Removed a pre-existing triple: one fewer than original.
            prop_assert_eq!(h.len(), g.len() - 1);
        } else {
            prop_assert_eq!(h.len(), g.len());
        }
    }

    #[test]
    fn pattern_match_agrees_with_scan(g in arb_graph()) {
        for t in g.iter().take(5) {
            let by_s = g.triples_matching(Some(&t.subject), None, None).count();
            let scan = g.iter().filter(|u| u.subject == t.subject).count();
            prop_assert_eq!(by_s, scan);
            let by_p = g.triples_matching(None, Some(&t.predicate), None).count();
            let scan_p = g.iter().filter(|u| u.predicate == t.predicate).count();
            prop_assert_eq!(by_p, scan_p);
            let by_o = g.triples_matching(None, None, Some(&t.object)).count();
            let scan_o = g.iter().filter(|u| u.object == t.object).count();
            prop_assert_eq!(by_o, scan_o);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The open Web feeds crawlers arbitrary bytes: the Turtle parser must
    /// return `Err`, never panic, on any input.
    #[test]
    fn turtle_parser_never_panics(input in "\\PC{0,300}") {
        let _ = turtle::parse(&input);
    }

    /// Same with syntax-shaped noise (brackets, quotes, escapes, directives).
    #[test]
    fn turtle_parser_survives_syntax_shards(
        input in r#"[@<>"'\\\[\]();,\.a-z0-9:#\u{00e9} \n\t-]{0,200}"#
    ) {
        let _ = turtle::parse(&input);
    }

    /// Truncations of a valid document parse or fail cleanly — never panic.
    #[test]
    fn truncated_documents_fail_cleanly(g in arb_graph(), cut in 0usize..2000) {
        let doc = writer::to_turtle(&g);
        let mut end = cut.min(doc.len());
        while !doc.is_char_boundary(end) {
            end -= 1;
        }
        let _ = turtle::parse(&doc[..end]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// RDF/XML round-trip: our generated namespaces all produce splittable
    /// predicates, so serialization must succeed and re-parse identically.
    #[test]
    fn rdfxml_round_trip(g in arb_graph()) {
        let doc = semrec_rdf::rdfxml::to_rdfxml(&g).unwrap();
        let parsed = semrec_rdf::rdfxml::parse(&doc).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// The RDF/XML parser (and the XML reader under it) must never panic on
    /// arbitrary input.
    #[test]
    fn rdfxml_parser_never_panics(input in "\\PC{0,300}") {
        let _ = semrec_rdf::rdfxml::parse(&input);
    }

    #[test]
    fn rdfxml_parser_survives_markup_shards(
        input in r#"[<>&;/="'a-z0-9:#!\[\] \n\t?-]{0,200}"#
    ) {
        let _ = semrec_rdf::rdfxml::parse(&input);
    }
}
