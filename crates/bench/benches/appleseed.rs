//! Micro-benchmarks for the Appleseed trust metric (backs experiment E3/E6):
//! cost vs network size, convergence threshold and exploration bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semrec_datagen::community::{generate_community, CommunityGenConfig};
use semrec_trust::appleseed::{appleseed, AppleseedParams};
use semrec_trust::TrustGraph;

fn network(agents: usize) -> TrustGraph {
    let mut config = CommunityGenConfig::small(3003);
    config.agents = agents;
    generate_community(&config).community.trust
}

fn bench_network_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("appleseed/network_size");
    for n in [200usize, 800, 3200] {
        let graph = network(n);
        let source = graph.agents().next().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| appleseed(&graph, source, &AppleseedParams::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let graph = network(800);
    let source = graph.agents().next().unwrap();
    let mut group = c.benchmark_group("appleseed/convergence");
    for tc in [0.1f64, 0.01, 0.001] {
        group.bench_with_input(BenchmarkId::from_parameter(tc), &tc, |b, &tc| {
            b.iter(|| {
                appleseed(
                    &graph,
                    source,
                    &AppleseedParams { convergence: tc, ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bounded_exploration(c: &mut Criterion) {
    let graph = network(3200);
    let source = graph.agents().next().unwrap();
    let mut group = c.benchmark_group("appleseed/exploration_bound");
    for cap in [100usize, 400, usize::MAX] {
        let label = if cap == usize::MAX { "unbounded".to_owned() } else { cap.to_string() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            let params = AppleseedParams {
                max_nodes: (cap != usize::MAX).then_some(cap),
                ..Default::default()
            };
            b.iter(|| appleseed(&graph, source, &params).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_size, bench_convergence, bench_bounded_exploration);
criterion_main!(benches);
