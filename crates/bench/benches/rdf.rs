//! Micro-benchmarks for the RDF substrate: Turtle parse/serialize and graph
//! pattern matching (backs E12's publish/crawl throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semrec_core::Community;
use semrec_datagen::community::{generate_community, CommunityGenConfig};
use semrec_rdf::{turtle, vocab, writer, Graph};
use semrec_web::publish::homepage_turtle;

fn sample_community() -> Community {
    generate_community(&CommunityGenConfig::small(6006)).community
}

fn big_homepage_doc(community: &Community) -> String {
    // The agent with the most statements makes the heaviest document.
    let agent = community
        .agents()
        .max_by_key(|&a| community.ratings_of(a).len() + community.trust.out_edges(a).len())
        .unwrap();
    homepage_turtle(community, agent)
}

fn bench_turtle(c: &mut Criterion) {
    let community = sample_community();
    let doc = big_homepage_doc(&community);
    let graph = turtle::parse(&doc).unwrap();
    println!("homepage document: {} bytes, {} triples", doc.len(), graph.len());

    let mut group = c.benchmark_group("rdf/turtle");
    group.bench_function("parse_homepage", |b| b.iter(|| turtle::parse(&doc).unwrap()));
    group.bench_function("serialize_homepage", |b| b.iter(|| writer::to_turtle(&graph)));
    group.bench_function("ntriples_serialize", |b| {
        b.iter(|| semrec_rdf::ntriples::to_ntriples(&graph))
    });
    group.finish();
}

fn bench_pattern_matching(c: &mut Criterion) {
    let community = sample_community();
    // Merge many homepages into one graph to get realistic index sizes.
    let mut graph = Graph::new();
    for agent in community.agents().take(100) {
        let doc = homepage_turtle(&community, agent);
        graph.merge(&turtle::parse(&doc).unwrap());
    }
    println!("merged graph: {} triples", graph.len());

    let mut group = c.benchmark_group("rdf/patterns");
    for (label, predicate) in [
        ("trust_values", vocab::trust::value()),
        ("ratings", vocab::rec::score()),
        ("types", vocab::rdf::type_()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &predicate, |b, p| {
            b.iter(|| graph.triples_matching(None, Some(p), None).count())
        });
    }
    group.finish();
}

fn bench_rdfxml(c: &mut Criterion) {
    let community = sample_community();
    let agent = community
        .agents()
        .max_by_key(|&a| community.ratings_of(a).len() + community.trust.out_edges(a).len())
        .unwrap();
    let doc = semrec_web::publish::homepage_rdfxml(&community, agent);
    let graph = semrec_rdf::rdfxml::parse(&doc).unwrap();
    println!("RDF/XML homepage: {} bytes, {} triples", doc.len(), graph.len());

    let mut group = c.benchmark_group("rdf/rdfxml");
    group.bench_function("parse_homepage", |b| {
        b.iter(|| semrec_rdf::rdfxml::parse(&doc).unwrap())
    });
    group.bench_function("serialize_homepage", |b| {
        b.iter(|| semrec_rdf::rdfxml::to_rdfxml(&graph).unwrap())
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    use semrec_rdf::query::{select, var, TriplePattern};
    let community = sample_community();
    let mut graph = Graph::new();
    for agent in community.agents().take(100) {
        graph.merge(&turtle::parse(&homepage_turtle(&community, agent)).unwrap());
    }
    let mut group = c.benchmark_group("rdf/query");
    group.bench_function("trust_statements_3way_join", |b| {
        b.iter(|| {
            select(
                &graph,
                &[
                    TriplePattern::new(var("s"), vocab::trust::truster().into(), var("a")),
                    TriplePattern::new(var("s"), vocab::trust::trustee().into(), var("b")),
                    TriplePattern::new(var("s"), vocab::trust::value().into(), var("v")),
                ],
            )
            .len()
        })
    });
    group.bench_function("foaf_2hop_join", |b| {
        b.iter(|| {
            select(
                &graph,
                &[
                    TriplePattern::new(var("x"), vocab::foaf::knows().into(), var("y")),
                    TriplePattern::new(var("y"), vocab::foaf::knows().into(), var("z")),
                ],
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_turtle, bench_pattern_matching, bench_rdfxml, bench_query);
criterion_main!(benches);
