//! Micro-benchmarks for the Dinic max-flow solver and the Advogato metric
//! (backs experiment E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semrec_datagen::community::{generate_community, CommunityGenConfig};
use semrec_trust::advogato::{advogato, AdvogatoParams};
use semrec_trust::maxflow::FlowNetwork;

/// A layered random-ish flow network: `layers × width` grid with forward
/// edges, capacities cycling 1..=7.
fn layered_network(layers: usize, width: usize) -> (FlowNetwork, u32, u32) {
    let mut net = FlowNetwork::new();
    let source = net.add_node();
    let sink = net.add_node();
    let mut previous: Vec<u32> = (0..width).map(|_| net.add_node()).collect();
    for (i, &node) in previous.iter().enumerate() {
        net.add_edge(source, node, (i % 7 + 1) as i64);
    }
    for layer in 1..layers {
        let current: Vec<u32> = (0..width).map(|_| net.add_node()).collect();
        for (i, &from) in previous.iter().enumerate() {
            for offset in 0..3usize {
                let to = current[(i + offset * layer) % width];
                net.add_edge(from, to, ((i + offset) % 7 + 1) as i64);
            }
        }
        previous = current;
    }
    for (i, &node) in previous.iter().enumerate() {
        net.add_edge(node, sink, (i % 7 + 1) as i64);
    }
    (net, source, sink)
}

fn bench_dinic(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow/dinic_layered");
    for (layers, width) in [(4usize, 16usize), (8, 32), (16, 64)] {
        let label = format!("{layers}x{width}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter_batched(
                || layered_network(layers, width),
                |(mut net, s, t)| net.max_flow(s, t),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_advogato(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow/advogato");
    for n in [200usize, 800] {
        let mut config = CommunityGenConfig::small(4004);
        config.agents = n;
        let graph = generate_community(&config).community.trust;
        let seed = graph.agents().next().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                advogato(
                    &graph,
                    seed,
                    &AdvogatoParams { target_group_size: 50, ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dinic, bench_advogato);
criterion_main!(benches);
