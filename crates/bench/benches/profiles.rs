//! Micro-benchmarks for taxonomy-based profile generation (Eq. 3) and
//! similarity computation (backs E1/E4/E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semrec_datagen::catalog_gen::{generate_catalog, CatalogGenConfig};
use semrec_datagen::taxonomy_gen::{generate_taxonomy, TaxonomyGenConfig};
use semrec_profiles::generation::{generate_profile, ProfileParams};
use semrec_profiles::similarity;
use semrec_taxonomy::{Catalog, ProductId, Taxonomy};

fn world(topics: usize, products: usize) -> (Taxonomy, Catalog) {
    let taxonomy = generate_taxonomy(&TaxonomyGenConfig::book_like(topics, 5005));
    let catalog = generate_catalog(
        &taxonomy,
        &CatalogGenConfig { products, seed: 5005, ..Default::default() },
    );
    (taxonomy, catalog)
}

fn ratings(catalog: &Catalog, count: usize) -> Vec<(ProductId, f64)> {
    (0..count)
        .map(|i| (ProductId::from_index((i * 37) % catalog.len()), 1.0))
        .collect()
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiles/generation");
    for (topics, history) in [(1000usize, 10usize), (20_000, 10), (20_000, 100)] {
        let (taxonomy, catalog) = world(topics, 2000);
        let rs = ratings(&catalog, history);
        let label = format!("{topics}topics_{history}ratings");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| generate_profile(&taxonomy, &catalog, &rs, &ProfileParams::default()))
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let (taxonomy, catalog) = world(20_000, 2000);
    let params = ProfileParams::default();
    let a = generate_profile(&taxonomy, &catalog, &ratings(&catalog, 50), &params);
    let b_ratings: Vec<_> = (0..50)
        .map(|i| (ProductId::from_index((i * 53 + 7) % catalog.len()), 1.0))
        .collect();
    let b_profile = generate_profile(&taxonomy, &catalog, &b_ratings, &params);
    println!("profile supports: {} and {}", a.support(), b_profile.support());

    let mut group = c.benchmark_group("profiles/similarity");
    group.bench_function("cosine", |bench| {
        bench.iter(|| similarity::cosine(&a, &b_profile))
    });
    group.bench_function("pearson", |bench| {
        bench.iter(|| similarity::pearson(&a, &b_profile))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_similarity);
criterion_main!(benches);
