//! Micro-benchmarks for the decentralized web: publishing homepages and
//! crawling them back (backs E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semrec_core::Community;
use semrec_datagen::community::{generate_community, CommunityGenConfig};
use semrec_web::crawler::{crawl, CrawlConfig};
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

fn community(agents: usize) -> Community {
    let mut config = CommunityGenConfig::small(8008);
    config.agents = agents;
    generate_community(&config).community
}

fn bench_publish(c: &mut Criterion) {
    let community = community(200);
    let mut group = c.benchmark_group("crawl/publish");
    group.throughput(Throughput::Elements(200));
    group.bench_function("200_homepages", |b| {
        b.iter(|| {
            let web = DocumentWeb::new();
            publish_community(&community, &web)
        })
    });
    group.finish();
}

fn bench_crawl_threads(c: &mut Criterion) {
    let community = community(400);
    let web = DocumentWeb::new();
    publish_community(&community, &web);
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();

    let mut group = c.benchmark_group("crawl/full_crawl_400_docs");
    group.throughput(Throughput::Elements(400));
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                crawl(&web, &seeds, &CrawlConfig { threads, ..Default::default() })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_publish, bench_crawl_threads);
criterion_main!(benches);
