//! Micro-benchmarks for the end-to-end recommendation pipeline (backs E6):
//! single-query latency by community size, and parallel batch throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semrec_core::{batch, Recommender, RecommenderConfig};
use semrec_datagen::community::{generate_community, CommunityGenConfig};

fn engine(agents: usize) -> Recommender {
    let mut config = CommunityGenConfig::small(7007);
    config.agents = agents;
    Recommender::new(generate_community(&config).community, RecommenderConfig::default())
}

fn bench_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/recommend");
    for n in [200usize, 800, 3200] {
        let recommender = engine(n);
        let target = recommender.community().agents().next().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| recommender.recommend(target, 10).unwrap())
        });
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let recommender = engine(800);
    let targets: Vec<_> = recommender.community().agents().take(64).collect();
    let mut group = c.benchmark_group("pipeline/batch64");
    group.throughput(Throughput::Elements(targets.len() as u64));
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| batch::recommend_batch(&recommender, &targets, 10, threads))
        });
    }
    group.finish();
}

fn bench_engine_build(c: &mut Criterion) {
    let community = generate_community(&CommunityGenConfig::small(7007)).community;
    c.bench_function("pipeline/engine_build_200_agents", |b| {
        b.iter(|| Recommender::new(community.clone(), RecommenderConfig::default()))
    });
}

criterion_group!(benches, bench_single_query, bench_batch_throughput, bench_engine_build);
criterion_main!(benches);
